//! The binary-heap reference engine.
//!
//! [`ReferenceScheduler`] is the original `O(log n)` event queue the
//! timer wheel replaced. It stays in-tree as the semantic oracle: the
//! wheel is held to lockstep equality against it by unit tests here
//! and by the property suite in `tests/wheel_lockstep.rs`, the same
//! discipline the packed checker and the dense network fabric follow
//! against their reference engines.
//!
//! Delivery order is the total order `(at, seq)` — earliest time
//! first, FIFO within an instant. The heap drains all events due at
//! the current instant into a FIFO batch in one go; while that instant
//! is open, newly scheduled same-time events append to the batch
//! directly (their sequence numbers are globally maximal), so the heap
//! holds only strictly later events.

use super::Scheduled;
use crate::actor::ActorId;
use crate::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, VecDeque};

/// The heap-based reference event queue (see the module docs).
#[derive(Debug)]
pub struct ReferenceScheduler<M> {
    heap: BinaryHeap<Scheduled<M>>,
    batch: VecDeque<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    stop: bool,
    /// True while events for the instant `now` are being delivered,
    /// i.e. the heap has been drained for `now`.
    instant_open: bool,
}

impl<M> Default for ReferenceScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ReferenceScheduler<M> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        ReferenceScheduler {
            heap: BinaryHeap::new(),
            batch: VecDeque::new(),
            seq: 0,
            now: SimTime::ZERO,
            stop: false,
            instant_open: false,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events queued (heap + current-instant batch).
    pub fn pending(&self) -> usize {
        self.heap.len() + self.batch.len()
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop
    }

    /// Requests that the run stop after the event being processed.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// The delivery time of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(self.now);
        }
        self.heap.peek().map(|ev| ev.at)
    }

    /// Schedules `msg` for `target` at absolute time `at`, clamped to
    /// the present if `at` is already past.
    pub fn schedule_at(&mut self, at: SimTime, target: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let ev = Scheduled { at, seq, target, msg };
        if self.instant_open && at == self.now {
            // `seq` is globally maximal, so appending keeps the batch in
            // `(at, seq)` order; the heap holds only later events.
            self.batch.push_back(ev);
        } else {
            self.heap.push(ev);
        }
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) {
        self.schedule_at(self.now.saturating_add(delay), target, msg);
    }

    /// Removes and returns the next due event, advancing the clock to
    /// its timestamp. Returns `None` if the queue is empty or a stop was
    /// requested.
    pub fn pop_due(&mut self) -> Option<Scheduled<M>> {
        if self.stop {
            return None;
        }
        if let Some(ev) = self.batch.pop_front() {
            return Some(ev);
        }
        // Open the next instant: advance to the earliest heap event and
        // drain everything that shares its timestamp into the batch.
        // The heap yields equal-time events in ascending `seq`, so the
        // batch comes out FIFO.
        let first = self.heap.pop()?;
        debug_assert!(first.at >= self.now, "event queue went backwards");
        self.now = first.at;
        self.instant_open = true;
        while let Some(next) = self.heap.peek() {
            if next.at != self.now {
                break;
            }
            let next = self.heap.pop().expect("peeked event exists");
            self.batch.push_back(next);
        }
        Some(first)
    }

    /// [`Self::pop_due`] bounded by `deadline`: returns `None` (without
    /// advancing the clock) when the next event is later than
    /// `deadline` or absent.
    pub fn pop_due_until(&mut self, deadline: SimTime) -> Option<Scheduled<M>> {
        match self.next_event_time() {
            Some(t) if t <= deadline => self.pop_due(),
            _ => None,
        }
    }

    /// Advances the clock to `deadline` with no events to deliver (used
    /// by `run_until` when the queue holds nothing before the deadline).
    /// Closes the current instant: later same-time schedules go through
    /// the heap again.
    pub fn advance_to(&mut self, deadline: SimTime) {
        debug_assert!(self.batch.is_empty(), "advancing over undelivered events");
        if deadline > self.now {
            self.now = deadline;
            self.instant_open = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(sched: &mut ReferenceScheduler<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(ev) = sched.pop_due() {
            out.push((ev.at, ev.msg));
        }
        out
    }

    #[test]
    fn orders_by_time_then_fifo() {
        let mut s = ReferenceScheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(2), a, 10);
        s.schedule_at(SimTime::from_secs(1), a, 20);
        s.schedule_at(SimTime::from_secs(2), a, 11);
        s.schedule_at(SimTime::from_secs(1), a, 21);
        assert_eq!(
            drain_order(&mut s),
            vec![
                (SimTime::from_secs(1), 20),
                (SimTime::from_secs(1), 21),
                (SimTime::from_secs(2), 10),
                (SimTime::from_secs(2), 11),
            ]
        );
    }

    #[test]
    fn same_instant_sends_go_to_open_batch() {
        let mut s = ReferenceScheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(1), a, 1);
        s.schedule_at(SimTime::from_secs(1), a, 2);
        let first = s.pop_due().unwrap();
        assert_eq!(first.msg, 1);
        // A cascade send while instant 1s is open: must come after msg 2
        // but before any later event, without touching the heap.
        s.schedule_at(s.now(), a, 3);
        assert_eq!(s.heap.len(), 0);
        assert_eq!(s.pop_due().unwrap().msg, 2);
        assert_eq!(s.pop_due().unwrap().msg, 3);
    }

    #[test]
    fn pop_due_until_respects_deadline() {
        let mut s = ReferenceScheduler::new();
        let a = ActorId::from_index(0);
        s.schedule_at(SimTime::from_secs(5), a, 1);
        assert!(s.pop_due_until(SimTime::from_secs(4)).is_none());
        assert_eq!(s.now(), SimTime::ZERO, "failed bounded pop must not move the clock");
        assert_eq!(s.pop_due_until(SimTime::from_secs(5)).unwrap().msg, 1);
    }
}
