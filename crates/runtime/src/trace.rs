//! Structured simulation trace log.
//!
//! Every component of an MCPS simulation can append timestamped,
//! categorized records to a [`TraceLog`]. Traces serve two purposes:
//! post-run debugging/inspection, and — in the spirit of the paper's
//! certifiability concerns — an audit trail from which experiments
//! extract event timings (e.g. "when did the pump actually stop?").

use crate::actor::ActorId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time at which the record was emitted.
    pub at: SimTime,
    /// Emitting actor.
    pub actor: ActorId,
    /// Free-form category tag, e.g. `"pump"`, `"alarm"`, `"net"`.
    pub category: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:>3} {:<10} {}", self.at, self.actor.index(), self.category, self.message)
    }
}

/// An append-only, bounded trace log.
///
/// The log drops the *oldest* records once `capacity` is exceeded, so
/// long simulations cannot exhaust memory; `dropped()` reports how many
/// were discarded.
#[derive(Debug, Clone)]
pub struct TraceLog {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new(1 << 20)
    }
}

impl TraceLog {
    /// Creates a log holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            enabled: true,
        }
    }

    /// Enables or disables recording (disabled appends are no-ops).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record.
    pub fn push(
        &mut self,
        at: SimTime,
        actor: ActorId,
        category: &str,
        message: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            actor,
            category: category.to_owned(),
            message: message.into(),
        });
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records with the given category.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The first retained record matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> Option<&TraceRecord> {
        self.records.iter().find(|r| pred(r))
    }

    /// Removes all records (capacity and enablement are kept).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(log: &mut TraceLog, ms: u64, cat: &str, msg: &str) {
        log.push(SimTime::from_millis(ms), ActorId::from_index(0), cat, msg);
    }

    #[test]
    fn push_and_query() {
        let mut log = TraceLog::new(16);
        rec(&mut log, 1, "pump", "start");
        rec(&mut log, 2, "alarm", "spo2 low");
        rec(&mut log, 3, "pump", "stop");
        assert_eq!(log.len(), 3);
        assert_eq!(log.by_category("pump").count(), 2);
        let stop = log.find(|r| r.message == "stop").unwrap();
        assert_eq!(stop.at, SimTime::from_millis(3));
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut log = TraceLog::new(2);
        rec(&mut log, 1, "a", "1");
        rec(&mut log, 2, "a", "2");
        rec(&mut log, 3, "a", "3");
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.records().next().unwrap().message, "2");
    }

    #[test]
    fn disabled_log_ignores_push() {
        let mut log = TraceLog::new(4);
        log.set_enabled(false);
        rec(&mut log, 1, "a", "1");
        assert!(log.is_empty());
        log.set_enabled(true);
        rec(&mut log, 2, "a", "2");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut log = TraceLog::new(4);
        rec(&mut log, 1, "pump", "start");
        let s = log.records().next().unwrap().to_string();
        assert!(s.contains("pump") && s.contains("start"));
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new(1);
        rec(&mut log, 1, "a", "1");
        rec(&mut log, 2, "a", "2");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
