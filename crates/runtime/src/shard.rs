//! Deterministic shard-parallel execution.
//!
//! [`run_shards`] fans a list of independent work items (shards) out
//! across OS threads and returns results **in input order**, so the
//! merged output of a parallel run is byte-identical to running the
//! shards serially. The rules that make this sound:
//!
//! 1. **Seed isolation** — each shard must derive all randomness from
//!    its own item (typically a per-shard seed); shards must not share
//!    mutable state or global RNGs.
//! 2. **No wall-clock or thread-identity inputs** — shard output must
//!    be a pure function of the item.
//! 3. **Order-indexed results** — results are written into a slot per
//!    input index; completion order never affects output order.
//!
//! Under those rules, `run_shards(items, f)` is observationally
//! equivalent to `items.into_iter().map(f).collect()` — verified by
//! property tests at the workspace level — while using one thread per
//! core. [`run_shards_with`] adds per-worker reusable state (scratch
//! buffers that survive across the shard runs of one worker) under the
//! same contract. Telemetry from shards should be collected per-shard and
//! folded with [`Telemetry::merge`](crate::telemetry::Telemetry::merge)
//! after the join, which keeps the merged bus deterministic too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Wall-clock accounting for one [`run_shards_costed_in`] call: how
/// long each shard ran and how busy each worker was. Balance is the
/// figure campus benchmarks report — a run where one worker carries a
/// 100× ward while the rest idle shows up as `balance() ≪ 1`.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ShardStats {
    /// Worker threads actually used (1 = serial fallback).
    pub workers: usize,
    /// Per-shard wall-clock seconds, in input order.
    pub shard_secs: Vec<f64>,
    /// Per-worker busy seconds (sum of its shards), sorted descending
    /// so the report is independent of thread scheduling order.
    pub worker_secs: Vec<f64>,
}

impl ShardStats {
    /// Mean worker busy time divided by the busiest worker's time, in
    /// `(0, 1]`. `1.0` means perfectly level; `1/workers` means one
    /// worker did everything while the others idled.
    pub fn balance(&self) -> f64 {
        let max = self.worker_secs.first().copied().unwrap_or(0.0);
        if max <= 0.0 || self.worker_secs.is_empty() {
            return 1.0;
        }
        let mean: f64 = self.worker_secs.iter().sum::<f64>() / self.worker_secs.len() as f64;
        mean / max
    }

    /// Total busy seconds across all workers.
    pub fn busy_secs(&self) -> f64 {
        self.worker_secs.iter().sum()
    }
}

/// Maps `f` over `items` using up to one worker thread per core,
/// returning results in input order.
///
/// Work is pulled from a shared index counter, so long shards don't
/// serialize behind short ones regardless of their position in the
/// input. Falls back to a plain serial map when there is one item or
/// one core.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers finish.
pub fn run_shards<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_shards_with(items, || (), move |(), item| f(item))
}

/// [`run_shards`] with per-worker reusable state: `init` runs once on
/// each worker thread and the resulting value is threaded through every
/// shard that worker executes.
///
/// Use this to reuse expensive buffers (scratch vectors, arena
/// allocations) across the shard runs of one worker without sharing
/// them between workers. The determinism contract is unchanged —
/// `f` must produce output that is a pure function of the item, so the
/// state may only carry *capacity* (allocations), never values that
/// leak from one shard into the next.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` after all workers finish.
pub fn run_shards_with<T, R, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = workers.min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    let n = items.len();
    // Hand each worker items by index through a shared cursor; results
    // land in the slot matching their input index.
    let work: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = work[idx]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item taken twice");
                    let result = f(&mut state, item);
                    *slots[idx].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without producing a result")
        })
        .collect()
}

/// [`run_shards_with`] plus sorted-by-cost dispatch and wall-clock
/// accounting. `costs[i]` is a relative cost estimate for `items[i]`
/// (any monotone proxy works — bed count, scheduled events, simulated
/// hours); expensive shards are handed out **first** so a single 100×
/// ward among cheap ones starts immediately instead of landing on a
/// worker that already has a full queue behind it (greedy LPT
/// scheduling via the shared cursor). Results are still returned in
/// input order and remain byte-identical to the serial map — dispatch
/// order is invisible to the output by the shard contract.
///
/// Uses one worker per core; see [`run_shards_costed_in`] to pin the
/// worker count explicitly (tests on single-core hosts use this to
/// exercise the parallel path).
pub fn run_shards_costed<T, R, S, I, F>(
    items: Vec<T>,
    costs: &[u64],
    init: I,
    f: F,
) -> (Vec<R>, ShardStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    run_shards_costed_in(items, costs, workers, init, f)
}

/// [`run_shards_costed`] with an explicit worker count. `workers` is
/// clamped to `[1, items.len()]`; `1` takes the serial path.
///
/// # Panics
///
/// Panics if `costs.len() != items.len()`; propagates a panic from
/// `init` or `f` after all workers finish.
pub fn run_shards_costed_in<T, R, S, I, F>(
    items: Vec<T>,
    costs: &[u64],
    workers: usize,
    init: I,
    f: F,
) -> (Vec<R>, ShardStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    assert_eq!(costs.len(), items.len(), "one cost per shard");
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));

    if workers <= 1 {
        let mut state = init();
        let mut shard_secs = Vec::with_capacity(n);
        let results = items
            .into_iter()
            .map(|item| {
                let t0 = Instant::now();
                let r = f(&mut state, item);
                shard_secs.push(t0.elapsed().as_secs_f64());
                r
            })
            .collect();
        let busy = shard_secs.iter().sum();
        return (results, ShardStats { workers: 1, shard_secs, worker_secs: vec![busy] });
    }

    // Dispatch order: descending cost, ties by ascending input index so
    // the order (and thus the timing profile) is reproducible.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));

    let work: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let slots: Vec<Mutex<Option<(R, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let busy: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(workers));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                let mut my_busy = 0.0f64;
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let idx = order[k];
                    let item = work[idx]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item taken twice");
                    let t0 = Instant::now();
                    let result = f(&mut state, item);
                    let secs = t0.elapsed().as_secs_f64();
                    my_busy += secs;
                    *slots[idx].lock().expect("result slot poisoned") = Some((result, secs));
                }
                busy.lock().expect("busy list poisoned").push(my_busy);
            });
        }
    });

    let mut shard_secs = Vec::with_capacity(n);
    let results = slots
        .into_iter()
        .map(|slot| {
            let (r, secs) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without producing a result");
            shard_secs.push(secs);
            r
        })
        .collect();
    let mut worker_secs = busy.into_inner().expect("busy list poisoned");
    worker_secs.sort_by(|a, b| b.partial_cmp(a).expect("busy times are finite"));
    (results, ShardStats { workers, shard_secs, worker_secs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_shards((0..64u64).collect(), |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(run_shards(empty, |x: u32| x).is_empty());
        assert_eq!(run_shards(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map() {
        // The determinism contract: parallel output equals serial map.
        let items: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = items.iter().map(|&s| splitmix(s)).collect();
        let parallel = run_shards(items, splitmix);
        assert_eq!(serial, parallel);
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    #[test]
    fn with_state_reuses_buffers_per_worker() {
        // Each worker's scratch buffer is reused across its shard runs:
        // results must still equal the serial map, and the buffer must
        // actually be used (capacity grows once, contents reset).
        let items: Vec<u64> = (0..32).collect();
        let serial: Vec<u64> = items.iter().map(|&s| splitmix(s)).collect();
        let parallel = run_shards_with(items, Vec::<u64>::new, |buf, item| {
            buf.clear();
            buf.extend((0..8).map(|k| splitmix(item ^ k)));
            splitmix(item)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn with_state_serial_fallback_threads_state() {
        // One item -> serial path; state must still be initialized and
        // passed through.
        let out = run_shards_with(vec![5u32], || 10u32, |s, x| x + *s);
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn costed_one_heavy_shard_among_cheap_matches_serial() {
        // The pathological balance case from the campus workload: one
        // 100× shard among 63 cheap ones. Parallel output (explicit
        // 4-worker override, so this exercises the parallel path even
        // on a single-core host) must be byte-identical to the serial
        // map, and the heavy shard must be dispatched first.
        let items: Vec<u64> = (0..64).collect();
        let costs: Vec<u64> = items.iter().map(|&i| if i == 37 { 100 } else { 1 }).collect();
        let serial: Vec<u64> = items
            .iter()
            .map(|&s| {
                let spins = if s == 37 { 100 } else { 1 };
                (0..spins).fold(s, |acc, k| splitmix(acc ^ k))
            })
            .collect();
        let (parallel, stats) = run_shards_costed_in(
            items,
            &costs,
            4,
            || (),
            |(), s: u64| {
                let spins = if s == 37 { 100 } else { 1 };
                (0..spins).fold(s, |acc, k| splitmix(acc ^ k))
            },
        );
        assert_eq!(serial, parallel);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.shard_secs.len(), 64);
        assert_eq!(stats.worker_secs.len(), 4);
        assert!(stats.balance() > 0.0 && stats.balance() <= 1.0);
    }

    #[test]
    fn costed_serial_fallback_and_stats() {
        let items: Vec<u64> = (0..8).collect();
        let costs = vec![1u64; 8];
        let (out, stats) = run_shards_costed_in(
            items,
            &costs,
            1,
            || 0u64,
            |s, x| {
                *s += 1; // scratch carries a counter; output ignores it
                splitmix(x)
            },
        );
        assert_eq!(out, (0..8).map(splitmix).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.worker_secs.len(), 1);
        assert!((stats.busy_secs() - stats.worker_secs[0]).abs() < 1e-12);
        assert!((stats.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one cost per shard")]
    fn costed_rejects_mismatched_costs() {
        let _ = run_shards_costed_in(vec![1u64, 2], &[1u64], 2, || (), |(), x: u64| x);
    }

    #[test]
    fn balance_of_idle_workers() {
        let stats = ShardStats { workers: 2, shard_secs: vec![], worker_secs: vec![0.0, 0.0] };
        assert!((stats.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Early items take longest; a naive chunking or completion-order
        // collect would misorder these.
        let out = run_shards((0..16u64).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
