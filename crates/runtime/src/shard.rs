//! Deterministic shard-parallel execution.
//!
//! [`run_shards`] fans a list of independent work items (shards) out
//! across OS threads and returns results **in input order**, so the
//! merged output of a parallel run is byte-identical to running the
//! shards serially. The rules that make this sound:
//!
//! 1. **Seed isolation** — each shard must derive all randomness from
//!    its own item (typically a per-shard seed); shards must not share
//!    mutable state or global RNGs.
//! 2. **No wall-clock or thread-identity inputs** — shard output must
//!    be a pure function of the item.
//! 3. **Order-indexed results** — results are written into a slot per
//!    input index; completion order never affects output order.
//!
//! Under those rules, `run_shards(items, f)` is observationally
//! equivalent to `items.into_iter().map(f).collect()` — verified by
//! property tests at the workspace level — while using one thread per
//! core. [`run_shards_with`] adds per-worker reusable state (scratch
//! buffers that survive across the shard runs of one worker) under the
//! same contract. Telemetry from shards should be collected per-shard and
//! folded with [`Telemetry::merge`](crate::telemetry::Telemetry::merge)
//! after the join, which keeps the merged bus deterministic too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` using up to one worker thread per core,
/// returning results in input order.
///
/// Work is pulled from a shared index counter, so long shards don't
/// serialize behind short ones regardless of their position in the
/// input. Falls back to a plain serial map when there is one item or
/// one core.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers finish.
pub fn run_shards<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_shards_with(items, || (), move |(), item| f(item))
}

/// [`run_shards`] with per-worker reusable state: `init` runs once on
/// each worker thread and the resulting value is threaded through every
/// shard that worker executes.
///
/// Use this to reuse expensive buffers (scratch vectors, arena
/// allocations) across the shard runs of one worker without sharing
/// them between workers. The determinism contract is unchanged —
/// `f` must produce output that is a pure function of the item, so the
/// state may only carry *capacity* (allocations), never values that
/// leak from one shard into the next.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` after all workers finish.
pub fn run_shards_with<T, R, S, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = workers.min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    let n = items.len();
    // Hand each worker items by index through a shared cursor; results
    // land in the slot matching their input index.
    let work: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = work[idx]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item taken twice");
                    let result = f(&mut state, item);
                    *slots[idx].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without producing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_shards((0..64u64).collect(), |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(run_shards(empty, |x: u32| x).is_empty());
        assert_eq!(run_shards(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map() {
        // The determinism contract: parallel output equals serial map.
        let items: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = items.iter().map(|&s| splitmix(s)).collect();
        let parallel = run_shards(items, splitmix);
        assert_eq!(serial, parallel);
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    #[test]
    fn with_state_reuses_buffers_per_worker() {
        // Each worker's scratch buffer is reused across its shard runs:
        // results must still equal the serial map, and the buffer must
        // actually be used (capacity grows once, contents reset).
        let items: Vec<u64> = (0..32).collect();
        let serial: Vec<u64> = items.iter().map(|&s| splitmix(s)).collect();
        let parallel = run_shards_with(items, Vec::<u64>::new, |buf, item| {
            buf.clear();
            buf.extend((0..8).map(|k| splitmix(item ^ k)));
            splitmix(item)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn with_state_serial_fallback_threads_state() {
        // One item -> serial path; state must still be initialized and
        // passed through.
        let out = run_shards_with(vec![5u32], || 10u32, |s, x| x + *s);
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Early items take longest; a naive chunking or completion-order
        // collect would misorder these.
        let out = run_shards((0..16u64).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_millis(16 - i));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
