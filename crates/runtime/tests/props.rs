//! Property tests for the runtime's ordering and determinism
//! guarantees: FIFO delivery of same-instant events, monotone
//! simulation time, and shard-parallel execution matching serial
//! execution exactly.

use mcps_runtime::prelude::*;
use proptest::prelude::*;

/// Records every delivery with its timestamp.
struct Recorder {
    log: Vec<(SimTime, u32)>,
}

impl Actor<u32> for Recorder {
    fn handle(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now(), msg));
    }
}

proptest! {
    /// Events scheduled at one instant are delivered in scheduling
    /// order, no matter how many share the instant.
    fn same_instant_delivery_is_fifo(
        payloads in proptest::collection::vec(any::<u32>(), 1..48),
        at_ms in 0u64..10_000,
    ) {
        let mut sim: Simulation<u32> = Simulation::new(0);
        let rec = sim.add_actor("rec", Recorder { log: Vec::new() });
        let at = SimTime::from_millis(at_ms);
        for &p in &payloads {
            sim.schedule(at, rec, p);
        }
        sim.run();
        let log = &sim.actor_as::<Recorder>(rec).unwrap().log;
        prop_assert_eq!(log.len(), payloads.len());
        for (i, &(t, p)) in log.iter().enumerate() {
            prop_assert_eq!(t, at);
            prop_assert_eq!(p, payloads[i], "delivery {i} out of FIFO order");
        }
    }

    /// Observed delivery times never decrease, and the overall order is
    /// the stable sort of the schedule by timestamp (ties keep
    /// scheduling order).
    fn delivery_times_are_monotone(
        schedule in proptest::collection::vec((0u64..50, any::<u32>()), 1..64),
    ) {
        let mut sim: Simulation<u32> = Simulation::new(1);
        let rec = sim.add_actor("rec", Recorder { log: Vec::new() });
        for &(at_ms, p) in &schedule {
            sim.schedule(SimTime::from_millis(at_ms), rec, p);
        }
        sim.run();
        let log = sim.actor_as::<Recorder>(rec).unwrap().log.clone();
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards: {pair:?}");
        }
        let mut expected: Vec<(SimTime, u32)> = schedule
            .iter()
            .map(|&(at_ms, p)| (SimTime::from_millis(at_ms), p))
            .collect();
        expected.sort_by_key(|&(t, _)| t); // stable: ties keep schedule order
        prop_assert_eq!(log, expected);
    }

    /// `run_shards` output is exactly the serial map, element for
    /// element, independent of worker interleaving.
    fn run_shards_matches_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..96),
    ) {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let serial: Vec<u64> = items.iter().map(|&x| mix(x)).collect();
        let parallel = run_shards(items, mix);
        prop_assert_eq!(parallel, serial);
    }

    /// A same-instant cascade (handlers scheduling more work at `now`)
    /// still interleaves in strict FIFO order behind already-queued
    /// events of that instant.
    fn cascades_join_the_instant_in_seq_order(
        n_seed in 2u32..20,
    ) {
        struct Echo {
            rec: ActorId,
            log_target: u32,
        }
        impl Actor<u32> for Echo {
            fn handle(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                // Forward to the recorder at the same instant.
                ctx.send(self.rec, msg + self.log_target);
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(2);
        let rec = sim.add_actor("rec", Recorder { log: Vec::new() });
        let fwd = sim.add_actor("fwd", Echo { rec, log_target: 1000 });
        let at = SimTime::from_secs(1);
        // Interleave direct sends and forwarded sends. Direct payload i
        // arrives as i; forwarded arrives as i + 1000, but only after
        // every directly-scheduled event of the instant (its relay hop
        // re-enqueues it at the back of the batch).
        for i in 0..n_seed {
            if i % 2 == 0 {
                sim.schedule(at, rec, i);
            } else {
                sim.schedule(at, fwd, i);
            }
        }
        sim.run();
        let log: Vec<u32> =
            sim.actor_as::<Recorder>(rec).unwrap().log.iter().map(|&(_, p)| p).collect();
        let mut expected: Vec<u32> = (0..n_seed).filter(|i| i % 2 == 0).collect();
        expected.extend((0..n_seed).filter(|i| i % 2 == 1).map(|i| i + 1000));
        prop_assert_eq!(log, expected);
    }
}
