//! Lockstep conformance: the timer-wheel scheduler against the
//! binary-heap reference engine.
//!
//! Random interleavings of schedule/pop/bounded-pop/advance/peek are
//! replayed against both engines simultaneously; after every operation
//! the clocks, queue lengths, `next_event_time` answers and full pop
//! results `(at, target, msg)` must match exactly. Messages are unique
//! per scheduled event, so a pop mismatch cannot hide behind equal
//! payloads. The op mix deliberately covers the wheel's hard cases:
//! same-instant bursts into an open instant, far-future events that
//! cascade across several levels, beyond-horizon events that sit in
//! the overflow list, and clock jumps that strand events in stale
//! slots.

use mcps_runtime::scheduler::reference::ReferenceScheduler;
use mcps_runtime::scheduler::Scheduler;
use mcps_runtime::{ActorId, SimDuration, SimTime};
use proptest::prelude::*;

/// One step of the driver, decoded from a raw `(op, a, b)` tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delta` for a target derived from `b`.
    Schedule { delta: u64, target: u32 },
    /// Pop the next due event.
    Pop,
    /// Pop bounded by `now + delta`.
    PopUntil { delta: u64 },
    /// Advance the clock toward `now + delta` (clamped to stay valid).
    Advance { delta: u64 },
    /// Compare `next_event_time` only.
    Peek,
}

fn decode(op: u8, a: u64, b: u64) -> Op {
    match op % 16 {
        // Heavily weight schedules so queues actually fill up.
        0..=2 => Op::Schedule { delta: a % 64, target: (b % 5) as u32 },
        3 | 4 => Op::Schedule { delta: a % 5_000, target: (b % 5) as u32 },
        5 => Op::Schedule { delta: a % 10_000_000_000, target: (b % 5) as u32 },
        // Far enough to cross the top wheel levels and the ~51-day
        // horizon (2^42 µs ≈ 4.4e12).
        6 => Op::Schedule { delta: a % 9_000_000_000_000, target: (b % 5) as u32 },
        7..=10 => Op::Pop,
        11 | 12 => Op::PopUntil { delta: a % 100_000 },
        13 | 14 => Op::Advance { delta: a % 1_000_000 },
        _ => Op::Peek,
    }
}

struct Lockstep {
    wheel: Scheduler<u64>,
    heap: ReferenceScheduler<u64>,
    next_msg: u64,
}

impl Lockstep {
    fn new() -> Self {
        Lockstep { wheel: Scheduler::new(), heap: ReferenceScheduler::new(), next_msg: 0 }
    }

    fn check(&self) -> Result<(), TestCaseError> {
        prop_assert_eq!(self.wheel.now(), self.heap.now(), "clock divergence");
        prop_assert_eq!(self.wheel.pending(), self.heap.pending(), "queue length divergence");
        prop_assert_eq!(
            self.wheel.next_event_time(),
            self.heap.next_event_time(),
            "next_event_time divergence"
        );
        Ok(())
    }

    fn apply(&mut self, op: Op) -> Result<(), TestCaseError> {
        match op {
            Op::Schedule { delta, target } => {
                let at = self.wheel.now().saturating_add(SimDuration::from_micros(delta));
                let msg = self.next_msg;
                self.next_msg += 1;
                self.wheel.schedule_at(at, ActorId::from_index(target), msg);
                self.heap.schedule_at(at, ActorId::from_index(target), msg);
            }
            Op::Pop => {
                let w = self.wheel.pop_due().map(|e| (e.at, e.target, e.msg));
                let h = self.heap.pop_due().map(|e| (e.at, e.target, e.msg));
                prop_assert_eq!(w, h, "pop divergence");
            }
            Op::PopUntil { delta } => {
                let deadline = self.wheel.now().saturating_add(SimDuration::from_micros(delta));
                let w = self.wheel.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg));
                let h = self.heap.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg));
                prop_assert_eq!(w, h, "bounded pop divergence");
            }
            Op::Advance { delta } => {
                // `advance_to` requires no undelivered events at or
                // before the target — the kernel only calls it after
                // draining them — so clamp to the next event time.
                let mut t = self.wheel.now().saturating_add(SimDuration::from_micros(delta));
                if let Some(next) = self.wheel.next_event_time() {
                    t = t.min(next);
                }
                // A clamp to `now` means the ready queue still holds
                // undelivered events; the kernel never advances then.
                if t > self.wheel.now() {
                    self.wheel.advance_to(t);
                    self.heap.advance_to(t);
                }
            }
            Op::Peek => {}
        }
        self.check()
    }

    fn drain(&mut self) -> Result<(), TestCaseError> {
        loop {
            let w = self.wheel.pop_due().map(|e| (e.at, e.target, e.msg));
            let h = self.heap.pop_due().map(|e| (e.at, e.target, e.msg));
            prop_assert_eq!(w, h, "drain divergence");
            self.check()?;
            if w.is_none() {
                return Ok(());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random op soup: every engine-visible observation must match at
    /// every step, and a full drain at the end must agree event for
    /// event.
    fn wheel_matches_heap_on_random_ops(
        ops in proptest::collection::vec((0u8..16, 0u64..u64::MAX, 0u64..64), 0..300),
    ) {
        let mut rig = Lockstep::new();
        for (op, a, b) in ops {
            rig.apply(decode(op, a, b))?;
        }
        rig.drain()?;
    }

    /// Same-instant bursts: schedule into the open instant mid-drain
    /// and interleave pops, the executor's cascade pattern.
    fn open_instant_bursts_stay_fifo(
        rounds in proptest::collection::vec((1u64..64, 0u64..4), 1..40),
    ) {
        let mut rig = Lockstep::new();
        let mut due = 0u64;
        for (burst, gap) in rounds {
            due += gap;
            let at = SimTime::from_micros(due);
            for _ in 0..burst {
                let msg = rig.next_msg;
                rig.next_msg += 1;
                rig.wheel.schedule_at(at, ActorId::from_index(0), msg);
                rig.heap.schedule_at(at, ActorId::from_index(0), msg);
            }
            // Pop one (opening the instant), burst into it, then pop
            // roughly half before the next round piles on.
            for _ in 0..burst / 2 + 1 {
                rig.apply(Op::Pop)?;
                rig.apply(Op::Schedule { delta: 0, target: 1 })?;
            }
        }
        rig.drain()?;
    }

    /// Far-future cascades: events spread across every wheel level and
    /// the overflow list, drained via deadline-bounded pops (the
    /// `run_until` path).
    fn cascades_and_horizon_overflow_drain_in_order(
        deltas in proptest::collection::vec(0u64..9_000_000_000_000, 1..60),
        stride in 1_000_000u64..1_000_000_000,
    ) {
        let mut rig = Lockstep::new();
        for (i, d) in deltas.iter().enumerate() {
            let at = SimTime::from_micros(*d);
            rig.wheel.schedule_at(at, ActorId::from_index((i % 3) as u32), i as u64);
            rig.heap.schedule_at(at, ActorId::from_index((i % 3) as u32), i as u64);
            rig.check()?;
        }
        // Sweep time forward in strides, draining due events exactly
        // like `run_until` does, then drain the tail.
        for k in 1..=20u64 {
            let deadline = SimTime::from_micros(k * stride);
            loop {
                let w = rig.wheel.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg));
                let h = rig.heap.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg));
                prop_assert_eq!(w, h, "bounded sweep divergence");
                rig.check()?;
                if w.is_none() {
                    break;
                }
            }
            let t = match rig.wheel.next_event_time() {
                Some(next) => deadline.min(next),
                None => deadline,
            };
            rig.wheel.advance_to(t);
            rig.heap.advance_to(t);
            rig.check()?;
        }
        rig.drain()?;
    }
}
