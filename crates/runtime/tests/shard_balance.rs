//! Determinism and scratch-isolation properties of the costed shard
//! runner under unbalanced workloads.
//!
//! `run_shards_costed_in` hands expensive shards out first and lets a
//! shared cursor level the rest — but none of that may be observable in
//! the output. These tests drive the parallel path with an explicit
//! worker override (the CI host may have a single core, where the
//! default would take the serial fallback) and check two things:
//!
//! 1. **Byte-identical to serial** — for random items, random cost
//!    estimates (including deliberately wrong ones), and random worker
//!    counts, parallel output equals the serial map.
//! 2. **Scratch never leaks across shards** — per-worker scratch is
//!    reused between the shards of one worker, but each scratch value
//!    is only ever inside one `f` call at a time, and output stays a
//!    pure function of the item even when every shard deliberately
//!    leaves item-dependent garbage behind for the next shard to see.

use mcps_runtime::shard::{run_shards_costed_in, run_shards_with};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The shard body: a pure function of `item` that also uses (and
/// dirties) a scratch buffer. It must produce the same answer no matter
/// what a previous shard left in the buffer.
fn shard_fn(buf: &mut Vec<u64>, item: u64) -> u64 {
    // Correct use: clear before reading. If the runner ever handed the
    // same buffer to two shards concurrently, the clear/extend below
    // would race and corrupt the fold.
    buf.clear();
    buf.extend((0..16).map(|k| splitmix(item.wrapping_add(k))));
    let out = buf.iter().fold(item, |acc, &v| acc ^ v.rotate_left(7));
    // Deliberately leave item-dependent garbage for the next shard.
    buf.push(item);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel output is byte-identical to the serial map for any
    /// items, any cost vector (costs are a dispatch hint, not a
    /// correctness input), and any worker count.
    #[test]
    fn costed_parallel_matches_serial(
        items in proptest::collection::vec(any::<u64>(), 1..80),
        cost_seed in any::<u64>(),
        heavy_at in any::<u64>(),
        workers in 1usize..9,
    ) {
        // Random costs with one shard marked 100× — wrong on purpose
        // half the time, since estimates mislead in practice.
        let heavy = (heavy_at % items.len() as u64) as usize;
        let costs: Vec<u64> = (0..items.len())
            .map(|i| if i == heavy { 100 } else { splitmix(cost_seed ^ i as u64) % 4 + 1 })
            .collect();

        let serial: Vec<u64> = {
            let mut buf = Vec::new();
            items.iter().map(|&it| shard_fn(&mut buf, it)).collect()
        };
        let (parallel, stats) =
            run_shards_costed_in(items.clone(), &costs, workers, Vec::new, shard_fn);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(stats.shard_secs.len(), items.len());
        prop_assert!(stats.balance() > 0.0 && stats.balance() <= 1.0);
        prop_assert_eq!(stats.worker_secs.len(), stats.workers);
    }

    /// Scratch integrity: each worker's scratch carries a token issued
    /// at `init` and a per-scratch run counter. Across the whole run,
    /// every (token, counter) pair must be unique — i.e. no scratch
    /// value was ever inside two `f` calls at once or reused without
    /// passing back through its owning worker — and the counters of
    /// each token must form a contiguous 0..k range (each scratch runs
    /// its shards strictly one after another).
    #[test]
    fn scratch_never_leaks_across_shards(
        n in 1usize..100,
        workers in 2usize..9,
    ) {
        let token_source = AtomicUsize::new(0);
        let items: Vec<u64> = (0..n as u64).collect();
        let costs: Vec<u64> = items.iter().map(|&i| i % 7 + 1).collect();
        let (out, _) = run_shards_costed_in(
            items,
            &costs,
            workers,
            || (token_source.fetch_add(1, Ordering::SeqCst), 0usize),
            |(token, counter), item| {
                let seen = (*token, *counter);
                *counter += 1;
                (item, seen)
            },
        );
        // Output order is input order regardless of dispatch order.
        for (i, &(item, _)) in out.iter().enumerate() {
            prop_assert_eq!(item, i as u64);
        }
        // (token, counter) pairs are globally unique, and per token the
        // counters are exactly 0..k.
        let mut pairs: Vec<(usize, usize)> = out.iter().map(|&(_, seen)| seen).collect();
        pairs.sort_unstable();
        let mut dedup = pairs.clone();
        dedup.dedup();
        prop_assert_eq!(&pairs, &dedup, "a scratch value served two shards at once");
        let tokens = token_source.load(Ordering::SeqCst);
        for t in 0..tokens {
            let mut counters: Vec<usize> =
                pairs.iter().filter(|&&(tok, _)| tok == t).map(|&(_, c)| c).collect();
            counters.sort_unstable();
            prop_assert_eq!(
                counters.clone(),
                (0..counters.len()).collect::<Vec<_>>(),
                "scratch runs of one worker must be contiguous"
            );
        }
    }

    /// The uncosted runner obeys the same purity contract (regression
    /// guard for the pre-existing path the campus merge rides on).
    #[test]
    fn run_shards_with_matches_serial(
        items in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let serial: Vec<u64> = {
            let mut buf = Vec::new();
            items.iter().map(|&it| shard_fn(&mut buf, it)).collect()
        };
        let parallel = run_shards_with(items, Vec::new, shard_fn);
        prop_assert_eq!(serial, parallel);
    }
}
