//! Shared infrastructure for the experiment binaries.
//!
//! Each `e*` binary regenerates one experiment from DESIGN.md and
//! prints its table(s). This crate provides the tiny pieces they share:
//! a fixed-width table printer and a no-dependency CLI argument parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

pub mod campaign;

/// Maps `f` over `items` on a small worker pool, preserving order.
/// Scenario runs are pure and independent, so cohort experiments
/// parallelize trivially; this keeps the full-size tables fast.
///
/// Thin alias for [`mcps_runtime::shard::run_shards`], kept for the
/// experiment binaries that predate the runtime crate. See that
/// function's docs for the determinism rules shard closures must obey.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    mcps_runtime::shard::run_shards(items, f)
}

/// A minimal fixed-width table printer for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serializes `report` as pretty JSON, writes it to `path`, and echoes
/// the JSON to stdout — the shared tail of every `bench_*` binary, so
/// perf baselines land in version control in one consistent shape.
///
/// # Panics
///
/// Panics if the report fails to serialize or the file cannot be
/// written (a bench run without its artifact is a failed run).
pub fn write_report<T: serde::Serialize>(report: &T, path: &str) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("{json}");
    println!("\nwrote {path}");
}

/// Enforces a CI smoke budget: if `measured_ms` exceeds `ceiling_ms`
/// the process exits nonzero with a diagnostic naming `workload`.
/// Ceilings are meant to be generous — they catch order-of-magnitude
/// regressions, not jitter.
pub fn smoke_budget(workload: &str, measured_ms: f64, ceiling_ms: f64) {
    if measured_ms > ceiling_ms {
        eprintln!(
            "SMOKE BUDGET EXCEEDED: {workload} took {measured_ms:.1} ms (ceiling {ceiling_ms} ms)"
        );
        std::process::exit(1);
    }
    println!("smoke budget OK: {workload} in {measured_ms:.1} ms (ceiling {ceiling_ms} ms)");
}

/// Parses `--key value` and `--flag` arguments.
///
/// ```
/// use mcps_bench::Args;
/// let args = Args::parse_from(["--patients", "40", "--quick"].iter().map(|s| s.to_string()));
/// assert_eq!(args.get_u64("patients", 10), 40);
/// assert!(args.has_flag("quick"));
/// assert_eq!(args.get_f64("loss", 0.5), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process's own arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (for tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else { continue };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_owned(), iter.next().unwrap());
                }
                _ => out.flags.push(key.to_owned()),
            }
        }
        out
    }

    /// A `u64` value or its default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A `u64` value, or `None` if absent/unparseable.
    pub fn get_u64_opt(&self, key: &str) -> Option<u64> {
        self.values.get(key).and_then(|v| v.parse().ok())
    }

    /// An `f64` value or its default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A string value or its default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values.get(key).cloned().unwrap_or_else(|| default.to_owned())
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// A chain of N independent timers each counting to `bound` — the
/// reachable state space grows like `bound^N`. The standard workload
/// for checker throughput measurements (`checker` criterion bench, the
/// `bench_checker` baseline binary and the CI smoke budget all share
/// it so their numbers are comparable).
pub fn timer_chain(n: usize, bound: u32) -> mcps_safety::checker::Network {
    use mcps_safety::automaton::{Action, Automaton, Guard};
    let automata = (0..n)
        .map(|i| {
            let mut b = Automaton::builder(&format!("timer{i}"));
            let x = b.clock("x");
            let run = b.location("Run");
            let done = b.location("Done");
            b.invariant(run, Guard::Le(x, bound));
            b.edge("fire", run, done, Guard::Ge(x, bound), Action::Internal, vec![x]);
            b.edge("restart", done, run, Guard::True, Action::Internal, vec![x]);
            b.build()
        })
        .collect();
    mcps_safety::checker::Network::new(automata)
}

/// Formats a float compactly for tables.
pub fn fnum(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["arm", "events"]);
        t.row(["open-loop", "12"]);
        t.row(["ticket-interlock", "0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("arm"));
        assert!(lines[2].starts_with("open-loop"));
        let col = lines[0].find("events").unwrap();
        assert_eq!(&lines[2][col..col + 2], "12");
    }

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::parse_from(
            ["--n", "5", "--quick", "--rate", "2.5"].iter().map(|s| s.to_string()),
        );
        assert_eq!(a.get_u64("n", 0), 5);
        assert!((a.get_f64("rate", 0.0) - 2.5).abs() < 1e-12);
        assert!(a.has_flag("quick"));
        assert!(!a.has_flag("missing"));
        assert_eq!(a.get_u64("absent", 7), 7);
    }

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(items.clone(), |x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1.234), "1.23");
    }
}
