//! Crash/soak harness for serve mode (E14): prove the live supervisor
//! survives repeated `kill -9`, dirty links, and connection churn with
//! its safety invariants intact, and commit the evidence as
//! `BENCH_soak.json`.
//!
//! Two phases:
//!
//! 1. **Process soak** — a real `mcps-serve --tcp --journal` child is
//!    SIGKILL'd and restarted for N cycles while a live
//!    [`PcaBedClient`] (chaos-wrapped TCP transport, automatic
//!    reconnect) and a background vitals-noise connection keep firing.
//!    Per cycle the harness asserts the fault-campaign invariant
//!    classes:
//!    * the restarted supervisor resumes with a **strictly higher
//!      epoch** (journal fencing — the pump's `max_epoch_seen` must
//!      climb every cycle, and replayed stale commands cannot
//!      actuate);
//!    * **danger→stop ≤ 30 protocol-seconds** measured from the
//!      restart instant (reconnect + re-associate + detect);
//!    * during outages longer than the 15 s supervision deadline the
//!      pump's **device-local watchdog latches basal-only**;
//!    * **zero double actuations** across every epoch of the run.
//! 2. **In-process soak** — the same crash/resume/reconnect cycle with
//!    in-memory transports, where host-side accounting is observable:
//!    zero critical ingress overflows, every undeliverable critical
//!    send accounted, journal append/sync counters reported.
//!
//! Usage: `bench_soak [--out PATH] [--cycles N] [--inproc-cycles N]
//!                    [--quick] [--max-ms MS]`
//!
//! Any violated invariant is listed in the report and fails the run
//! (non-zero exit) — ci wires `--quick --max-ms` in as a gate.

use mcps_bench::Args;
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::msg::{NetOp, NetPayload};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_net::fabric::EndpointId;
use mcps_patient::vitals::VitalKind;
use mcps_serve::chaos::{ChaosConfig, ChaosStats, ChaosTransport};
use mcps_serve::client::{PcaBedClient, ReconnectPolicy, SUP_EP};
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::journal::Journal;
use mcps_serve::transport::{ChannelTransport, FramedTransport, Transport};
use mcps_sim::stats::percentile;
use mcps_sim::time::SimDuration;
use serde::Serialize;
use std::cell::RefCell;
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Protocol speed for the process phase: 1 wall-second = 30
/// protocol-seconds, so the 15 s watchdog window is half a wall-second
/// and a full kill/restart cycle fits in a few wall-seconds.
const PROC_SPEED: f64 = 30.0;
/// Speed for the deterministic in-process phase.
const INPROC_SPEED: f64 = 200.0;

#[derive(Serialize)]
struct Report {
    process: ProcessReport,
    inproc: InprocReport,
    violations: Vec<String>,
    elapsed_ms: f64,
    quick: bool,
}

#[derive(Serialize, Default)]
struct ProcessReport {
    /// Kill-9/restart cycles completed (0 = environment cannot spawn
    /// or bind; the phase is skipped, not failed).
    cycles: u64,
    skipped: bool,
    speed: f64,
    /// Wall time from SIGKILL to the post-restart stop landing,
    /// including the deliberate outage window.
    recovery_wall_p50_ms: f64,
    recovery_wall_p99_ms: f64,
    /// Worst danger→stop latency measured from the restart instant,
    /// on the protocol timeline.
    danger_stop_max_protocol_s: f64,
    /// Outages long enough that the device watchdog had to latch.
    long_outages: u64,
    watchdog_latches: u64,
    /// Highest epoch the pump accepted (must equal cycles + 1).
    final_epoch: u64,
    reconnects: u64,
    dial_failures: u64,
    frames_corrupted: u64,
    frames_resynced: u64,
    double_actuations: u64,
    noise_frames_sent: u64,
}

#[derive(Serialize, Default)]
struct InprocReport {
    cycles: u64,
    speed: f64,
    final_epoch: u64,
    critical_overflow: u64,
    critical_sends_dropped: u64,
    vitals_shed: u64,
    peers_dropped: u64,
    routes_relearned: u64,
    journal_records: u64,
    journal_syncs: u64,
    frames_corrupted: u64,
    frames_resynced: u64,
    reconnects: u64,
    double_actuations: u64,
}

fn command_core(resume_holdoff_secs: u64) -> SupervisorCore {
    let config = InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Threshold,
        resume_holdoff: SimDuration::from_secs(resume_holdoff_secs),
        ..InterlockConfig::default()
    };
    SupervisorCore::new(PcaSafetyApp::new(config), SUP_EP, SimDuration::from_secs(2))
}

// ---------------------------------------------------------------------------
// Phase 1: process soak (real SIGKILL over TCP)
// ---------------------------------------------------------------------------

type ProcTransport = ChaosTransport<FramedTransport<TcpStream>>;

/// Dials the server and wraps the socket in the chaos plan, sharing
/// one stats sink across every incarnation.
fn dial(addr: &str, stats: &Arc<ChaosStats>) -> Option<ProcTransport> {
    let stream = TcpStream::connect(addr).ok()?;
    let framed = FramedTransport::tcp(stream).ok()?;
    Some(ChaosTransport::with_stats(framed, ChaosConfig::storm(31), Arc::clone(stats)))
}

/// The `mcps-serve` child under test.
struct ServerProc {
    exe: PathBuf,
    addr: String,
    journal: PathBuf,
    child: Option<Child>,
}

impl ServerProc {
    fn spawn(&mut self) -> std::io::Result<()> {
        let child = Command::new(&self.exe)
            .args([
                "--tcp",
                &self.addr,
                "--journal",
                &self.journal.display().to_string(),
                "--speed",
                &format!("{PROC_SPEED}"),
                "--detector",
                "threshold",
                "--resume-holdoff-secs",
                "5",
                "--seed",
                "42",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        self.child = Some(child);
        Ok(())
    }

    /// SIGKILL — no shutdown handler runs; only fsynced journal state
    /// survives.
    fn kill9(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// A second connection streaming vitals noise from separate endpoints
/// — the "other beds" the supervisor must keep serving through every
/// crash. Reconnects lazily when the server dies.
struct NoisePeer {
    addr: String,
    t: Option<FramedTransport<TcpStream>>,
    sent: u64,
}

impl NoisePeer {
    fn pump_once(&mut self) {
        if self.t.is_none() {
            self.t = TcpStream::connect(&self.addr).ok().and_then(|s| FramedTransport::tcp(s).ok());
        }
        let Some(t) = self.t.as_mut() else { return };
        for i in 0..4u64 {
            let op = NetOp::Deliver {
                from: EndpointId::from_index(10 + i as u32),
                payload: NetPayload::Data {
                    kind: VitalKind::RespRate,
                    value: 13.0 + (self.sent % 3) as f64,
                    sampled_at: mcps_sim::time::SimTime::from_millis(self.sent),
                },
            };
            if t.send(&op).is_err() {
                self.t = None;
                return;
            }
            self.sent += 1;
        }
        // Drain topic broadcasts addressed at everyone.
        loop {
            match t.try_recv() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    self.t = None;
                    break;
                }
            }
        }
    }
}

/// Client rounds until `done` or the wall budget runs out.
fn drive(
    client: &mut PcaBedClient<ProcTransport>,
    noise: &mut NoisePeer,
    vitals: (f64, f64),
    budget: Duration,
    mut done: impl FnMut(&PcaBedClient<ProcTransport>) -> bool,
) -> bool {
    let start = Instant::now();
    let mut round = 0u64;
    while start.elapsed() < budget {
        client.send_vital(VitalKind::Spo2, vitals.0);
        client.send_vital(VitalKind::RespRate, vitals.1);
        if round.is_multiple_of(40) {
            // A chaos link can eat any single announce; keep offering.
            client.announce_monitors();
        }
        round += 1;
        noise.pump_once();
        client.step();
        if done(client) {
            return true;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    false
}

fn bench_process(cycles: u64, violations: &mut Vec<String>) -> ProcessReport {
    let mut report = ProcessReport { speed: PROC_SPEED, ..Default::default() };

    // The server binary sits next to this bench in the target dir.
    let exe = std::env::current_exe().ok().and_then(|p| {
        let sibling = p.parent()?.join("mcps-serve");
        sibling.exists().then_some(sibling)
    });
    let Some(exe) = exe else {
        eprintln!(
            "bench_soak: mcps-serve binary not found next to bench_soak — skipping process phase"
        );
        report.skipped = true;
        return report;
    };
    // Pick a free port, then release it for the child.
    let Ok(listener) = std::net::TcpListener::bind("127.0.0.1:0") else {
        eprintln!("bench_soak: cannot bind loopback — skipping process phase");
        report.skipped = true;
        return report;
    };
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);

    let dir = std::env::temp_dir().join(format!("mcps-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut server = ServerProc { exe, addr: addr.clone(), journal: dir.join("ckpt"), child: None };
    if let Err(e) = server.spawn() {
        eprintln!("bench_soak: cannot spawn mcps-serve ({e}) — skipping process phase");
        report.skipped = true;
        return report;
    }

    // Dial the fresh server (it may take a moment to bind).
    let chaos = Arc::new(ChaosStats::default());
    let first = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(t) = dial(&addr, &chaos) {
                break Some(t);
            }
            if Instant::now() > deadline {
                break None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let Some(first) = first else {
        eprintln!("bench_soak: server never accepted on {addr} — skipping process phase");
        report.skipped = true;
        return report;
    };
    let dial_addr = addr.clone();
    let dial_stats = Arc::clone(&chaos);
    let mut client = PcaBedClient::new(first, PROC_SPEED).with_reconnect(
        move || dial(&dial_addr, &dial_stats),
        ReconnectPolicy { base_ms: 10, max_ms: 100, jitter_seed: 13 },
    );
    let mut noise = NoisePeer { addr, t: None, sent: 0 };
    client.announce_monitors();

    let mut recovery_wall_ms: Vec<f64> = Vec::new();
    let mut worst_protocol_s = 0.0f64;
    for cycle in 0..cycles {
        // Steady state: permitted, and the pump follows this
        // generation's epoch (cycle 0 ⇒ epoch 1; each restart +1).
        let want_epoch = cycle + 1;
        if !drive(&mut client, &mut noise, (97.0, 14.0), Duration::from_secs(30), |c| {
            c.is_permitted() && c.pump_actor().max_epoch_seen() >= want_epoch
        }) {
            violations.push(format!(
                "cycle {cycle}: never reached steady state at epoch {want_epoch} \
                 (epoch seen {}, reconnects {})",
                client.pump_actor().max_epoch_seen(),
                client.reconnects(),
            ));
            break;
        }
        if client.pump_actor().max_epoch_seen() > want_epoch {
            violations.push(format!(
                "cycle {cycle}: epoch overshoot — pump saw {} expected {want_epoch} \
                 (a resurrected stale supervisor?)",
                client.pump_actor().max_epoch_seen(),
            ));
        }

        // Kill -9, hold the outage, restart. Odd cycles outlast the
        // 15 s (0.5 wall-s) supervision deadline so the device-local
        // watchdog must latch basal-only.
        let latches_before = client.pump_actor().local_failsafe_entries();
        let long_outage = cycle % 2 == 1;
        server.kill9();
        let killed_at = Instant::now();
        let outage = if long_outage {
            report.long_outages += 1;
            Duration::from_millis(800)
        } else {
            Duration::from_millis(200)
        };
        drive(&mut client, &mut noise, (97.0, 14.0), outage, |_| false);
        if let Err(e) = server.spawn() {
            violations.push(format!("cycle {cycle}: restart failed: {e}"));
            break;
        }

        // Danger from the restart instant: reconnect, re-associate,
        // detect and stop — all within 30 protocol seconds.
        let restart_sim = client.sim_now();
        let stopped = drive(&mut client, &mut noise, (85.0, 14.0), Duration::from_secs(30), |c| {
            c.first_stop_at_or_after(restart_sim).is_some()
        });
        if !stopped {
            violations.push(format!("cycle {cycle}: no stop landed after restart"));
            continue;
        }
        recovery_wall_ms.push(killed_at.elapsed().as_secs_f64() * 1e3);
        let stop_at = client.first_stop_at_or_after(restart_sim).expect("checked stop");
        let latency_s = stop_at.saturating_since(restart_sim).as_secs_f64();
        worst_protocol_s = worst_protocol_s.max(latency_s);
        if latency_s > 30.0 {
            violations.push(format!(
                "cycle {cycle}: danger→stop {latency_s:.1}s exceeds 30s across the restart"
            ));
        }
        if long_outage {
            let latched = client.pump_actor().local_failsafe_entries() > latches_before;
            report.watchdog_latches += u64::from(latched);
            if !latched {
                violations.push(format!(
                    "cycle {cycle}: watchdog never latched during a {:.0}-protocol-second outage",
                    outage.as_secs_f64() * PROC_SPEED,
                ));
            }
        }
        report.cycles += 1;
    }
    server.kill9();

    report.final_epoch = client.pump_actor().max_epoch_seen();
    report.reconnects = client.reconnects();
    report.dial_failures = client.dial_failures();
    report.frames_corrupted = chaos.corrupted();
    report.frames_resynced = chaos.resynced_total();
    report.double_actuations = client.pump_actor().double_actuations();
    report.noise_frames_sent = noise.sent;
    report.recovery_wall_p50_ms = percentile(&recovery_wall_ms, 50.0);
    report.recovery_wall_p99_ms = percentile(&recovery_wall_ms, 99.0);
    report.danger_stop_max_protocol_s = worst_protocol_s;
    if report.double_actuations > 0 {
        violations.push(format!(
            "process phase: {} double actuations (epoch fence breached)",
            report.double_actuations
        ));
    }
    if report.cycles == cycles && report.frames_corrupted == 0 {
        violations.push("process phase: chaos plan never corrupted a frame".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

// ---------------------------------------------------------------------------
// Phase 2: in-process soak (host-side accounting observable)
// ---------------------------------------------------------------------------

fn bench_inproc(cycles: u64, violations: &mut Vec<String>) -> InprocReport {
    let mut report = InprocReport { speed: INPROC_SPEED, ..Default::default() };
    let dir = std::env::temp_dir().join(format!("mcps-soak-inproc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base = dir.join("ckpt");

    // The dialer takes fresh pipes from a slot refilled per generation.
    let slot: Rc<RefCell<Option<ChannelTransport>>> = Rc::new(RefCell::new(None));
    let chaos = Arc::new(ChaosStats::default());
    let dial_slot = Rc::clone(&slot);
    let dial_stats = Arc::clone(&chaos);
    // Start on a dead pipe: the first push fails and the reconnect
    // machinery dials generation 0's slot.
    let (dead, _) = ChannelTransport::pair();
    let mut client = PcaBedClient::new(
        ChaosTransport::with_stats(dead, ChaosConfig::storm(41), Arc::clone(&chaos)),
        INPROC_SPEED,
    )
    .with_reconnect(
        move || {
            dial_slot.borrow_mut().take().map(|t| {
                ChaosTransport::with_stats(t, ChaosConfig::storm(42), Arc::clone(&dial_stats))
            })
        },
        ReconnectPolicy { base_ms: 2, max_ms: 20, jitter_seed: 17 },
    );

    for gen in 0..cycles {
        let (journal, recovery) = Journal::open(&base).expect("journal open");
        let core = match &recovery.state {
            Some(ckpt) => command_core(5).resume_from(ckpt),
            None => command_core(5),
        };
        let epoch = core.epoch();
        if epoch != gen + 1 {
            violations
                .push(format!("inproc gen {gen}: resumed at epoch {epoch}, expected {}", gen + 1));
        }
        let (server_t, client_t) = ChannelTransport::pair();
        let mut host: ServeHost<ChannelTransport> = ServeHost::new(
            core,
            server_t,
            ServeConfig {
                speed: INPROC_SPEED,
                ingress_capacity: 64,
                trace: false,
                seed: 100 + gen,
                ..Default::default()
            },
        );
        host.attach_journal(journal);
        *slot.borrow_mut() = Some(client_t);

        let start = Instant::now();
        let mut round = 0u64;
        let mut phase_danger = false;
        let mut danger_at = None;
        let mut ok = false;
        while start.elapsed() < Duration::from_secs(30) {
            let spo2 = if phase_danger { 85.0 } else { 97.0 };
            client.send_vital(VitalKind::Spo2, spo2);
            client.send_vital(VitalKind::RespRate, 14.0);
            if round.is_multiple_of(40) {
                client.announce_monitors();
            }
            round += 1;
            host.poll();
            client.step();
            if !phase_danger
                && client.is_permitted()
                && client.pump_actor().max_epoch_seen() >= epoch
            {
                phase_danger = true;
                danger_at = Some(client.sim_now());
            }
            if let Some(at) = danger_at {
                if client.first_stop_at_or_after(at).is_some() {
                    ok = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        if !ok {
            violations
                .push(format!("inproc gen {gen}: cycle never completed (danger={phase_danger})"));
            break;
        }
        let stats = host.stats();
        if stats.critical_overflow > 0 {
            violations.push(format!(
                "inproc gen {gen}: {} critical ingress overflows under load",
                stats.critical_overflow
            ));
        }
        report.critical_overflow += stats.critical_overflow;
        report.critical_sends_dropped += stats.critical_sends_dropped;
        report.vitals_shed += stats.vitals_shed;
        report.peers_dropped += stats.peers_dropped;
        report.routes_relearned += stats.routes_relearned;
        if let Some(j) = host.journal() {
            report.journal_records += j.appended();
            report.journal_syncs += j.syncs();
        }
        report.cycles += 1;
        // Generation ends here: dropping the host is the crash.
    }

    report.final_epoch = client.pump_actor().max_epoch_seen();
    report.reconnects = client.reconnects();
    report.frames_corrupted = chaos.corrupted();
    report.frames_resynced = chaos.resynced_total();
    report.double_actuations = client.pump_actor().double_actuations();
    if report.double_actuations > 0 {
        violations.push(format!(
            "inproc phase: {} double actuations (epoch fence breached)",
            report.double_actuations
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let out_path = args.get_str("out", "BENCH_soak.json");
    let cycles = args.get_u64("cycles", if quick { 3 } else { 12 });
    let inproc_cycles = args.get_u64("inproc-cycles", if quick { 2 } else { 5 });
    let max_ms = args.get_f64("max-ms", f64::INFINITY);

    let start = Instant::now();
    let mut violations = Vec::new();
    let process = bench_process(cycles, &mut violations);
    let inproc = bench_inproc(inproc_cycles, &mut violations);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let failed = !violations.is_empty();
    for v in &violations {
        eprintln!("bench_soak: VIOLATION: {v}");
    }
    let report = Report { process, inproc, violations, elapsed_ms, quick };
    mcps_bench::write_report(&report, &out_path);
    if failed {
        eprintln!("bench_soak: {} invariant violation(s) — failing", report.violations.len());
        std::process::exit(1);
    }
    mcps_bench::smoke_budget("soak", elapsed_ms, max_ms);
}
