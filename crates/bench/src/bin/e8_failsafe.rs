//! E8 — Fail-safe behaviour under component faults.
//!
//! Injects device and network faults into the running PCA closed loop
//! and measures whether (and how fast) the system reaches a safe state
//! — pump not delivering — after each fault.
//!
//! Fault classes: monitor crash, monitor silent-data, monitor
//! stuck-value, network partition. For each, the ticket interlock is
//! expected to stop the pump within `freshness_timeout + ticket
//! validity` — **except** the stuck-value fault, which freshness
//! checking cannot see (the known limitation this experiment surfaces;
//! mitigated by plausibility/flatline detection, see DESIGN.md).
//!
//! Usage: `e8_failsafe [--trials N] [--seed S]`

use mcps_bench::{fnum, Args, Table};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::stats::Summary;
use mcps_sim::time::{SimDuration, SimTime};

/// The deadline by which the fail-safe must engage: freshness timeout
/// (10 s) + ticket validity (15 s) + one control period of slack.
const FAILSAFE_DEADLINE_SECS: f64 = 10.0 + 15.0 + 5.0;

struct FaultArm {
    name: &'static str,
    oximeter_fault: FaultPlan,
    capnograph_fault: FaultPlan,
    outages: Vec<(SimTime, SimTime)>,
    /// Enable the flatline/plausibility screen in the interlock.
    plausibility: bool,
    /// Whether the fail-safe is expected to catch it.
    expect_failsafe: bool,
    /// Deadline override (plausibility detection needs its window).
    deadline_secs: f64,
}

fn fault_at() -> SimTime {
    SimTime::from_mins(30)
}

fn arms() -> Vec<FaultArm> {
    let both = |kind| {
        (
            FaultPlan::none().with_fault(kind, fault_at(), None),
            FaultPlan::none().with_fault(kind, fault_at(), None),
        )
    };
    let (ox_crash, cap_crash) = both(FaultKind::Crash);
    let (ox_silent, cap_silent) = both(FaultKind::SilentData);
    let (ox_stuck, cap_stuck) = both(FaultKind::StuckValue);
    let (ox_stuck2, cap_stuck2) = both(FaultKind::StuckValue);
    vec![
        FaultArm {
            name: "monitor crash",
            oximeter_fault: ox_crash,
            capnograph_fault: cap_crash,
            outages: vec![],
            plausibility: false,
            expect_failsafe: true,
            deadline_secs: FAILSAFE_DEADLINE_SECS,
        },
        FaultArm {
            name: "monitor silent-data",
            oximeter_fault: ox_silent,
            capnograph_fault: cap_silent,
            outages: vec![],
            plausibility: false,
            expect_failsafe: true,
            deadline_secs: FAILSAFE_DEADLINE_SECS,
        },
        FaultArm {
            name: "monitor stuck-value",
            oximeter_fault: ox_stuck,
            capnograph_fault: cap_stuck,
            outages: vec![],
            plausibility: false,
            expect_failsafe: false, // freshness cannot see frozen data
            deadline_secs: FAILSAFE_DEADLINE_SECS,
        },
        FaultArm {
            name: "stuck-value + plausibility",
            oximeter_fault: ox_stuck2,
            capnograph_fault: cap_stuck2,
            outages: vec![],
            plausibility: true,
            // Flatline window (30 s) + ticket validity + slack.
            expect_failsafe: true,
            deadline_secs: 30.0 + 15.0 + 10.0,
        },
        FaultArm {
            name: "network partition",
            oximeter_fault: FaultPlan::none(),
            capnograph_fault: FaultPlan::none(),
            outages: vec![(fault_at(), SimTime::from_mins(60))],
            plausibility: false,
            expect_failsafe: true,
            deadline_secs: FAILSAFE_DEADLINE_SECS,
        },
    ]
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let trials = args.get_u64("trials", if quick { 5 } else { 25 });
    let seed = args.get_u64("seed", 3);

    println!(
        "E8: fail-safe under faults — fault at t=30min, {trials} trials per class, \
         deadline {FAILSAFE_DEADLINE_SECS:.0}s\n"
    );

    let cohort = CohortGenerator::new(seed, CohortConfig::default());
    let mut t =
        Table::new(["fault class", "fail-safe engaged", "engage p95 s", "expected", "verdict"]);
    let mut all_ok = true;
    for arm in arms() {
        let mut engaged = 0u64;
        let mut latencies = Vec::new();
        for i in 0..trials {
            let mut cfg =
                PcaScenarioConfig::baseline(seed.wrapping_add(1000 + i), cohort.params(i));
            cfg.duration = SimDuration::from_mins(40);
            cfg.oximeter_fault = arm.oximeter_fault.clone();
            cfg.capnograph_fault = arm.capnograph_fault.clone();
            cfg.outages = arm.outages.clone();
            if let Some(il) = cfg.interlock.as_mut() {
                il.plausibility_check = arm.plausibility;
            }
            let out = run_pca_scenario(&cfg);
            // The scenario records stop transitions; fail-safe engaged
            // if the pump ceased delivery after the fault instant.
            if let Some(lat) = out.stop_after(fault_at()) {
                engaged += 1;
                latencies.push(lat);
            }
        }
        let frac = engaged as f64 / trials as f64;
        let p95 = Summary::from_values(&latencies).p95;
        let within = !latencies.is_empty() && p95 <= arm.deadline_secs;
        let ok = if arm.expect_failsafe { frac >= 0.99 && within } else { true };
        all_ok &= ok;
        t.row([
            arm.name.to_owned(),
            format!("{engaged}/{trials}"),
            if latencies.is_empty() { "-".into() } else { fnum(p95) },
            if arm.expect_failsafe { "engage".into() } else { "NOT caught (known gap)".into() },
            if ok { "OK".into() } else { "FAIL".into() },
        ]);
    }
    t.print();
    println!();
    if all_ok {
        println!(
            "SHAPE OK: fail-safe engages within its deadline for every freshness-visible \
             fault; the bare stuck-value gap is documented, and enabling the flatline \
             plausibility screen closes it."
        );
    } else {
        println!("SHAPE WARNING: at least one fault class missed its fail-safe deadline.");
    }
}
