//! Machine-readable network-fabric perf baseline (E7b).
//!
//! Routes the standard fan-out workloads — one publisher, 1..256
//! subscribers on a shared-QoS fabric, plus a multi-topic ward shape
//! (32 beds × 4 vitals topics) — through both the dense-routed engine
//! and the tree-routed reference, and writes msgs/sec per fan-out to
//! `BENCH_net.json`, so routing-throughput regressions show up in
//! version control as number changes rather than anecdotes.
//!
//! Every workload is run with identical RNG seeds on both engines and
//! the planned-delivery counts are required to match exactly — the
//! speedup figures are only meaningful because the work is provably
//! identical.
//!
//! Usage: `bench_fabric [--out PATH] [--publishes N] [--max-ms MS]`
//!
//! `--max-ms` is the CI smoke budget: if the 256-subscriber dense
//! workload takes longer than this many milliseconds, the run exits
//! nonzero. The ceiling is generous — it catches order-of-magnitude
//! regressions like an accidental fallback to tree routing, not
//! jitter.

use mcps_bench::Args;
use mcps_net::fabric::{Fabric, PlannedDelivery, Topic};
use mcps_net::qos::LinkQos;
use mcps_net::reference::ReferenceFabric;
use mcps_sim::rng::RngFactory;
use mcps_sim::time::SimTime;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkloadReport {
    name: String,
    subscribers: usize,
    publishes: u64,
    planned_deliveries: u64,
    dense_millis: f64,
    reference_millis: f64,
    dense_msgs_per_sec: f64,
    reference_msgs_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    engine: String,
    qos: String,
    workloads: Vec<WorkloadReport>,
}

/// Heterogeneous per-link QoS: every directed link gets an explicit
/// override (base QoS with a per-link latency tweak) plus a long-past
/// outage window. This is the configuration shape of a real ward —
/// mixed link qualities, maintenance windows — and it is exactly the
/// per-link state the dense engine packs into one record while the
/// reference walks three separate trees per message.
fn link_qos_for(base: LinkQos, i: usize) -> LinkQos {
    base.with_latency(base.base_latency + mcps_sim::time::SimDuration::from_micros(i as u64 % 32))
}

fn stale_outage() -> mcps_net::qos::OutagePlan {
    mcps_net::qos::OutagePlan::none()
        .with_outage(SimTime::ZERO, SimTime::ZERO + mcps_sim::time::SimDuration::from_micros(1))
}

/// Builds a fabric (dense or reference is decided by the caller's
/// closures) with `subs` subscribers per topic across `topics` scoped
/// topics, and routes `publishes` messages round-robin over the topics.
fn run_dense(qos: LinkQos, topics: usize, subs: usize, publishes: u64) -> (f64, u64) {
    let mut fabric = Fabric::new();
    fabric.set_default_qos(qos);
    let publisher = fabric.add_endpoint("pub");
    let topic_list: Vec<Topic> =
        (0..topics).map(|t| Topic::new(format!("bed{t}/vitals/spo2"))).collect();
    for (t, topic) in topic_list.iter().enumerate() {
        for i in 0..subs {
            let ep = fabric.add_endpoint(&format!("bed{t}/sub{i}"));
            fabric.subscribe(ep, topic.clone());
            fabric.set_link(publisher, ep, link_qos_for(qos, t * subs + i));
            fabric.set_outages(publisher, ep, stale_outage());
        }
    }
    let ids: Vec<_> = topic_list.iter().map(|t| fabric.intern_topic(t)).collect();
    let mut rng = RngFactory::new(1).stream("bench");
    let mut scratch: Vec<PlannedDelivery> = Vec::new();
    let mut planned = 0u64;
    let start = Instant::now();
    for m in 0..publishes {
        let tid = ids[(m as usize) % ids.len()];
        scratch.clear();
        fabric.publish_topic_into(publisher, tid, SimTime::from_millis(m), &mut rng, &mut scratch);
        planned += scratch.len() as u64;
    }
    (start.elapsed().as_secs_f64() * 1_000.0, planned)
}

fn run_reference(qos: LinkQos, topics: usize, subs: usize, publishes: u64) -> (f64, u64) {
    let mut fabric = ReferenceFabric::new();
    fabric.set_default_qos(qos);
    let publisher = fabric.add_endpoint("pub");
    let topic_list: Vec<Topic> =
        (0..topics).map(|t| Topic::new(format!("bed{t}/vitals/spo2"))).collect();
    for (t, topic) in topic_list.iter().enumerate() {
        for i in 0..subs {
            let ep = fabric.add_endpoint(&format!("bed{t}/sub{i}"));
            fabric.subscribe(ep, topic.clone());
            fabric.set_link(publisher, ep, link_qos_for(qos, t * subs + i));
            fabric.set_outages(publisher, ep, stale_outage());
        }
    }
    let mut rng = RngFactory::new(1).stream("bench");
    let mut planned = 0u64;
    let start = Instant::now();
    for m in 0..publishes {
        let topic = &topic_list[(m as usize) % topic_list.len()];
        planned += fabric.publish(publisher, topic, SimTime::from_millis(m), &mut rng).len() as u64;
    }
    (start.elapsed().as_secs_f64() * 1_000.0, planned)
}

fn workload(
    name: &str,
    qos: LinkQos,
    topics: usize,
    subs: usize,
    publishes: u64,
) -> WorkloadReport {
    // Warm-up pass keeps one-time costs (page faults, lazy init) out
    // of the measured figures on both engines alike.
    let _ = run_dense(qos, topics, subs, publishes.min(100));
    let _ = run_reference(qos, topics, subs, publishes.min(100));
    let (dense_ms, dense_planned) = run_dense(qos, topics, subs, publishes);
    let (ref_ms, ref_planned) = run_reference(qos, topics, subs, publishes);
    assert_eq!(
        dense_planned, ref_planned,
        "{name}: dense and reference planned different delivery counts"
    );
    // Each publish routes one message per subscriber of its topic
    // (loss decides delivery, but every route is planned and sampled).
    let routed = publishes * subs as u64;
    WorkloadReport {
        name: name.to_owned(),
        subscribers: subs,
        publishes,
        planned_deliveries: dense_planned,
        dense_millis: dense_ms,
        reference_millis: ref_ms,
        dense_msgs_per_sec: routed as f64 / (dense_ms / 1_000.0).max(1e-9),
        reference_msgs_per_sec: routed as f64 / (ref_ms / 1_000.0).max(1e-9),
        speedup: ref_ms / dense_ms.max(1e-9),
    }
}

fn main() {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_net.json");
    let publishes = args.get_u64("publishes", 20_000);
    let max_ms = args.get_u64("max-ms", 5_000) as f64;

    let mut workloads = Vec::new();
    // Routing-dominated workloads: ideal links, so the figures compare
    // the routing cores rather than the (shared, irreducible) link
    // stochastics. `routing/256` is the headline ≥5× acceptance metric.
    for &subs in &[1usize, 16, 64, 256] {
        workloads.push(workload(&format!("routing/{subs}"), LinkQos::ideal(), 1, subs, publishes));
    }
    // End-to-end planning with stochastic wifi links (loss + jitter
    // draws included) — what a scenario actually pays per publish.
    for &subs in &[16usize, 256] {
        workloads.push(workload(
            &format!("planning_wifi/{subs}"),
            LinkQos::wifi(),
            1,
            subs,
            publishes,
        ));
    }
    // The multi-bed ward shape: many scoped topics, small fan-out each.
    workloads.push(workload("ward/32beds_x4subs", LinkQos::wifi(), 32, 4, publishes));

    let smoke_ms = workloads[3].dense_millis;
    let routing256_speedup = workloads[3].speedup;
    let report = BenchReport {
        engine: "dense-routed".to_owned(),
        qos: "ideal (routing/*), wifi (planning_wifi/*, ward/*)".to_owned(),
        workloads,
    };
    mcps_bench::write_report(&report, &out_path);
    mcps_bench::smoke_budget("routing/256", smoke_ms, max_ms);
    println!("routing/256 dense-vs-reference speedup: {routing256_speedup:.2}x");
}
