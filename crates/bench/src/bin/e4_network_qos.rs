//! E4 — Network QoS requirements for closed-loop safety (claim C4).
//!
//! Sweeps one-way latency and packet loss over the PCA interlock
//! scenario, comparing the **command** and **ticket** enforcement
//! strategies on a deliberately dangerous patient (opioid-sensitive,
//! aggressive proxy pressing).
//!
//! Expected shape: the command interlock degrades with loss/latency
//! (stop commands vanish), while the ticket interlock's harm stays
//! bounded — missing grants merely pause therapy. The knee of the
//! command curve defines the QoS requirement the network controller
//! must guarantee.
//!
//! Usage: `e4_network_qos [--patients N] [--hours H] [--seed S]`

use mcps_bench::{fnum, parallel_map, Args, Table};
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_net::qos::LinkQos;
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::metrics::Telemetry;
use mcps_sim::time::SimDuration;

struct Cell {
    severe_secs: f64,
    analgesia: f64,
    delivery_ratio: f64,
}

fn run_cell_with(
    strategy: InterlockStrategy,
    qos: LinkQos,
    outages: Vec<(mcps_sim::time::SimTime, mcps_sim::time::SimTime)>,
    patients: u64,
    hours: f64,
    seed: u64,
) -> Cell {
    // A risk-enriched cohort: this experiment probes the interlock
    // under stress, so every patient is sensitive.
    let cohort = CohortGenerator::new(
        seed,
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.2 },
    );
    let mut severe = 0.0;
    let mut analgesia = 0.0;
    let outcomes = parallel_map((0..patients).collect(), |i| {
        let mut cfg = PcaScenarioConfig::baseline(seed.wrapping_add(i), cohort.params(i));
        cfg.duration = SimDuration::from_secs_f64(hours * 3600.0);
        cfg.proxy_rate_per_hour = 8.0;
        cfg.qos = qos;
        cfg.outages = outages.clone();
        cfg.interlock = Some(InterlockConfig {
            strategy,
            detector: DetectorKind::Fusion,
            ..InterlockConfig::default()
        });
        cfg.pump.ticket_mode = matches!(strategy, InterlockStrategy::Ticket { .. });
        run_pca_scenario(&cfg)
    });
    // Each scenario harvested its own telemetry shard; merging them in
    // patient order gives the cell's aggregate network figures.
    let mut bus = Telemetry::new();
    for out in outcomes {
        severe += out.patient.secs_below_severe;
        analgesia += out.patient.frac_adequate_analgesia;
        bus.merge_owned(out.telemetry);
    }
    Cell {
        severe_secs: severe / patients as f64,
        analgesia: analgesia / patients as f64,
        delivery_ratio: bus.counter("net.delivered") as f64 / bus.counter("net.sent").max(1) as f64,
    }
}

fn run_cell(
    strategy: InterlockStrategy,
    qos: LinkQos,
    patients: u64,
    hours: f64,
    seed: u64,
) -> Cell {
    run_cell_with(strategy, qos, Vec::new(), patients, hours, seed)
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let patients = args.get_u64("patients", if quick { 6 } else { 20 });
    let hours = args.get_f64("hours", if quick { 1.0 } else { 2.0 });
    let seed = args.get_u64("seed", 7);

    println!(
        "E4: interlock safety vs network QoS — {patients} sensitive patients × {hours} h per cell\n"
    );

    let strategies: [(&str, InterlockStrategy); 2] = [
        ("command", InterlockStrategy::Command),
        (
            "ticket",
            InterlockStrategy::Ticket {
                validity: SimDuration::from_secs(15),
                period: SimDuration::from_secs(5),
            },
        ),
    ];

    println!("-- loss sweep (latency 20 ms) --");
    let mut t =
        Table::new(["strategy", "loss %", "mean s<85% /pt", "analgesia frac", "net delivery"]);
    let mut command_low_loss = f64::NAN;
    let mut command_high_loss = f64::NAN;
    let mut ticket_high_loss = f64::NAN;
    for &(name, strategy) in &strategies {
        for &loss in &[0.0, 0.05, 0.15, 0.30, 0.50] {
            let qos = LinkQos::ideal().with_latency(SimDuration::from_millis(20)).with_loss(loss);
            let cell = run_cell(strategy, qos, patients, hours, seed);
            if name == "command" && loss == 0.0 {
                command_low_loss = cell.severe_secs;
            }
            if name == "command" && loss == 0.50 {
                command_high_loss = cell.severe_secs;
            }
            if name == "ticket" && loss == 0.50 {
                ticket_high_loss = cell.severe_secs;
            }
            t.row([
                name.to_owned(),
                format!("{:.0}", loss * 100.0),
                fnum(cell.severe_secs),
                fnum(cell.analgesia),
                fnum(cell.delivery_ratio),
            ]);
        }
    }
    t.print();

    println!("\n-- latency sweep (loss 0%) --");
    let mut t = Table::new(["strategy", "latency ms", "mean s<85% /pt", "analgesia frac"]);
    for &(name, strategy) in &strategies {
        for &ms in &[2u64, 250, 1000, 5000, 15000] {
            let qos = LinkQos::ideal().with_latency(SimDuration::from_millis(ms));
            let cell = run_cell(strategy, qos, patients, hours, seed);
            t.row([name.to_owned(), ms.to_string(), fnum(cell.severe_secs), fnum(cell.analgesia)]);
        }
    }
    t.print();

    println!("\n-- partition sweep (outage starting at t=30min; wired network otherwise) --");
    let mut t = Table::new(["strategy", "partition min", "mean s<85% /pt", "analgesia frac"]);
    let mut command_part = f64::NAN;
    let mut ticket_part = f64::NAN;
    for &(name, strategy) in &strategies {
        for &mins in &[0u64, 10, 30, 60] {
            let outages = if mins == 0 {
                vec![]
            } else {
                vec![(
                    mcps_sim::time::SimTime::from_mins(30),
                    mcps_sim::time::SimTime::from_mins(30 + mins),
                )]
            };
            let cell = run_cell_with(strategy, LinkQos::wired(), outages, patients, hours, seed);
            if mins == 60 {
                if name == "command" {
                    command_part = cell.severe_secs;
                } else {
                    ticket_part = cell.severe_secs;
                }
            }
            t.row([
                name.to_owned(),
                mins.to_string(),
                fnum(cell.severe_secs),
                fnum(cell.analgesia),
            ]);
        }
    }
    t.print();

    println!();
    let loss_ok = command_high_loss >= command_low_loss * 0.5; // retry keeps command usable
    let partition_separates = ticket_part <= command_part;
    let _ = (command_high_loss, ticket_high_loss, loss_ok);
    if partition_separates {
        println!(
            "SHAPE OK: under a 60-min partition the ticket interlock stays fail-safe \
             ({ticket_part:.0}s severe vs command {command_part:.0}s); random loss is absorbed \
             by re-sends in both strategies."
        );
    } else {
        println!(
            "SHAPE WARNING: partition — command {command_part:.0}s vs ticket {ticket_part:.0}s."
        );
    }
}
