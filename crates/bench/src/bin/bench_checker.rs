//! Machine-readable checker perf baseline.
//!
//! Runs the standard checker workloads — the five E5 interlock
//! variants, the seven E13 failover variants (clock-activity reduction
//! on), a reduction on/off comparison pair, and the
//! `timer_chain(3, bound)` state-space blowups for bounds 10 and 20 —
//! on the packed engine and writes throughput (states/sec), state
//! counts and peak arena size to `BENCH_checker.json`, so perf
//! regressions show up in version control as number changes rather
//! than anecdotes.
//!
//! The E13 workloads are also a *property gate*: every failover
//! variant's verdict is checked against its expected one (the three
//! protocol properties must hold, the seeded mutants must violate),
//! and any mismatch exits nonzero — a protocol regression fails CI
//! outright.
//!
//! Usage: `bench_checker [--out PATH] [--budget STATES] [--max-ms MS]
//!                       [--slow]`
//!
//! `--max-ms` is the CI smoke budget: if the `state_space_bound20`
//! workload takes longer than this many milliseconds, the run exits
//! nonzero. The ceiling is generous (default 10000 ms against ~30 ms
//! measured) — it catches order-of-magnitude regressions like an
//! accidental fallback to the reference engine, not jitter. `--slow`
//! adds the unreduced `SplitBrain` run (~2.35M states, tens of
//! seconds) — the headline reduction comparison for the committed
//! baseline, too slow for the CI smoke run.

use mcps_bench::{timer_chain, Args};
use mcps_safety::models::{
    check_failover_variant_stats, check_pca_variant_stats, FailoverModelVariant, PcaModelVariant,
};
use mcps_safety::pack::{ExploreMode, Reduction};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkloadReport {
    name: String,
    verdict: String,
    states: usize,
    millis: f64,
    states_per_sec: f64,
    arena_bytes: usize,
    words_per_state: usize,
    bfs_layers: usize,
    peak_layer: usize,
}

#[derive(Serialize)]
struct BenchReport {
    engine: String,
    mode: String,
    budget: usize,
    workloads: Vec<WorkloadReport>,
}

fn main() {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_checker.json");
    let budget = args.get_u64("budget", 50_000_000) as usize;
    let max_ms = args.get_u64("max-ms", 10_000) as f64;
    let slow = args.has_flag("slow");

    let mut workloads = Vec::new();
    for variant in PcaModelVariant::ALL {
        let start = Instant::now();
        let (outcome, stats) = check_pca_variant_stats(variant, budget, ExploreMode::Auto);
        workloads.push(report(format!("e5/{variant:?}"), outcome_name(&outcome), stats, start));
    }

    // E13 failover protocol: every variant under the clock-activity
    // reduction, verdict-gated against the expected one.
    let mut property_failures = 0u32;
    for variant in FailoverModelVariant::ALL {
        let start = Instant::now();
        let (outcome, stats) = check_failover_variant_stats(
            variant,
            budget,
            ExploreMode::Auto,
            Reduction::ClockActive,
        );
        let expected = if variant.expected_safe() { "holds" } else { "violated" };
        let verdict = outcome_name(&outcome);
        if verdict != expected {
            eprintln!("PROPERTY FAIL e13/{variant:?}: expected {expected}, got {verdict}");
            property_failures += 1;
        }
        workloads.push(report(format!("e13/{variant:?}"), verdict, stats, start));
    }
    // Reduction on/off comparison: PrimaryCrash unreduced every run
    // (fast); SplitBrain unreduced only under --slow (the headline
    // ~7× state / ~26× wall-clock win, tens of seconds).
    let mut unreduced = vec![FailoverModelVariant::PrimaryCrash];
    if slow {
        unreduced.push(FailoverModelVariant::SplitBrain);
    }
    for variant in unreduced {
        let start = Instant::now();
        let (outcome, stats) =
            check_failover_variant_stats(variant, budget, ExploreMode::Auto, Reduction::None);
        workloads.push(report(
            format!("e13/{variant:?}/unreduced"),
            outcome_name(&outcome),
            stats,
            start,
        ));
    }

    let mut bound20_ms = 0.0;
    for bound in [10u32, 20] {
        let net = timer_chain(3, bound);
        let start = Instant::now();
        let (outcome, stats) = net.check_safety_stats(|_| false, budget, ExploreMode::Auto);
        let r = report(format!("state_space_bound{bound}"), outcome_name(&outcome), stats, start);
        if bound == 20 {
            bound20_ms = r.millis;
        }
        workloads.push(r);
    }

    let report = BenchReport {
        engine: "packed-arena".to_owned(),
        mode: "auto".to_owned(),
        budget,
        workloads,
    };
    mcps_bench::write_report(&report, &out_path);
    if property_failures > 0 {
        eprintln!("FAIL: {property_failures} failover property verdict(s) wrong");
        std::process::exit(1);
    }
    mcps_bench::smoke_budget("state_space_bound20", bound20_ms, max_ms);
}

fn outcome_name(outcome: &mcps_safety::CheckOutcome) -> String {
    match outcome {
        mcps_safety::CheckOutcome::Holds { .. } => "holds".to_owned(),
        mcps_safety::CheckOutcome::Violated { .. } => "violated".to_owned(),
        mcps_safety::CheckOutcome::Exhausted { .. } => "exhausted".to_owned(),
    }
}

fn report(
    name: String,
    verdict: String,
    stats: mcps_safety::ExploreStats,
    start: Instant,
) -> WorkloadReport {
    let millis = start.elapsed().as_secs_f64() * 1_000.0;
    WorkloadReport {
        name,
        verdict,
        states: stats.states,
        millis,
        states_per_sec: stats.states as f64 / (millis / 1_000.0).max(1e-9),
        arena_bytes: stats.arena_bytes,
        words_per_state: stats.words_per_state,
        bfs_layers: stats.layers,
        peak_layer: stats.peak_layer,
    }
}
