//! E5 — Model-based verification of the interlock design (claim C5).
//!
//! Model-checks the PCA interlock timed-automata network in five
//! variants: two correct designs and three seeded defects. For each,
//! reports the verdict, the state count, the wall-clock time and — for
//! violations — the length of the shortest counterexample.
//!
//! Expected shape: the correct designs verify; every defect yields a
//! counterexample; the ticket design's fail-safety survives a lossy
//! network that defeats the command design.
//!
//! Usage: `e5_verification [--budget STATES] [--trace]`

use mcps_bench::{Args, Table};
use mcps_safety::checker::CheckOutcome;
use mcps_safety::models::{check_pca_variant, PcaModelVariant};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let budget = args.get_u64("budget", 5_000_000) as usize;
    let show_traces = args.has_flag("trace");

    println!("E5: model checking the PCA interlock (budget {budget} states)\n");
    println!("property: whenever the monitor detects a breach, the pump is stopped");
    println!("          within the variant's deadline (bounded response)\n");

    let mut t = Table::new([
        "variant",
        "expected",
        "verdict",
        "states",
        "time ms",
        "cex steps",
        "cex model-time",
    ]);
    let mut all_match = true;
    for variant in PcaModelVariant::ALL {
        let start = Instant::now();
        let outcome = check_pca_variant(variant, budget);
        let elapsed = start.elapsed().as_millis();
        let (verdict, states, cex_steps, cex_time) = match &outcome {
            CheckOutcome::Holds { states } => ("HOLDS", *states, String::new(), String::new()),
            CheckOutcome::Violated { trace, states } => {
                ("VIOLATED", *states, trace.steps.len().to_string(), trace.elapsed().to_string())
            }
            CheckOutcome::Exhausted { budget } => {
                ("EXHAUSTED", *budget, String::new(), String::new())
            }
        };
        let matches = outcome.holds() == variant.expected_safe();
        all_match &= matches;
        t.row([
            variant.description().to_owned(),
            if variant.expected_safe() { "safe".into() } else { "defect".into() },
            verdict.to_owned(),
            states.to_string(),
            elapsed.to_string(),
            cex_steps,
            cex_time,
        ]);
        if show_traces {
            if let Some(trace) = outcome.trace() {
                println!("counterexample for {variant:?}:\n{trace}");
            }
        }
    }
    t.print();
    println!();
    if all_match {
        println!("SHAPE OK: every correct design verified, every seeded defect produced a counterexample.");
    } else {
        println!("SHAPE WARNING: at least one verdict contradicts the design expectation.");
    }
}
