//! E5 — Model-based verification of the interlock design (claim C5).
//!
//! Model-checks the PCA interlock timed-automata network in five
//! variants: two correct designs and three seeded defects. For each,
//! reports the verdict, the state count, the wall-clock time, the
//! checker throughput (states/sec) and — for violations — the length
//! of the shortest counterexample. Throughput and arena figures are
//! also exported through the [`Telemetry`] bus, the same sink every
//! other experiment reports through.
//!
//! Expected shape: the correct designs verify; every defect yields a
//! counterexample; the ticket design's fail-safety survives a lossy
//! network that defeats the command design.
//!
//! Usage: `e5_verification [--budget STATES] [--trace]`
//!
//! [`Telemetry`]: mcps_sim::metrics::Telemetry

use mcps_bench::{Args, Table};
use mcps_safety::checker::CheckOutcome;
use mcps_safety::models::{check_pca_variant_stats, PcaModelVariant};
use mcps_safety::pack::ExploreMode;
use mcps_sim::metrics::Telemetry;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let budget = args.get_u64("budget", 5_000_000) as usize;
    let show_traces = args.has_flag("trace");

    println!("E5: model checking the PCA interlock (budget {budget} states)\n");
    println!("property: whenever the monitor detects a breach, the pump is stopped");
    println!("          within the variant's deadline (bounded response)\n");

    let mut t = Table::new([
        "variant",
        "expected",
        "verdict",
        "states",
        "time ms",
        "kstates/s",
        "cex steps",
        "cex model-time",
    ]);
    let mut bus = Telemetry::new();
    bus.annotate("experiment", "e5_verification");
    let mut all_match = true;
    for variant in PcaModelVariant::ALL {
        let start = Instant::now();
        let (outcome, stats) = check_pca_variant_stats(variant, budget, ExploreMode::Auto);
        let elapsed = start.elapsed();
        let (verdict, states, cex_steps, cex_time) = match &outcome {
            CheckOutcome::Holds { states } => ("HOLDS", *states, String::new(), String::new()),
            CheckOutcome::Violated { trace, states } => {
                ("VIOLATED", *states, trace.steps.len().to_string(), trace.elapsed().to_string())
            }
            CheckOutcome::Exhausted { budget } => {
                ("EXHAUSTED", *budget, String::new(), String::new())
            }
        };
        let states_per_sec = stats.states as f64 / elapsed.as_secs_f64().max(1e-9);
        let key = format!("checker.{variant:?}");
        bus.incr(&format!("{key}.states"), stats.states as u64);
        bus.incr(&format!("{key}.arena_bytes"), stats.arena_bytes as u64);
        bus.observe(&format!("{key}.states_per_sec"), states_per_sec);
        let matches = outcome.holds() == variant.expected_safe();
        all_match &= matches;
        t.row([
            variant.description().to_owned(),
            if variant.expected_safe() { "safe".into() } else { "defect".into() },
            verdict.to_owned(),
            states.to_string(),
            elapsed.as_millis().to_string(),
            format!("{:.0}", states_per_sec / 1_000.0),
            cex_steps,
            cex_time,
        ]);
        if show_traces {
            if let Some(trace) = outcome.trace() {
                println!("counterexample for {variant:?}:\n{trace}");
            }
        }
    }
    t.print();
    println!();
    if all_match {
        println!("SHAPE OK: every correct design verified, every seeded defect produced a counterexample.");
    } else {
        println!("SHAPE WARNING: at least one verdict contradicts the design expectation.");
    }
    println!("\ntelemetry:\n{}", bus.render_report());
}
