//! Machine-readable runtime scheduler baseline (E11).
//!
//! Benchmarks the timer-wheel scheduler against the retained
//! binary-heap reference engine and writes `BENCH_runtime.json`:
//!
//! 1. **Engine throughput** — both engines run identical deterministic
//!    workloads at the scheduler API level (schedule/pop, no actors);
//!    the figure is events popped per wall second. Workloads:
//!    `pure_periodic` (sparse periodic timers, the fabric's steady
//!    state), `mixed_horizon` (events filed across every wheel level
//!    plus the beyond-horizon overflow), `cancel_heavy` (schedule-many
//!    -far / fire-few churn — the repo has no cancel API, so the
//!    costly half of a cancel-heavy load, parking events that are not
//!    due for hours, is what this models) and `same_instant_burst`
//!    (whole instants drained through the ready ring). Every workload
//!    hashes its pop sequence `(at, target, msg)` and the run aborts if
//!    the two engines disagree — a conformance check on every bench.
//! 2. **Kernel batched dispatch** — the full `Simulation` running the
//!    same burst workload as the `runtime/batched_dispatch/1024`
//!    criterion bench (500 instants × 1024 same-instant messages), so
//!    the committed events/s figure is directly comparable.
//! 3. **E1 cohort wall clock** — the PCA-interlock cohort (patients ×
//!    hours × 4 arms) end to end: the scheduler win as seen by a real
//!    experiment, not a microbench.
//! 4. **Steady-state allocation audit** — a counting global allocator
//!    proves a warmed-then-reset scheduler replays an identical
//!    mixed workload with **zero** heap allocations (slot buckets,
//!    ready ring and overflow list all retain capacity).
//!
//! Usage: `bench_runtime [--out PATH] [--events N] [--quick] [--max-ms MS]`

use mcps_bench::{parallel_map, Args};
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_runtime::prelude::*;
use mcps_runtime::scheduler::{reference::ReferenceScheduler, Scheduler};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Passes every request to the system allocator, counting allocations
/// (not frees) so steady-state code paths can assert they make none.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Serialize)]
struct Report {
    engines: Vec<WorkloadReport>,
    sim_batched: SimBatchedReport,
    e1_cohort: E1CohortReport,
    allocs: AllocReport,
    elapsed_ms: f64,
    quick: bool,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: &'static str,
    events: u64,
    wheel_ms: f64,
    heap_ms: f64,
    wheel_events_per_sec: f64,
    heap_events_per_sec: f64,
    speedup: f64,
    conformance_hash: String,
}

#[derive(Serialize)]
struct SimBatchedReport {
    rounds: u64,
    per_round: u64,
    iters: u64,
    best_ms: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct E1CohortReport {
    patients: u64,
    hours: f64,
    arms: u64,
    wall_ms: f64,
    severe_events: u64,
}

#[derive(Serialize)]
struct AllocReport {
    warm_pass_allocs: u64,
    steady_pass_allocs: u64,
}

// ---------------------------------------------------------------------------
// Engine abstraction: the wheel and the heap behind one trait.

trait Engine {
    fn schedule(&mut self, at: SimTime, target: ActorId, msg: u64);
    fn pop(&mut self) -> Option<(SimTime, ActorId, u64)>;
    fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, ActorId, u64)>;
}

impl Engine for Scheduler<u64> {
    fn schedule(&mut self, at: SimTime, target: ActorId, msg: u64) {
        self.schedule_at(at, target, msg);
    }
    fn pop(&mut self) -> Option<(SimTime, ActorId, u64)> {
        self.pop_due().map(|e| (e.at, e.target, e.msg))
    }
    fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, ActorId, u64)> {
        self.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg))
    }
}

impl Engine for ReferenceScheduler<u64> {
    fn schedule(&mut self, at: SimTime, target: ActorId, msg: u64) {
        self.schedule_at(at, target, msg);
    }
    fn pop(&mut self) -> Option<(SimTime, ActorId, u64)> {
        self.pop_due().map(|e| (e.at, e.target, e.msg))
    }
    fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, ActorId, u64)> {
        self.pop_due_until(deadline).map(|e| (e.at, e.target, e.msg))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

fn hash_pop(h: u64, at: SimTime, target: ActorId, msg: u64) -> u64 {
    fnv(fnv(fnv(h, at.as_micros()), u64::from(target.index())), msg)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Workloads. Each is deterministic in `n`, returns (events, pop hash).

/// 64 staggered periodic timers re-arming on every fire — the sparse
/// steady state of the device fabric.
fn pure_periodic<E: Engine + ?Sized>(e: &mut E, n: u64) -> (u64, u64) {
    const ACTORS: u64 = 64;
    for i in 0..ACTORS {
        e.schedule(SimTime::from_micros(1_000 + i * 13), ActorId::from_index(i as u32), i);
    }
    let mut scheduled = ACTORS;
    let mut popped = 0u64;
    let mut h = FNV_OFFSET;
    while let Some((at, target, msg)) = e.pop() {
        h = hash_pop(h, at, target, msg);
        popped += 1;
        if scheduled < n {
            scheduled += 1;
            // Per-timer period in the 1–2 ms band, co-prime-ish so the
            // timers drift through each other instead of phase-locking.
            let period = 977 + (msg % ACTORS) * 13;
            e.schedule(SimTime::from_micros(at.as_micros() + period), target, msg);
        }
    }
    (popped, h)
}

/// Events filed upfront across every wheel level — horizons from ~1 ms
/// to beyond the 2^42 µs wheel horizon — then drained in full.
fn mixed_horizon<E: Engine + ?Sized>(e: &mut E, n: u64) -> (u64, u64) {
    for k in 0..n {
        let r = splitmix(k ^ 0x00c0_ffee);
        let shift = 10 + (k % 34) as u32; // 2^10 .. 2^43 µs spans all levels
        let at = 1 + (r & ((1u64 << shift) - 1));
        e.schedule(SimTime::from_micros(at), ActorId::from_index((r % 48) as u32), k);
    }
    let mut popped = 0u64;
    let mut h = FNV_OFFSET;
    while let Some((at, target, msg)) = e.pop() {
        h = hash_pop(h, at, target, msg);
        popped += 1;
    }
    (popped, h)
}

/// Schedule-many-far / fire-few churn: every round parks 16 events
/// hours out and fires one near timer, so almost everything scheduled
/// is cold inventory — the load shape of cancel-heavy systems (minus
/// the cancels; the queue is drained at the end instead).
fn cancel_heavy<E: Engine + ?Sized>(e: &mut E, rounds: u64) -> (u64, u64) {
    let mut popped = 0u64;
    let mut h = FNV_OFFSET;
    let mut now_ms = 0u64;
    for r in 0..rounds {
        let base_us = now_ms * 1_000;
        for k in 0..16u64 {
            let jitter = splitmix(r * 16 + k) % 7_200_000_000; // up to +2 h
            let far = SimTime::from_micros(base_us + 3_600_000_000 + jitter);
            e.schedule(far, ActorId::from_index((k % 8) as u32), (r << 8) | k);
        }
        now_ms += 1;
        e.schedule(SimTime::from_millis(now_ms), ActorId::from_index(63), r);
        while let Some((at, target, msg)) = e.pop_until(SimTime::from_millis(now_ms)) {
            h = hash_pop(h, at, target, msg);
            popped += 1;
        }
    }
    while let Some((at, target, msg)) = e.pop() {
        h = hash_pop(h, at, target, msg);
        popped += 1;
    }
    (popped, h)
}

/// Whole instants of co-timed events, drained through the ready ring.
fn same_instant_burst<E: Engine + ?Sized>(e: &mut E, instants: u64) -> (u64, u64) {
    const BURST: u64 = 512;
    let mut popped = 0u64;
    let mut h = FNV_OFFSET;
    for inst in 0..instants {
        let t = SimTime::from_millis(inst + 1);
        for k in 0..BURST {
            e.schedule(t, ActorId::from_index((k % 32) as u32), inst * BURST + k);
        }
        while let Some((at, target, msg)) = e.pop_until(t) {
            h = hash_pop(h, at, target, msg);
            popped += 1;
        }
    }
    (popped, h)
}

/// Times `work` on both engines (best of `iters`), asserting the pop
/// sequences hash identically — the heap is the conformance oracle.
fn compare_engines<W>(name: &'static str, iters: u64, work: W) -> WorkloadReport
where
    W: Fn(&mut dyn Engine) -> (u64, u64),
{
    let mut wheel_ms = f64::INFINITY;
    let mut heap_ms = f64::INFINITY;
    let mut wheel_out = (0, 0);
    let mut heap_out = (0, 0);
    for _ in 0..iters {
        let mut w: Scheduler<u64> = Scheduler::new();
        let t0 = Instant::now();
        wheel_out = work(&mut w);
        wheel_ms = wheel_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        let mut r: ReferenceScheduler<u64> = ReferenceScheduler::new();
        let t0 = Instant::now();
        heap_out = work(&mut r);
        heap_ms = heap_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(
        wheel_out, heap_out,
        "{name}: wheel and heap pop sequences diverged — conformance failure"
    );
    let (events, hash) = wheel_out;
    let report = WorkloadReport {
        name,
        events,
        wheel_ms,
        heap_ms,
        wheel_events_per_sec: events as f64 / (wheel_ms / 1e3),
        heap_events_per_sec: events as f64 / (heap_ms / 1e3),
        speedup: heap_ms / wheel_ms,
        conformance_hash: format!("{hash:016x}"),
    };
    println!(
        "{name:>18}: {events:>9} events | wheel {:>8.2} ms ({:>5.1} M/s) | heap {:>8.2} ms \
         ({:>5.1} M/s) | {:>4.2}x",
        report.wheel_ms,
        report.wheel_events_per_sec / 1e6,
        report.heap_ms,
        report.heap_events_per_sec / 1e6,
        report.speedup,
    );
    report
}

// ---------------------------------------------------------------------------
// Kernel batched dispatch: the criterion `runtime/batched_dispatch`
// workload, full Simulation.

#[derive(Clone)]
enum Fan {
    Tick,
    Data,
}

struct Burst {
    sink: ActorId,
    per_round: u64,
    rounds: u64,
}

impl Actor<Fan> for Burst {
    fn handle(&mut self, msg: Fan, ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Tick) && self.rounds > 0 {
            self.rounds -= 1;
            ctx.send_many(self.sink, (0..self.per_round).map(|_| Fan::Data));
            ctx.schedule_self(SimDuration::from_millis(1), Fan::Tick);
        }
    }
}

struct Sink {
    received: u64,
}

impl Actor<Fan> for Sink {
    fn handle(&mut self, msg: Fan, _ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Data) {
            self.received += 1;
        }
    }
}

fn sim_batched(iters: u64) -> SimBatchedReport {
    const ROUNDS: u64 = 500;
    const PER_ROUND: u64 = 1024;
    let mut best_ms = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut sim: Simulation<Fan> = Simulation::new(0);
        sim.trace_mut().set_enabled(false);
        let sink = sim.add_actor("sink", Sink { received: 0 });
        let burst = sim.add_actor("burst", Burst { sink, per_round: PER_ROUND, rounds: ROUNDS });
        sim.schedule(SimTime::ZERO, burst, Fan::Tick);
        sim.run();
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(sim.actor_as::<Sink>(sink).unwrap().received, ROUNDS * PER_ROUND);
    }
    let report = SimBatchedReport {
        rounds: ROUNDS,
        per_round: PER_ROUND,
        iters,
        best_ms,
        events_per_sec: (ROUNDS * PER_ROUND) as f64 / (best_ms / 1e3),
    };
    println!(
        "  sim_batched_1024: {:>9} events | best {:>8.3} ms | {:>5.1} M events/s",
        ROUNDS * PER_ROUND,
        report.best_ms,
        report.events_per_sec / 1e6,
    );
    report
}

// ---------------------------------------------------------------------------
// E1 cohort wall clock: the interlock-efficacy experiment end to end.

fn e1_cohort(patients: u64, hours: f64) -> E1CohortReport {
    let seed = 42u64;
    let arms: [Option<InterlockConfig>; 4] = [
        None,
        Some(InterlockConfig {
            strategy: InterlockStrategy::Command,
            detector: DetectorKind::Threshold,
            ..InterlockConfig::default()
        }),
        Some(InterlockConfig::default()),
        Some(InterlockConfig {
            detector: DetectorKind::FusionWithTrend,
            ..InterlockConfig::default()
        }),
    ];
    let t0 = Instant::now();
    let mut severe = 0u64;
    for interlock in arms {
        let cohort = CohortGenerator::new(seed, CohortConfig::default());
        let shard_severe = parallel_map((0..patients).collect(), |i| {
            let params = cohort.params(i);
            let mut cfg = match interlock {
                Some(il) => {
                    let mut c = PcaScenarioConfig::baseline(seed.wrapping_add(i), params);
                    c.interlock = Some(il);
                    c.pump.ticket_mode = matches!(il.strategy, InterlockStrategy::Ticket { .. });
                    c
                }
                None => PcaScenarioConfig::open_loop(seed.wrapping_add(i), params),
            };
            cfg.duration = SimDuration::from_secs_f64(hours * 3600.0);
            cfg.proxy_rate_per_hour = 4.0;
            u64::from(run_pca_scenario(&cfg).patient.severe_hypox_events)
        });
        severe += shard_severe.iter().sum::<u64>();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "         e1_cohort: {patients} patients x {hours} h x 4 arms | {wall_ms:.0} ms \
         ({severe} severe events)"
    );
    E1CohortReport { patients, hours, arms: 4, wall_ms, severe_events: severe }
}

// ---------------------------------------------------------------------------
// Steady-state allocation audit.

/// One deterministic mixed pass over a scheduler: files across levels
/// and the overflow list, drains instants through the ring.
fn alloc_pass(s: &mut Scheduler<u64>) -> u64 {
    const N: u64 = 20_000;
    for k in 0..N {
        let r = splitmix(k ^ 0x5eed);
        let shift = 10 + (k % 34) as u32;
        let at = 1 + (r & ((1u64 << shift) - 1));
        s.schedule_at(SimTime::from_micros(at), ActorId::from_index((r % 16) as u32), k);
    }
    let mut popped = 0u64;
    while s.pop_due().is_some() {
        popped += 1;
    }
    popped
}

fn steady_state_allocs() -> AllocReport {
    let mut s: Scheduler<u64> = Scheduler::new();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let warm_popped = alloc_pass(&mut s);
    let warm = ALLOCATIONS.load(Ordering::Relaxed) - before;

    s.reset(); // keeps every buffer's capacity
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let steady_popped = alloc_pass(&mut s);
    let steady = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert_eq!(warm_popped, steady_popped, "reset changed the replayed workload");
    assert_eq!(
        steady, 0,
        "steady-state scheduler pass allocated {steady} times — buffer reuse regressed"
    );
    println!("      alloc audit: warm pass {warm} allocations, steady pass {steady} (must be 0)");
    AllocReport { warm_pass_allocs: warm, steady_pass_allocs: steady }
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let out_path = args.get_str("out", "BENCH_runtime.json");
    let max_ms = args.get_f64("max-ms", f64::INFINITY);
    let scale = args.get_u64("events", if quick { 100_000 } else { 2_000_000 });
    let iters = if quick { 1 } else { 3 };

    let start = Instant::now();

    // Single-threaded audit first, before any worker pool exists.
    let allocs = steady_state_allocs();

    let engines = vec![
        compare_engines("pure_periodic", iters, |e| pure_periodic(e, scale)),
        compare_engines("mixed_horizon", iters, |e| mixed_horizon(e, scale / 2)),
        compare_engines("cancel_heavy", iters, |e| cancel_heavy(e, scale / 40)),
        compare_engines("same_instant_burst", iters, |e| same_instant_burst(e, scale / 1_000)),
    ];
    let sim = sim_batched(if quick { 3 } else { 15 });
    let e1 = if quick { e1_cohort(3, 1.0) } else { e1_cohort(12, 1.0) };

    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = Report { engines, sim_batched: sim, e1_cohort: e1, allocs, elapsed_ms, quick };
    mcps_bench::write_report(&report, &out_path);
    mcps_bench::smoke_budget("runtime_scheduler", elapsed_ms, max_ms);
}
