//! E1 — PCA safety-interlock efficacy (DESIGN.md, claim C1).
//!
//! A cohort of virtual post-operative patients receives PCA opioid
//! therapy with a proxy-press hazard (a relative pressing the demand
//! button while the patient is sedated). Three arms:
//!
//! * `open-loop` — conventional pump, no supervision (pre-MCPS),
//! * `threshold-command` — command interlock driven by threshold alarms,
//! * `fusion-ticket` — fail-safe ticket interlock driven by the fusion
//!   detector (the paper's target design),
//! * `trend-ticket` — fusion plus slope-based early detection.
//!
//! Expected shape: the closed-loop arms eliminate (or nearly eliminate)
//! severe hypoxaemic events that the open-loop arm suffers, while
//! keeping analgesia available.
//!
//! Usage: `e1_pca_interlock [--patients N] [--hours H] [--proxy P] [--seed S]`

use mcps_bench::{fnum, parallel_map, Args, Table};
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::stats::Summary;
use mcps_sim::time::SimDuration;

struct ArmResult {
    name: &'static str,
    severe_events: u32,
    patients_with_severe: u32,
    secs_below_severe: Vec<f64>,
    min_spo2: Vec<f64>,
    mean_pain: Vec<f64>,
    frac_analgesia: Vec<f64>,
    drug_mg: Vec<f64>,
    stop_latencies: Vec<f64>,
}

fn run_arm(
    name: &'static str,
    interlock: Option<InterlockConfig>,
    patients: u64,
    hours: f64,
    proxy: f64,
    seed: u64,
) -> ArmResult {
    let cohort = CohortGenerator::new(seed, CohortConfig::default());
    let mut res = ArmResult {
        name,
        severe_events: 0,
        patients_with_severe: 0,
        secs_below_severe: Vec::new(),
        min_spo2: Vec::new(),
        mean_pain: Vec::new(),
        frac_analgesia: Vec::new(),
        drug_mg: Vec::new(),
        stop_latencies: Vec::new(),
    };
    let outcomes = parallel_map((0..patients).collect(), |i| {
        let params = cohort.params(i);
        let mut cfg = match interlock {
            Some(il) => {
                let mut c = PcaScenarioConfig::baseline(seed.wrapping_add(i), params);
                c.interlock = Some(il);
                c.pump.ticket_mode =
                    matches!(il.strategy, InterlockStrategy::Ticket { .. });
                c
            }
            None => PcaScenarioConfig::open_loop(seed.wrapping_add(i), params),
        };
        cfg.duration = SimDuration::from_secs_f64(hours * 3600.0);
        cfg.proxy_rate_per_hour = proxy;
        run_pca_scenario(&cfg)
    });
    for out in outcomes {
        res.severe_events += out.patient.severe_hypox_events;
        if out.patient.severe_hypox_events > 0 {
            res.patients_with_severe += 1;
        }
        res.secs_below_severe.push(out.patient.secs_below_severe);
        res.min_spo2.push(out.patient.min_spo2);
        res.mean_pain.push(out.patient.mean_pain);
        res.frac_analgesia.push(out.patient.frac_adequate_analgesia);
        res.drug_mg.push(out.total_drug_mg);
        if let Some(l) = out.stop_latency_secs {
            res.stop_latencies.push(l);
        }
    }
    res
}

fn main() {
    let args = Args::parse();
    let patients = args.get_u64("patients", if args.has_flag("quick") { 12 } else { 60 });
    let hours = args.get_f64("hours", if args.has_flag("quick") { 1.0 } else { 3.0 });
    let proxy = args.get_f64("proxy", 4.0);
    let seed = args.get_u64("seed", 42);

    println!("E1: PCA interlock efficacy — {patients} patients × {hours} h, proxy {proxy}/h, seed {seed}\n");

    let arms = [
        run_arm("open-loop", None, patients, hours, proxy, seed),
        run_arm(
            "threshold-command",
            Some(InterlockConfig {
                strategy: InterlockStrategy::Command,
                detector: DetectorKind::Threshold,
                ..InterlockConfig::default()
            }),
            patients,
            hours,
            proxy,
            seed,
        ),
        run_arm(
            "fusion-ticket",
            Some(InterlockConfig::default()),
            patients,
            hours,
            proxy,
            seed,
        ),
        run_arm(
            "trend-ticket",
            Some(InterlockConfig {
                detector: DetectorKind::FusionWithTrend,
                ..InterlockConfig::default()
            }),
            patients,
            hours,
            proxy,
            seed,
        ),
    ];

    let mut t = Table::new([
        "arm",
        "severe events",
        "patients w/ severe",
        "mean s<85%",
        "median minSpO2",
        "mean pain",
        "analgesia frac",
        "mean drug mg",
        "stop latency p95 s",
    ]);
    for a in &arms {
        let sev = Summary::from_values(&a.secs_below_severe);
        let spo2 = Summary::from_values(&a.min_spo2);
        let pain = Summary::from_values(&a.mean_pain);
        let anal = Summary::from_values(&a.frac_analgesia);
        let drug = Summary::from_values(&a.drug_mg);
        let lat = Summary::from_values(&a.stop_latencies);
        t.row([
            a.name.to_owned(),
            a.severe_events.to_string(),
            format!("{}/{}", a.patients_with_severe, patients),
            fnum(sev.mean),
            fnum(spo2.median),
            fnum(pain.mean),
            fnum(anal.mean),
            fnum(drug.mean),
            if a.stop_latencies.is_empty() { "-".into() } else { fnum(lat.p95) },
        ]);
    }
    t.print();

    let open = &arms[0];
    let threshold = &arms[1];
    let ticket = &arms[2];
    let trend = &arms[3];
    let mean = |v: &[f64]| Summary::from_values(v).mean;
    let open_severe = mean(&open.secs_below_severe);
    let thr_severe = mean(&threshold.secs_below_severe);
    let tkt_severe = mean(&ticket.secs_below_severe);
    let safety_ok = open_severe > 0.0
        && thr_severe <= open_severe / 5.0
        && tkt_severe <= open_severe / 5.0;
    let availability_ok =
        mean(&ticket.frac_analgesia) >= mean(&open.frac_analgesia) - 0.05;
    println!();
    println!(
        "severe-hypoxaemia patient-time: open {:.0}s, threshold-command {:.0}s ({:.0}x less), \
         fusion-ticket {:.0}s ({:.0}x less)",
        open_severe,
        thr_severe,
        if thr_severe > 0.0 { open_severe / thr_severe } else { f64::INFINITY },
        tkt_severe,
        if tkt_severe > 0.0 { open_severe / tkt_severe } else { f64::INFINITY },
    );
    let trend_severe = mean(&trend.secs_below_severe);
    if safety_ok && availability_ok {
        println!(
            "SHAPE OK: both interlocks cut severe-hypoxaemia time >=5x; the fusion-ticket arm \
             additionally preserves analgesia availability ({:.2} vs open {:.2}, threshold {:.2}); \
             adding trend detection tightens severe time further ({:.0}s -> {:.0}s).",
            mean(&ticket.frac_analgesia),
            mean(&open.frac_analgesia),
            mean(&threshold.frac_analgesia),
            tkt_severe,
            trend_severe
        );
    } else {
        println!(
            "SHAPE WARNING: safety_ok={safety_ok} availability_ok={availability_ok} — see table."
        );
    }
}
