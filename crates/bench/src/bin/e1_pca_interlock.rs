//! E1 — PCA safety-interlock efficacy (DESIGN.md, claim C1).
//!
//! A cohort of virtual post-operative patients receives PCA opioid
//! therapy with a proxy-press hazard (a relative pressing the demand
//! button while the patient is sedated). Three arms:
//!
//! * `open-loop` — conventional pump, no supervision (pre-MCPS),
//! * `threshold-command` — command interlock driven by threshold alarms,
//! * `fusion-ticket` — fail-safe ticket interlock driven by the fusion
//!   detector (the paper's target design),
//! * `trend-ticket` — fusion plus slope-based early detection.
//!
//! Each arm fans the cohort out over seed-isolated shards
//! (`run_shards` via [`parallel_map`]); every patient writes a private
//! [`Telemetry`] bus and the arm's statistics are the deterministic
//! merge of those buses, so the parallel run is byte-identical to a
//! serial one.
//!
//! Expected shape: the closed-loop arms eliminate (or nearly eliminate)
//! severe hypoxaemic events that the open-loop arm suffers, while
//! keeping analgesia available.
//!
//! Usage: `e1_pca_interlock [--patients N] [--hours H] [--proxy P] [--seed S] [--report]`

use mcps_bench::{fnum, parallel_map, Args, Table};
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::metrics::Telemetry;
use mcps_sim::stats::Summary;
use mcps_sim::time::SimDuration;

fn run_arm(
    name: &'static str,
    interlock: Option<InterlockConfig>,
    patients: u64,
    hours: f64,
    proxy: f64,
    seed: u64,
) -> Telemetry {
    let cohort = CohortGenerator::new(seed, CohortConfig::default());
    let shards = parallel_map((0..patients).collect(), |i| {
        let params = cohort.params(i);
        let mut cfg = match interlock {
            Some(il) => {
                let mut c = PcaScenarioConfig::baseline(seed.wrapping_add(i), params);
                c.interlock = Some(il);
                c.pump.ticket_mode = matches!(il.strategy, InterlockStrategy::Ticket { .. });
                c
            }
            None => PcaScenarioConfig::open_loop(seed.wrapping_add(i), params),
        };
        cfg.duration = SimDuration::from_secs_f64(hours * 3600.0);
        cfg.proxy_rate_per_hour = proxy;
        let out = run_pca_scenario(&cfg);

        let mut t = Telemetry::new();
        t.incr("severe_events", u64::from(out.patient.severe_hypox_events));
        if out.patient.severe_hypox_events > 0 {
            t.incr("patients_with_severe", 1);
        }
        t.observe("secs_below_severe", out.patient.secs_below_severe);
        t.observe("min_spo2", out.patient.min_spo2);
        t.observe("mean_pain", out.patient.mean_pain);
        t.observe("frac_analgesia", out.patient.frac_adequate_analgesia);
        t.observe("drug_mg", out.total_drug_mg);
        if let Some(l) = out.stop_latency_secs {
            t.observe("stop_latency_s", l);
        }
        t
    });
    let mut bus = Telemetry::new();
    bus.annotate("arm", name);
    bus.annotate("seed", seed.to_string());
    bus.annotate("patients", patients.to_string());
    bus.annotate("hours", hours.to_string());
    bus.annotate("proxy_per_hour", proxy.to_string());
    for shard in shards {
        bus.merge_owned(shard);
    }
    bus
}

fn summ(bus: &Telemetry, name: &str) -> Summary {
    bus.histogram(name).map(|h| h.summary()).unwrap_or_else(|| Summary::from_values(&[]))
}

fn main() {
    let args = Args::parse();
    let patients = args.get_u64("patients", if args.has_flag("quick") { 12 } else { 60 });
    let hours = args.get_f64("hours", if args.has_flag("quick") { 1.0 } else { 3.0 });
    let proxy = args.get_f64("proxy", 4.0);
    let seed = args.get_u64("seed", 42);

    println!("E1: PCA interlock efficacy — {patients} patients × {hours} h, proxy {proxy}/h, seed {seed}\n");

    let arms = [
        run_arm("open-loop", None, patients, hours, proxy, seed),
        run_arm(
            "threshold-command",
            Some(InterlockConfig {
                strategy: InterlockStrategy::Command,
                detector: DetectorKind::Threshold,
                ..InterlockConfig::default()
            }),
            patients,
            hours,
            proxy,
            seed,
        ),
        run_arm("fusion-ticket", Some(InterlockConfig::default()), patients, hours, proxy, seed),
        run_arm(
            "trend-ticket",
            Some(InterlockConfig {
                detector: DetectorKind::FusionWithTrend,
                ..InterlockConfig::default()
            }),
            patients,
            hours,
            proxy,
            seed,
        ),
    ];

    let mut t = Table::new([
        "arm",
        "severe events",
        "patients w/ severe",
        "mean s<85%",
        "median minSpO2",
        "mean pain",
        "analgesia frac",
        "mean drug mg",
        "stop latency p95 s",
    ]);
    for a in &arms {
        t.row([
            a.manifest().get("arm").cloned().unwrap_or_default(),
            a.counter("severe_events").to_string(),
            format!("{}/{}", a.counter("patients_with_severe"), patients),
            fnum(summ(a, "secs_below_severe").mean),
            fnum(summ(a, "min_spo2").median),
            fnum(summ(a, "mean_pain").mean),
            fnum(summ(a, "frac_analgesia").mean),
            fnum(summ(a, "drug_mg").mean),
            match a.histogram("stop_latency_s") {
                Some(h) => fnum(h.summary().p95),
                None => "-".into(),
            },
        ]);
    }
    t.print();

    if args.has_flag("report") {
        for a in &arms {
            println!("\n-- telemetry: {} --", a.manifest().get("arm").cloned().unwrap_or_default());
            print!("{}", a.render_report());
        }
    }

    let [open, threshold, ticket, trend] = &arms;
    let open_severe = summ(open, "secs_below_severe").mean;
    let thr_severe = summ(threshold, "secs_below_severe").mean;
    let tkt_severe = summ(ticket, "secs_below_severe").mean;
    let safety_ok =
        open_severe > 0.0 && thr_severe <= open_severe / 5.0 && tkt_severe <= open_severe / 5.0;
    let availability_ok =
        summ(ticket, "frac_analgesia").mean >= summ(open, "frac_analgesia").mean - 0.05;
    println!();
    println!(
        "severe-hypoxaemia patient-time: open {:.0}s, threshold-command {:.0}s ({:.0}x less), \
         fusion-ticket {:.0}s ({:.0}x less)",
        open_severe,
        thr_severe,
        if thr_severe > 0.0 { open_severe / thr_severe } else { f64::INFINITY },
        tkt_severe,
        if tkt_severe > 0.0 { open_severe / tkt_severe } else { f64::INFINITY },
    );
    let trend_severe = summ(trend, "secs_below_severe").mean;
    if safety_ok && availability_ok {
        println!(
            "SHAPE OK: both interlocks cut severe-hypoxaemia time >=5x; the fusion-ticket arm \
             additionally preserves analgesia availability ({:.2} vs open {:.2}, threshold {:.2}); \
             adding trend detection tightens severe time further ({:.0}s -> {:.0}s).",
            summ(ticket, "frac_analgesia").mean,
            summ(open, "frac_analgesia").mean,
            summ(threshold, "frac_analgesia").mean,
            tkt_severe,
            trend_severe
        );
    } else {
        println!(
            "SHAPE WARNING: safety_ok={safety_ok} availability_ok={availability_ok} — see table."
        );
    }
}
