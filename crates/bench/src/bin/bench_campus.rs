//! Campus-scale throughput scorecard (E12).
//!
//! Simulates a hospital campus — wards as independent fabric segments,
//! heterogeneous bed mixes (PCA closed loops, monitor-only spot-check
//! beds, x-ray/ventilator procedure rooms), staggered admissions and
//! end-of-run discharges — through the costed shard dispatcher, and
//! writes `BENCH_campus.json`: beds simulated, kernel events, events/s,
//! bed-seconds/s, the real-time factor, peak RSS and the per-shard
//! wall-clock balance.
//!
//! Usage: `bench_campus [--quick] [--seed N] [--beds N] [--wards N]
//!                      [--minutes N] [--workers N] [--out PATH]
//!                      [--max-ms MS] [--min-events-per-sec N]`
//!
//! `--quick` runs a small campus as a CI smoke: it exits nonzero on
//! any invariant violation, if the wall clock exceeds `--max-ms`, or
//! if throughput falls under `--min-events-per-sec`. The full run
//! (default 10 000 beds) is the committed scorecard: 100 wards of 100
//! beds each, ICU wards carrying eight PCA loops, for ≥ 100× real
//! time on the reference machine.

use mcps_bench::{fnum, Args, Table};
use mcps_core::scenarios::campus::{run_campus, CampusConfig, WardOutcome};
use mcps_sim::shard::ShardStats;
use mcps_sim::time::SimDuration;
use std::time::Instant;

#[derive(Debug, serde::Serialize)]
struct CampusInvariants {
    /// Beds that never fully associated (must be 0).
    never_admitted: u32,
    /// Non-discharged beds not associated at the end (must be 0).
    dropped_associations: u32,
    /// Refused data points across all supervisors (pre-association
    /// noise only; bounded per bed).
    data_ignored: u64,
    /// Violations found (0 = clean).
    violations: u32,
}

#[derive(Debug, serde::Serialize)]
struct CampusReport {
    config: CampusConfig,
    beds: u32,
    /// Beds concurrently admitted mid-run: every bed is admitted
    /// within the admission window and no discharge occurs before 70%
    /// of the run, so the full census is concurrent in between.
    concurrent_beds: u32,
    discharged: u32,
    sim_secs: f64,
    wall_ms: f64,
    /// Simulated seconds per wall second.
    realtime_factor: f64,
    /// Bed-seconds simulated per wall second.
    beds_per_sec: f64,
    events: u64,
    events_per_sec: f64,
    peak_rss_mb: f64,
    data_received: u64,
    desat_alarms: u64,
    grants_issued: u64,
    xray_completed: u32,
    shard_balance: f64,
    shard: ShardStats,
    invariants: CampusInvariants,
}

/// Peak resident set (VmHWM) in MiB, from /proc on Linux; 0 elsewhere.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn check_invariants(wards: &[WardOutcome]) -> CampusInvariants {
    let mut inv = CampusInvariants {
        never_admitted: 0,
        dropped_associations: 0,
        data_ignored: 0,
        violations: 0,
    };
    for w in wards {
        inv.never_admitted += w.beds - w.admitted;
        let expected = w.beds - w.discharged;
        inv.dropped_associations += expected.saturating_sub(w.associated_at_end);
        inv.data_ignored += w.data_ignored;
        if w.admitted < w.beds {
            eprintln!("INVARIANT: ward {} admitted {}/{} beds", w.ward, w.admitted, w.beds);
            inv.violations += 1;
        }
        if w.associated_at_end < expected {
            eprintln!(
                "INVARIANT: ward {} holds {}/{} expected associations",
                w.ward, w.associated_at_end, expected
            );
            inv.violations += 1;
        }
        // Scoped topics mean refused traffic is pre-association noise,
        // not cross-bed leakage; a flood here means scoping broke.
        if w.data_ignored > 100 * u64::from(w.beds) {
            eprintln!("INVARIANT: ward {} ignored {} data points", w.ward, w.data_ignored);
            inv.violations += 1;
        }
    }
    inv
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let seed = args.get_u64("seed", 2026);
    let out_path = args.get_str("out", "BENCH_campus.json");
    let max_ms = args.get_u64("max-ms", 600_000) as f64;
    let min_eps = args.get_f64("min-events-per-sec", 0.0);

    let mut cfg = if quick {
        CampusConfig {
            seed,
            wards: 8,
            beds_per_ward: 25,
            icu_wards: 1,
            icu_pca_beds: 6,
            ward_pca_beds: 1,
            duration: SimDuration::from_mins(5),
            admission_window: SimDuration::from_secs(45),
            ..CampusConfig::default()
        }
    } else {
        CampusConfig {
            seed,
            wards: 100,
            beds_per_ward: 100,
            icu_wards: 10,
            icu_pca_beds: 8,
            ward_pca_beds: 1,
            duration: SimDuration::from_mins(30),
            admission_window: SimDuration::from_secs(120),
            ..CampusConfig::default()
        }
    };
    if let Some(wards) = args.get_u64_opt("wards") {
        cfg.wards = wards as u32;
    }
    if let Some(beds) = args.get_u64_opt("beds") {
        cfg.beds_per_ward = (beds as u32).div_ceil(cfg.wards.max(1));
    }
    if let Some(mins) = args.get_u64_opt("minutes") {
        cfg.duration = SimDuration::from_mins(mins);
    }
    let workers = args.get_u64("workers", 0) as usize;

    println!(
        "campus: {} wards × {} beds = {} beds, {:.0} s simulated{}",
        cfg.wards,
        cfg.beds_per_ward,
        cfg.total_beds(),
        cfg.duration.as_secs_f64(),
        if quick { " (quick)" } else { "" },
    );

    let start = Instant::now();
    let (wards, stats) = run_campus(&cfg, workers);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let sim_secs = cfg.duration.as_secs_f64();
    let events: u64 = wards.iter().map(|w| w.events).sum();
    let discharged: u32 = wards.iter().map(|w| w.discharged).sum();
    let invariants = check_invariants(&wards);
    let report = CampusReport {
        beds: cfg.total_beds(),
        concurrent_beds: cfg.total_beds(),
        discharged,
        sim_secs,
        wall_ms,
        realtime_factor: sim_secs / (wall_ms / 1e3),
        beds_per_sec: f64::from(cfg.total_beds()) * sim_secs / (wall_ms / 1e3),
        events,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        peak_rss_mb: peak_rss_mb(),
        data_received: wards.iter().map(|w| w.data_received).sum(),
        desat_alarms: wards.iter().map(|w| w.desat_alarms).sum(),
        grants_issued: wards.iter().map(|w| w.grants_issued).sum(),
        xray_completed: wards.iter().map(|w| w.xray_completed).sum(),
        shard_balance: stats.balance(),
        shard: stats,
        invariants,
        config: cfg,
    };

    let mut table = Table::new(["metric", "value"]);
    table.row(["beds".into(), report.beds.to_string()]);
    table.row(["events".into(), report.events.to_string()]);
    table.row(["wall ms".into(), fnum(report.wall_ms)]);
    table.row(["realtime ×".into(), fnum(report.realtime_factor)]);
    table.row(["bed-secs/s".into(), fnum(report.beds_per_sec)]);
    table.row(["events/s".into(), fnum(report.events_per_sec)]);
    table.row(["peak RSS MiB".into(), fnum(report.peak_rss_mb)]);
    table.row(["shard balance".into(), fnum(report.shard_balance)]);
    table.row(["workers".into(), report.shard.workers.to_string()]);
    table.row(["discharged".into(), report.discharged.to_string()]);
    table.row(["desat alarms".into(), report.desat_alarms.to_string()]);
    table.row(["violations".into(), report.invariants.violations.to_string()]);
    table.print();

    mcps_bench::write_report(&report, &out_path);

    if report.invariants.violations > 0 {
        eprintln!("FAIL: {} invariant violation(s)", report.invariants.violations);
        std::process::exit(1);
    }
    if min_eps > 0.0 && report.events_per_sec < min_eps {
        eprintln!("FAIL: {:.0} events/s under the {min_eps:.0} floor", report.events_per_sec);
        std::process::exit(1);
    }
    mcps_bench::smoke_budget("bench_campus", wall_ms, max_ms);
}
