//! Machine-readable serve-mode perf baseline (E10).
//!
//! Exercises the live supervisor host ([`mcps_serve::ServeHost`]) two
//! ways and writes the numbers to `BENCH_serve.json`:
//!
//! 1. **Ingest throughput** — a fully associated supervisor is fed
//!    vitals frames in back-pressured bursts over the in-memory
//!    transport; the figure is samples actually processed per wall
//!    second (samples shed by back-pressure are counted separately and
//!    do not inflate the rate).
//! 2. **Danger→stop latency under load** — a real [`mcps_serve::PcaBedClient`]
//!    (live pump model, scripted monitors) runs against the host at
//!    high clock speed with extra vitals noise in every round. Each
//!    cycle crosses SpO₂ below the danger threshold and measures, on
//!    the *protocol* timeline, how long the interlock takes to land a
//!    stop on the pump; p50/p99 over all cycles are reported.
//!
//! The whole run executes with tracing disabled and asserts the host
//! built **zero** trace strings (`traces_built == 0`) — the lazy-trace
//! hot path stays allocation-free under production settings.
//!
//! Usage: `bench_serve [--out PATH] [--samples N] [--cycles N] [--noise N]
//!                     [--quick] [--max-ms MS]`

use mcps_bench::Args;
use mcps_control::interlock::{DetectorKind, InterlockConfig, InterlockStrategy};
use mcps_core::msg::{NetOp, NetPayload};
use mcps_core::{PcaSafetyApp, SupervisorCore};
use mcps_device::pump::PcaPump;
use mcps_patient::vitals::VitalKind;
use mcps_serve::client::{CAP_EP, OX_EP, PUMP_EP, SUP_EP};
use mcps_serve::host::{ServeConfig, ServeHost};
use mcps_serve::transport::{ChannelTransport, Transport};
use mcps_serve::PcaBedClient;
use mcps_sim::stats::percentile;
use mcps_sim::time::{SimDuration, SimTime};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    ingest: IngestReport,
    danger_stop: LatencyReport,
    traces_built: u64,
    traces_suppressed: u64,
    elapsed_ms: f64,
    quick: bool,
}

#[derive(Serialize)]
struct IngestReport {
    samples_offered: u64,
    samples_processed: u64,
    samples_shed: u64,
    ingress_peak: u64,
    wall_ms: f64,
    samples_per_sec: f64,
}

#[derive(Serialize)]
struct LatencyReport {
    cycles: usize,
    noise_per_round: u64,
    speed: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    vitals_shed: u64,
    critical_overflow: u64,
    ingress_peak: u64,
}

fn command_core(resume_holdoff: SimDuration) -> SupervisorCore {
    let config = InterlockConfig {
        strategy: InterlockStrategy::Command,
        detector: DetectorKind::Threshold,
        resume_holdoff,
        ..InterlockConfig::default()
    };
    SupervisorCore::new(PcaSafetyApp::new(config), SUP_EP, SimDuration::from_secs(2))
}

fn vital_frame(kind: VitalKind, value: f64, at: SimTime) -> NetOp {
    let from = if kind == VitalKind::Spo2 { OX_EP } else { CAP_EP };
    NetOp::Deliver { from, payload: NetPayload::Data { kind, value, sampled_at: at } }
}

/// Ingest throughput: associate a supervisor over the raw transport,
/// then feed it vitals in bursts sized to the ingress bound.
fn bench_ingest(samples: u64) -> (IngestReport, u64, u64) {
    let capacity = 1024usize;
    let (server_t, mut feeder) = ChannelTransport::pair();
    let mut host = ServeHost::new(
        command_core(SimDuration::from_secs(30)),
        server_t,
        ServeConfig {
            speed: 1.0,
            ingress_capacity: capacity,
            trace: false,
            seed: 3,
            ..Default::default()
        },
    );
    // Associate all three slots by announcing real device profiles.
    let ox = mcps_device::monitor::pulse_oximeter("OX-1");
    let cap = mcps_device::monitor::capnograph("CAP-1");
    let pump_profile = PcaPump::profile("PUMP-1", false);
    for (ep, profile) in
        [(OX_EP, ox.profile().clone()), (CAP_EP, cap.profile().clone()), (PUMP_EP, pump_profile)]
    {
        feeder
            .send(&NetOp::Deliver {
                from: ep,
                payload: NetPayload::Announce { profile, endpoint: ep },
            })
            .expect("announce");
    }
    host.poll();
    assert!(host.core().associated_at().is_some(), "supervisor failed to associate for ingest run");

    let start = Instant::now();
    let mut offered = 0u64;
    let burst = (capacity / 2) as u64;
    while offered < samples {
        let n = burst.min(samples - offered);
        for i in 0..n {
            let kind = if i % 2 == 0 { VitalKind::Spo2 } else { VitalKind::RespRate };
            feeder.send(&vital_frame(kind, 96.0, SimTime::from_millis(offered + i))).expect("feed");
        }
        offered += n;
        host.poll();
        // Drain the host's replies (heartbeats to the pump endpoint) so
        // the channel doesn't accumulate.
        while let Ok(Some(_)) = feeder.try_recv() {}
    }
    host.poll();
    let wall = start.elapsed().as_secs_f64();
    let stats = host.stats();
    let processed = stats.deliveries.saturating_sub(3); // minus the announces
    let report = IngestReport {
        samples_offered: offered,
        samples_processed: processed,
        samples_shed: stats.vitals_shed,
        ingress_peak: stats.ingress_peak,
        wall_ms: wall * 1e3,
        samples_per_sec: processed as f64 / wall.max(1e-9),
    };
    (report, host.outputs().traces_built(), host.outputs().traces_suppressed())
}

/// A live host/client pair plus the per-round background load.
struct LatencyRig {
    host: ServeHost<ChannelTransport>,
    client: PcaBedClient<ChannelTransport>,
    noise_per_round: u64,
}

impl LatencyRig {
    /// One cooperative round at the given SpO₂, with background noise.
    fn round(&mut self, spo2: f64) {
        self.client.send_vital(VitalKind::Spo2, spo2);
        self.client.send_vital(VitalKind::RespRate, 14.0);
        // Background load: extra samples jitter around the healthy
        // value without crossing the danger threshold.
        for i in 0..self.noise_per_round {
            self.client.send_vital(VitalKind::RespRate, 13.0 + (i % 3) as f64);
        }
        self.host.poll();
        self.client.step();
        std::thread::sleep(std::time::Duration::from_micros(200));
    }

    /// Rounds at `spo2` until `done` holds (or a generous wall budget).
    fn wait(&mut self, spo2: f64, done: impl Fn(&PcaBedClient<ChannelTransport>) -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < std::time::Duration::from_secs(30) {
            self.round(spo2);
            if done(&self.client) {
                return true;
            }
        }
        false
    }
}

/// Danger→stop latency cycles on a live host/client pair under noise.
fn bench_danger_stop(cycles: usize, noise_per_round: u64) -> (LatencyReport, u64, u64) {
    const SPEED: f64 = 200.0;
    let (server_t, client_t) = ChannelTransport::pair();
    let host = ServeHost::new(
        command_core(SimDuration::from_secs(3)),
        server_t,
        ServeConfig {
            speed: SPEED,
            ingress_capacity: 256,
            trace: false,
            seed: 4,
            ..Default::default()
        },
    );
    let mut client = PcaBedClient::new(client_t, SPEED);
    client.announce_monitors();
    let mut rig = LatencyRig { host, client, noise_per_round };

    let mut latencies_ms = Vec::with_capacity(cycles);
    assert!(rig.wait(97.0, |c| c.is_permitted()), "bed never associated for the latency run");
    for cycle in 0..cycles {
        let danger_at = rig.client.sim_now();
        assert!(
            rig.wait(85.0, |c| c.first_stop_at_or_after(danger_at).is_some()),
            "cycle {cycle}: no stop observed after danger crossing"
        );
        let stop_at = rig.client.first_stop_at_or_after(danger_at).unwrap();
        latencies_ms.push(stop_at.saturating_since(danger_at).as_millis() as f64);
        // Recover: healthy vitals until the pump is permitted again.
        assert!(
            rig.wait(97.0, |c| c.is_permitted()),
            "cycle {cycle}: pump never resumed after recovery"
        );
    }
    let stats = rig.host.stats();
    let report = LatencyReport {
        cycles,
        noise_per_round,
        speed: SPEED,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: latencies_ms.iter().cloned().fold(0.0, f64::max),
        vitals_shed: stats.vitals_shed,
        critical_overflow: stats.critical_overflow,
        ingress_peak: stats.ingress_peak,
    };
    (report, rig.host.outputs().traces_built(), rig.host.outputs().traces_suppressed())
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let out_path = args.get_str("out", "BENCH_serve.json");
    let samples = args.get_u64("samples", if quick { 20_000 } else { 200_000 });
    let cycles = args.get_u64("cycles", if quick { 4 } else { 16 }) as usize;
    let noise = args.get_u64("noise", 20);
    let max_ms = args.get_f64("max-ms", f64::INFINITY);

    let start = Instant::now();
    let (ingest, built_a, suppressed_a) = bench_ingest(samples);
    let (danger_stop, built_b, suppressed_b) = bench_danger_stop(cycles, noise);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let traces_built = built_a + built_b;
    let traces_suppressed = suppressed_a + suppressed_b;
    assert_eq!(
        traces_built, 0,
        "disabled-trace serve run built {traces_built} trace strings — lazy tracing regressed"
    );
    assert!(
        traces_suppressed > 0,
        "no trace sites fired at all; the assertion above proves nothing"
    );
    assert_eq!(danger_stop.critical_overflow, 0, "protocol messages overflowed under load");

    let report = Report { ingest, danger_stop, traces_built, traces_suppressed, elapsed_ms, quick };
    mcps_bench::write_report(&report, &out_path);
    mcps_bench::smoke_budget("serve_live", elapsed_ms, max_ms);
}
