//! E3 — Automated x-ray/ventilator coordination vs manual workflow
//! (claim C3).
//!
//! Sweeps the manual workflow's human step delay and the requested
//! pause window; the automated ICE coordination is the reference arm.
//!
//! Expected shape: automation achieves a near-perfect blur-free rate
//! with zero pause-budget exhaustions; the manual arm degrades as human
//! delays grow and as the pause window shrinks.
//!
//! Usage: `e3_xray_vent [--exposures N] [--seeds K]`

use mcps_bench::{fnum, Args, Table};
use mcps_core::scenarios::xray::{run_xray_scenario, XRayScenarioConfig};
use mcps_sim::time::SimDuration;

fn aggregate(cfgs: impl Iterator<Item = XRayScenarioConfig>) -> (u32, u32, u32, u32, f64) {
    let (mut req, mut blur_free, mut auto, mut aborted, mut pause_sum, mut n) =
        (0, 0, 0, 0, 0.0, 0);
    for cfg in cfgs {
        let out = run_xray_scenario(&cfg);
        req += out.requested;
        blur_free += out.blur_free;
        auto += out.auto_resumes;
        aborted += out.aborted;
        pause_sum += out.mean_pause_secs;
        n += 1;
    }
    (req, blur_free, auto, aborted, pause_sum / n.max(1) as f64)
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let exposures = args.get_u64("exposures", if quick { 10 } else { 30 }) as u32;
    let seeds = args.get_u64("seeds", if quick { 2 } else { 5 });

    println!("E3: x-ray/ventilator coordination — {exposures} exposures × {seeds} seeds\n");

    let mut t = Table::new([
        "workflow",
        "pause win s",
        "blur-free rate",
        "auto-resumes",
        "aborts",
        "mean pause s",
    ]);

    for &pause_secs in &[10u64, 15, 20] {
        let (req, ok, auto, ab, mp) = aggregate((0..seeds).map(|s| {
            let mut c = XRayScenarioConfig::automated(s);
            c.exposures = exposures;
            c.pause_duration = SimDuration::from_secs(pause_secs);
            c
        }));
        t.row([
            "automated".to_owned(),
            pause_secs.to_string(),
            fnum(f64::from(ok) / f64::from(req.max(1))),
            auto.to_string(),
            ab.to_string(),
            fnum(mp),
        ]);
    }
    for &delay in &[3.0, 6.0, 10.0] {
        for &pause_secs in &[10u64, 15, 20] {
            let (req, ok, auto, ab, mp) = aggregate((0..seeds).map(|s| {
                let mut c = XRayScenarioConfig::manual(s, delay);
                c.exposures = exposures;
                c.pause_duration = SimDuration::from_secs(pause_secs);
                c
            }));
            t.row([
                format!("manual (median {delay}s/step)"),
                pause_secs.to_string(),
                fnum(f64::from(ok) / f64::from(req.max(1))),
                auto.to_string(),
                ab.to_string(),
                fnum(mp),
            ]);
        }
    }
    t.print();

    // Shape check on the headline cells.
    let (req_a, ok_a, auto_a, _, _) = aggregate((0..seeds).map(|s| {
        let mut c = XRayScenarioConfig::automated(s);
        c.exposures = exposures;
        c
    }));
    let (req_m, ok_m, _, _, _) = aggregate((0..seeds).map(|s| {
        let mut c = XRayScenarioConfig::manual(s, 10.0);
        c.exposures = exposures;
        c
    }));
    let rate_a = f64::from(ok_a) / f64::from(req_a.max(1));
    let rate_m = f64::from(ok_m) / f64::from(req_m.max(1));
    println!();
    if rate_a >= 0.95 && rate_m < rate_a - 0.15 && auto_a == 0 {
        println!(
            "SHAPE OK: automation {:.0}% blur-free with 0 pause-budget exhaustions; \
             slow manual workflow {:.0}%.",
            rate_a * 100.0,
            rate_m * 100.0
        );
    } else {
        println!(
            "SHAPE WARNING: automated {rate_a:.2} (auto-resumes {auto_a}), manual {rate_m:.2}."
        );
    }
}
