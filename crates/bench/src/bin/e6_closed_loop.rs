//! E6 — Closed-loop infusion control vs open-loop dosing (claim C6).
//!
//! Each virtual patient receives a continuous analgesic infusion for
//! several hours under three controllers: weight-based fixed rate
//! (open loop), target-controlled infusion against a nominal PK model
//! (TCI), and TCI with respiratory-rate feedback. The score is the
//! fraction of time the *true* effect-site concentration stays in the
//! therapeutic band, plus safety (time above the band / respiratory
//! floor violations).
//!
//! Expected shape: fixed < TCI < TCI+feedback on time-in-band; the
//! feedback arm also cuts overshoot for sensitive patients.
//!
//! Usage: `e6_closed_loop [--patients N] [--hours H] [--seed S]`

use mcps_bench::{fnum, Args, Table};
use mcps_control::closed_loop::{
    FeedbackTciController, FixedRateController, InfusionController, TciController,
};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_patient::sensors::{SensorSpec, SimulatedSensor};
use mcps_patient::vitals::VitalKind;
use mcps_sim::rng::RngFactory;
use mcps_sim::stats::Summary;

/// Therapeutic band of effect-site concentration, mg/L.
const BAND: (f64, f64) = (0.04, 0.10);
/// Respiratory safety floor, breaths/min.
const RR_FLOOR: f64 = 8.0;

#[derive(Default)]
struct ArmStats {
    in_band: Vec<f64>,
    above_band: Vec<f64>,
    rr_floor_secs: Vec<f64>,
    mean_pain: Vec<f64>,
}

fn run_patient(
    controller: &mut dyn InfusionController,
    params: mcps_patient::patient::PatientParams,
    hours: f64,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let mut patient = mcps_patient::patient::VirtualPatient::new(params);
    let factory = RngFactory::new(seed);
    let mut rng = factory.stream("e6-patient");
    let mut sensor_rng = factory.stream("e6-sensor");
    let mut rr_sensor =
        SimulatedSensor::new(VitalKind::RespRate, SensorSpec::default_for(VitalKind::RespRate));
    let secs = (hours * 3600.0) as u64;
    let (mut in_band, mut above, mut rr_floor, mut pain_sum) = (0u64, 0u64, 0u64, 0.0);
    for s in 0..secs {
        let truth = patient.vitals();
        let measured_rr = rr_sensor.read(s as f64, 1.0, truth.resp_rate, &mut sensor_rng).value;
        let rate = controller.step(1.0, measured_rr);
        patient.set_infusion_rate(rate / 60.0);
        patient.advance(1.0, &mut rng);
        let ce = patient.effect_site_conc();
        if ce >= BAND.0 && ce <= BAND.1 {
            in_band += 1;
        } else if ce > BAND.1 {
            above += 1;
        }
        if patient.vitals().resp_rate < RR_FLOOR {
            rr_floor += 1;
        }
        pain_sum += patient.perceived_pain();
    }
    (
        in_band as f64 / secs as f64,
        above as f64 / secs as f64,
        rr_floor as f64,
        pain_sum / secs as f64,
    )
}

/// Runs one cohort through all three controllers; returns per-arm
/// `(in_band, above_band, rr_floor_secs)` means plus the printed table.
fn run_cohort(
    label: &str,
    cohort_cfg: CohortConfig,
    patients: u64,
    hours: f64,
    seed: u64,
    target: f64,
) -> Vec<(f64, f64, f64)> {
    let cohort = CohortGenerator::new(seed, cohort_cfg);
    let mut arms: Vec<(&str, ArmStats)> = vec![
        ("fixed-rate", ArmStats::default()),
        ("tci", ArmStats::default()),
        ("tci+feedback", ArmStats::default()),
    ];

    for i in 0..patients {
        let params = cohort.params(i);
        let w = params.weight_kg;
        let runs: Vec<Box<dyn InfusionController>> = vec![
            Box::new(FixedRateController::for_weight(w)),
            Box::new(TciController::new(w, target)),
            Box::new(FeedbackTciController::new(w, target, RR_FLOOR)),
        ];
        for (mut ctl, (_, stats)) in runs.into_iter().zip(arms.iter_mut()) {
            let (in_band, above, rr_secs, pain) =
                run_patient(ctl.as_mut(), params, hours, seed.wrapping_add(i));
            stats.in_band.push(in_band);
            stats.above_band.push(above);
            stats.rr_floor_secs.push(rr_secs);
            stats.mean_pain.push(pain);
        }
    }

    println!("-- {label} --");
    let mut t =
        Table::new(["controller", "time-in-band", "time-above-band", "RR<8 s/pt", "mean pain"]);
    let mut means = Vec::new();
    for (name, stats) in &arms {
        let ib = Summary::from_values(&stats.in_band);
        let ab = Summary::from_values(&stats.above_band);
        let rr = Summary::from_values(&stats.rr_floor_secs);
        let p = Summary::from_values(&stats.mean_pain);
        means.push((ib.mean, ab.mean, rr.mean));
        t.row([
            (*name).to_owned(),
            format!("{} ± {}", fnum(ib.mean), fnum(ib.ci95_half_width())),
            fnum(ab.mean),
            fnum(rr.mean),
            fnum(p.mean),
        ]);
    }
    t.print();
    println!();
    means
}

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let patients = args.get_u64("patients", if quick { 10 } else { 50 });
    let hours = args.get_f64("hours", if quick { 3.0 } else { 6.0 });
    let seed = args.get_u64("seed", 21);
    let target = 0.08;

    println!(
        "E6: infusion control — {patients} patients × {hours} h, target {target} mg/L, \
         therapeutic band [{:.2}, {:.2}] mg/L\n",
        BAND.0, BAND.1
    );

    let standard =
        run_cohort("standard cohort", CohortConfig::default(), patients, hours, seed, target);
    let sensitive = run_cohort(
        "opioid-sensitive cohort (stress test)",
        CohortConfig { frac_opioid_sensitive: 1.0, frac_sleep_apnea: 0.0, variability_sigma: 0.25 },
        patients,
        hours,
        seed ^ 0x5a5a,
        target,
    );

    let (fixed, tci, fb) = (standard[0], standard[1], standard[2]);
    let (s_fixed, s_tci, s_fb) = (sensitive[0], sensitive[1], sensitive[2]);
    let band_ok = tci.0 > fixed.0 + 0.1 && fb.0 >= tci.0 - 0.10;
    let safety_ok = s_fb.2 < s_tci.2 * 0.7 || (s_tci.2 == 0.0 && s_fb.2 == 0.0);
    if band_ok && safety_ok {
        println!(
            "SHAPE OK: time-in-band fixed {:.2} < tci {:.2} ~ tci+feedback {:.2}; on the \
             sensitive cohort feedback cuts RR<8 exposure {:.0}s -> {:.0}s (fixed {:.0}s).",
            fixed.0, tci.0, fb.0, s_tci.2, s_fb.2, s_fixed.2
        );
    } else {
        println!(
            "SHAPE WARNING: band_ok={band_ok} (fixed {:.2}, tci {:.2}, fb {:.2}); \
             safety_ok={safety_ok} (sensitive RR<8: fixed {:.0}, tci {:.0}, fb {:.0}).",
            fixed.0, tci.0, fb.0, s_fixed.2, s_tci.2, s_fb.2
        );
    }
}
