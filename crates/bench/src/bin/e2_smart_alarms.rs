//! E2 — Smart (fusion) alarms vs threshold alarms (claim C2).
//!
//! A monitored post-operative ward with artifact-rich sensors. Both
//! algorithms watch the identical measurement streams; ground truth
//! comes from the noise-free patient state.
//!
//! Each seed is one shard: the replicate wards run through the
//! runtime's deterministic shard pool (`run_shards` via
//! [`parallel_map`]) and their scores are merged in seed order, then
//! exported into a single [`Telemetry`] bus.
//!
//! Expected shape: the fusion alarm cuts the false-alarm rate several
//! fold at comparable sensitivity.
//!
//! Usage: `e2_smart_alarms [--patients N] [--hours H] [--seeds K] [--report]`

use mcps_bench::{fnum, parallel_map, Args, Table};
use mcps_core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps_sim::metrics::Telemetry;
use mcps_sim::time::SimDuration;

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let patients = args.get_u64("patients", if quick { 6 } else { 16 }) as u32;
    let hours = args.get_f64("hours", if quick { 2.0 } else { 8.0 });
    let seeds = args.get_u64("seeds", if quick { 1 } else { 3 });

    println!("E2: threshold vs fusion alarms — {patients} beds × {hours} h × {seeds} seeds\n");

    // One shard per seed; each shard runs the plain ward and the
    // NIBP-cuff ward for that seed on its own isolated RNG streams.
    let outs = parallel_map((0..seeds).collect(), |seed| {
        let cfg = WardConfig {
            seed,
            patients,
            duration: SimDuration::from_secs_f64(hours * 3600.0),
            ..WardConfig::default()
        };
        let plain = run_ward_scenario(&cfg);
        let cuffed = run_ward_scenario(&WardConfig { nibp_cuff: true, ..cfg });
        (plain, cuffed)
    });

    let mut threshold = mcps_alarms::stats::AlarmScore::default();
    let mut fusion = mcps_alarms::stats::AlarmScore::default();
    let mut threshold_nibp = mcps_alarms::stats::AlarmScore::default();
    let mut fusion_nibp = mcps_alarms::stats::AlarmScore::default();
    let mut episodes = 0;
    let mut thr_op = mcps_alarms::fatigue::OperationalScore::default();
    let mut fus_op = mcps_alarms::fatigue::OperationalScore::default();
    for (plain, cuffed) in &outs {
        threshold.merge(&plain.threshold);
        fusion.merge(&plain.fusion);
        episodes += plain.episodes;
        for (total, part) in
            [(&mut thr_op, &plain.threshold_operational), (&mut fus_op, &plain.fusion_operational)]
        {
            total.true_answered += part.true_answered;
            total.true_unanswered += part.true_unanswered;
            total.false_answered += part.false_answered;
            total.mean_delay_secs += part.mean_delay_secs / seeds as f64;
        }
        threshold_nibp.merge(&cuffed.threshold);
        fusion_nibp.merge(&cuffed.fusion);
    }

    // The merged scores all flow into one telemetry bus — the single
    // sink a caller (or --report) can export.
    let mut bus = Telemetry::new();
    bus.annotate("scenario", "e2_smart_alarms");
    bus.annotate("patients", patients.to_string());
    bus.annotate("hours", hours.to_string());
    bus.annotate("seeds", seeds.to_string());
    bus.incr("ground_truth_episodes", u64::from(episodes));
    threshold.export_into(&mut bus, "threshold");
    fusion.export_into(&mut bus, "fusion");
    threshold_nibp.export_into(&mut bus, "threshold_nibp");
    fusion_nibp.export_into(&mut bus, "fusion_nibp");

    let mut t = Table::new([
        "algorithm",
        "true alarms",
        "false alarms",
        "FAR /pt-h",
        "sensitivity",
        "precision",
    ]);
    for (name, s) in [
        ("threshold", &threshold),
        ("fusion", &fusion),
        ("threshold + NIBP cuff", &threshold_nibp),
        ("fusion + NIBP cuff", &fusion_nibp),
    ] {
        t.row([
            name.to_owned(),
            s.true_alarms.to_string(),
            s.false_alarms.to_string(),
            fnum(s.false_alarm_rate_per_hour()),
            fnum(s.sensitivity()),
            fnum(s.precision()),
        ]);
    }
    t.print();
    println!("\nground-truth episodes across the ward: {}", bus.counter("ground_truth_episodes"));

    println!("\n-- operational impact (pooled central station, nurse fatigue model) --");
    let mut t = Table::new([
        "algorithm",
        "true alarms answered",
        "true alarms MISSED",
        "wasted trips",
        "mean response delay s",
    ]);
    for (name, s) in [("threshold", &thr_op), ("fusion", &fus_op)] {
        t.row([
            name.to_owned(),
            s.true_answered.to_string(),
            s.true_unanswered.to_string(),
            s.false_answered.to_string(),
            fnum(s.mean_delay_secs),
        ]);
    }
    t.print();

    if args.has_flag("report") {
        println!("\n-- telemetry --");
        print!("{}", bus.render_report());
    }

    let far_ratio = if fusion.false_alarm_rate_per_hour() > 0.0 {
        threshold.false_alarm_rate_per_hour() / fusion.false_alarm_rate_per_hour()
    } else {
        f64::INFINITY
    };
    let sens_ok = episodes == 0 || fusion.sensitivity() >= threshold.sensitivity() - 0.15;
    let op_ok = fus_op.true_unanswered <= thr_op.true_unanswered;
    if far_ratio >= 2.0 && sens_ok && op_ok {
        println!(
            "SHAPE OK: fusion cuts the false-alarm rate {far_ratio:.1}x at comparable \
             sensitivity; under the fatigue model that converts to {} vs {} missed true \
             alarms and {:.0}s vs {:.0}s response delays.",
            fus_op.true_unanswered,
            thr_op.true_unanswered,
            fus_op.mean_delay_secs,
            thr_op.mean_delay_secs
        );
    } else {
        println!(
            "SHAPE WARNING: FAR ratio {far_ratio:.1}, sensitivity ok = {sens_ok}, \
             operational ok = {op_ok}."
        );
    }
}
