//! E2 — Smart (fusion) alarms vs threshold alarms (claim C2).
//!
//! A monitored post-operative ward with artifact-rich sensors. Both
//! algorithms watch the identical measurement streams; ground truth
//! comes from the noise-free patient state.
//!
//! Expected shape: the fusion alarm cuts the false-alarm rate several
//! fold at comparable sensitivity.
//!
//! Usage: `e2_smart_alarms [--patients N] [--hours H] [--seeds K]`

use mcps_bench::{fnum, Args, Table};
use mcps_core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps_sim::time::SimDuration;

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let patients = args.get_u64("patients", if quick { 6 } else { 16 }) as u32;
    let hours = args.get_f64("hours", if quick { 2.0 } else { 8.0 });
    let seeds = args.get_u64("seeds", if quick { 1 } else { 3 });

    println!("E2: threshold vs fusion alarms — {patients} beds × {hours} h × {seeds} seeds\n");

    let mut threshold = mcps_alarms::stats::AlarmScore::default();
    let mut fusion = mcps_alarms::stats::AlarmScore::default();
    let mut threshold_nibp = mcps_alarms::stats::AlarmScore::default();
    let mut fusion_nibp = mcps_alarms::stats::AlarmScore::default();
    let mut episodes = 0;
    let mut thr_op = mcps_alarms::fatigue::OperationalScore::default();
    let mut fus_op = mcps_alarms::fatigue::OperationalScore::default();
    for seed in 0..seeds {
        let cfg = WardConfig {
            seed,
            patients,
            duration: SimDuration::from_secs_f64(hours * 3600.0),
            ..WardConfig::default()
        };
        let out = run_ward_scenario(&cfg);
        threshold.merge(&out.threshold);
        fusion.merge(&out.fusion);
        episodes += out.episodes;
        for (total, part) in [
            (&mut thr_op, out.threshold_operational),
            (&mut fus_op, out.fusion_operational),
        ] {
            total.true_answered += part.true_answered;
            total.true_unanswered += part.true_unanswered;
            total.false_answered += part.false_answered;
            total.mean_delay_secs += part.mean_delay_secs / seeds as f64;
        }
        // Same ward with a cycling NIBP cuff blinding the oximeter.
        let out = run_ward_scenario(&WardConfig { nibp_cuff: true, ..cfg });
        threshold_nibp.merge(&out.threshold);
        fusion_nibp.merge(&out.fusion);
    }

    let mut t = Table::new([
        "algorithm",
        "true alarms",
        "false alarms",
        "FAR /pt-h",
        "sensitivity",
        "precision",
    ]);
    for (name, s) in [
        ("threshold", &threshold),
        ("fusion", &fusion),
        ("threshold + NIBP cuff", &threshold_nibp),
        ("fusion + NIBP cuff", &fusion_nibp),
    ] {
        t.row([
            name.to_owned(),
            s.true_alarms.to_string(),
            s.false_alarms.to_string(),
            fnum(s.false_alarm_rate_per_hour()),
            fnum(s.sensitivity()),
            fnum(s.precision()),
        ]);
    }
    t.print();
    println!("\nground-truth episodes across the ward: {episodes}");

    println!("\n-- operational impact (pooled central station, nurse fatigue model) --");
    let mut t = Table::new([
        "algorithm",
        "true alarms answered",
        "true alarms MISSED",
        "wasted trips",
        "mean response delay s",
    ]);
    for (name, s) in [("threshold", &thr_op), ("fusion", &fus_op)] {
        t.row([
            name.to_owned(),
            s.true_answered.to_string(),
            s.true_unanswered.to_string(),
            s.false_answered.to_string(),
            fnum(s.mean_delay_secs),
        ]);
    }
    t.print();

    let far_ratio = if fusion.false_alarm_rate_per_hour() > 0.0 {
        threshold.false_alarm_rate_per_hour() / fusion.false_alarm_rate_per_hour()
    } else {
        f64::INFINITY
    };
    let sens_ok = episodes == 0 || fusion.sensitivity() >= threshold.sensitivity() - 0.15;
    let op_ok = fus_op.true_unanswered <= thr_op.true_unanswered;
    if far_ratio >= 2.0 && sens_ok && op_ok {
        println!(
            "SHAPE OK: fusion cuts the false-alarm rate {far_ratio:.1}x at comparable \
             sensitivity; under the fatigue model that converts to {} vs {} missed true \
             alarms and {:.0}s vs {:.0}s response delays.",
            fus_op.true_unanswered,
            thr_op.true_unanswered,
            fus_op.mean_delay_secs,
            thr_op.mean_delay_secs
        );
    } else {
        println!(
            "SHAPE WARNING: FAR ratio {far_ratio:.1}, sensitivity ok = {sens_ok}, \
             operational ok = {op_ok}."
        );
    }
}
