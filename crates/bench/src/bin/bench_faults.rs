//! Machine-readable fault-injection safety scorecard (E8 campaign).
//!
//! Sweeps the deterministic fault campaign grid — `{fault kind × onset
//! × duration × link outage}` over the PCA-interlock scenario with and
//! without a hot-swappable backup oximeter — and writes
//! `BENCH_faults.json`: per cell, the no-overdose invariant verdict,
//! the time-to-fail-safe distribution and the spurious-degradation
//! count. The scorecard lives in version control so fault-path
//! regressions show up as number changes rather than anecdotes.
//!
//! Usage: `bench_faults [--quick] [--seed N] [--trials N] [--out PATH]
//!                      [--max-ms MS]`
//!
//! `--quick` runs the reduced CI grid (one onset, permanent faults
//! only, one patient per cell). `--max-ms` is the CI smoke budget: the
//! run exits nonzero if the wall clock exceeds it. The run *also* exits
//! nonzero on any invariant violation — a safety regression fails CI
//! outright, not just the scorecard diff.

use mcps_bench::campaign::{build_grid, mined_failover_cells, run_campaign, CampaignConfig};
use mcps_bench::{fnum, Args, Table};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let quick = args.has_flag("quick");
    let seed = args.get_u64("seed", 2026);
    let out_path = args.get_str("out", "BENCH_faults.json");
    let max_ms = args.get_u64("max-ms", 600_000) as f64;

    let mut cfg = if quick { CampaignConfig::quick(seed) } else { CampaignConfig::full(seed) };
    cfg.trials = args.get_u64("trials", cfg.trials).max(1);

    let mined = mined_failover_cells().len();
    let cells = build_grid(&cfg).len() + mined;
    println!(
        "fault campaign: {cells} cells ({mined} mined from E13 traces) × {} patient(s), \
         {:.0} s simulated each{}",
        cfg.trials,
        cfg.run.as_secs_f64(),
        if quick { " (quick grid)" } else { "" },
    );

    let start = Instant::now();
    let report = run_campaign(&cfg);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new([
        "cell",
        "invariant",
        "viol",
        "fs p50",
        "fs p95",
        "fs max",
        "spur",
        "degr",
        "retry",
        "max mg",
    ]);
    for c in &report.cells {
        let (p50, p95, max) = c
            .failsafe
            .as_ref()
            .map(|f| (fnum(f.p50_secs), fnum(f.p95_secs), fnum(f.max_secs)))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        table.row([
            c.id.clone(),
            format!("{:?}", c.invariant),
            c.violations.to_string(),
            p50,
            p95,
            max,
            c.spurious_degradations.to_string(),
            c.degraded_entries.to_string(),
            c.commands_retried.to_string(),
            fnum(c.max_total_drug_mg),
        ]);
    }
    table.print();

    mcps_bench::write_report(&report, &out_path);
    println!(
        "{} cells, {} violation(s), {} spurious degradation(s), {:.0} ms",
        report.cells.len(),
        report.total_violations,
        report.total_spurious,
        elapsed_ms,
    );

    let mut failed = false;
    if report.total_violations > 0 {
        for c in report.cells.iter().filter(|c| c.violations > 0) {
            eprintln!("VIOLATION {}: {}", c.id, c.violation_reasons.join("; "));
        }
        eprintln!("FAIL: {} no-overdose invariant violation(s)", report.total_violations);
        failed = true;
    }
    if elapsed_ms > max_ms {
        eprintln!("FAIL: campaign took {elapsed_ms:.0} ms (budget {max_ms:.0} ms)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
