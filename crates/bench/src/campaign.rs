//! Fault-injection campaign engine (E8 scorecard).
//!
//! Sweeps a deterministic grid of `{fault kind × onset × duration ×
//! link outage}` cells over the PCA-interlock scenario (with and
//! without a hot-swappable backup oximeter), runs several cohort
//! patients per cell, and scores every run against the paper's
//! no-overdose invariant. The result is a machine-readable *safety
//! scorecard*: per cell, the invariant verdict, the time-to-fail-safe
//! distribution and the count of spurious degraded-mode entries.
//!
//! Invariant classes — which check applies depends on how the fault is
//! observable:
//!
//! * **Freshness** (sensor crash, silent data, link outage): data stops
//!   arriving, so the interlock's freshness timeout plus the ticket
//!   validity bound the time to fail-safe. The pump must cease delivery
//!   within [`FRESHNESS_DEADLINE_SECS`] of onset, and — when no
//!   recovery path exists (no backup, permanent fault) — must never
//!   deliver again.
//! * **Plausibility** (stuck value): frozen-but-fresh data is invisible
//!   to freshness checking; the flatline screen needs its detection
//!   window, so the deadline is [`PLAUSIBILITY_DEADLINE_SECS`].
//! * **Danger** (drift, intermittent, ack faults, fault-free control):
//!   the fault does not silence the data plane, so the scenario may
//!   run on; the invariant is the backstop that if ground-truth danger
//!   occurs the pump stops within [`DANGER_DEADLINE_SECS`].
//! * **Failover** (supervisor crash, network partition): the fault
//!   removes the *controller*, not a device, so these cells run with a
//!   warm standby supervisor. The standby must promote (≥ 1 failover)
//!   and the epoch fence must prevent any same-epoch double actuation;
//!   the danger backstop must hold *across* the failover.
//!
//! The danger backstop applies to *every* cell on top of its class
//! check. Spurious degradations — supervisor degraded-mode entries
//! outside the injected fault's window (plus settling grace) — are
//! counted per cell; in fault-free control cells every entry is
//! spurious.
//!
//! On top of the swept grid, the campaign carries **mined cells**:
//! fault schedules extracted from counterexample traces of the E13
//! failover model checker ([`mined_failover_cells`]). The checker found
//! these schedules adversarially — they are the exact timings that
//! break a *mutated* design — so replaying them against the real
//! implementation is a permanent regression fence that random grid
//! sweeps would only hit by luck.

use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig, PcaScenarioOutcome};
use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_safety::models::check_failover_variant;
use mcps_safety::{FailoverModelVariant, Step};
use mcps_sim::stats::Summary;
use mcps_sim::time::{SimDuration, SimTime};
use serde::Serialize;

use crate::parallel_map;

/// Freshness-visible faults: freshness timeout (10 s) + ticket
/// validity (15 s) + one control period of slack.
pub const FRESHNESS_DEADLINE_SECS: f64 = 10.0 + 15.0 + 5.0;

/// Stuck-value faults: flatline window (30 s) + ticket validity + slack.
pub const PLAUSIBILITY_DEADLINE_SECS: f64 = 30.0 + 15.0 + 10.0;

/// Universal backstop: ground-truth danger to delivery stop.
pub const DANGER_DEADLINE_SECS: f64 = 30.0;

/// Settling grace after a fault clears during which degraded-mode
/// entries are still attributed to the fault, not counted as spurious.
const DEGRADE_GRACE_SECS: f64 = 60.0;

/// Which device the scripted fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultTarget {
    /// Fault-free control cell.
    None,
    /// The primary pulse oximeter (data plane).
    Oximeter,
    /// The pump controller (command/ack plane).
    Pump,
    /// The primary supervisor process (control plane). These cells run
    /// with a warm standby supervisor.
    Supervisor,
    /// The network itself: a partition isolating the primary
    /// supervisor. These cells also run with a warm standby.
    Network,
}

/// Which invariant check scores the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum InvariantClass {
    /// Fail-safe via the freshness timeout.
    Freshness,
    /// Fail-safe via the flatline/plausibility screen.
    Plausibility,
    /// Backstop only: danger ⇒ stop within the danger deadline.
    Danger,
    /// Control-plane loss: the standby must promote (≥ 1 failover) and
    /// the epoch fence must prevent any same-epoch double actuation —
    /// on top of the universal danger backstop, which must hold across
    /// the failover itself.
    Failover,
}

/// One cell of the campaign grid.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Stable identifier, e.g. `pca/crash/on600/d120/outage`.
    pub id: String,
    /// Fault kind label (`none` for the control cell).
    pub kind_label: &'static str,
    /// The scripted fault, if any.
    pub fault: Option<FaultKind>,
    /// Where the fault is injected.
    pub target: FaultTarget,
    /// Fault onset.
    pub onset: SimTime,
    /// Fault recovery instant (`None` = permanent).
    pub until: Option<SimTime>,
    /// Link outage window, if the cell has one.
    pub outage: Option<(SimTime, SimTime)>,
    /// Whether a backup oximeter is at the bedside (hot-swap scenario).
    pub backup: bool,
    /// The invariant class scoring this cell.
    pub invariant: InvariantClass,
}

impl CellSpec {
    /// Whether legitimate recovery (re-permitted delivery) is possible
    /// after fail-safe: a backup can take over, or the fault/outage
    /// clears.
    fn recovery_allowed(&self) -> bool {
        self.backup || self.fault.is_none() || self.until.is_some()
    }

    /// Last instant attributable to the injected disturbance, seconds.
    fn disturbance_end_secs(&self, run_secs: f64) -> f64 {
        let fault_end = match (self.fault, self.until) {
            (None, _) => None,
            (Some(_), Some(u)) => Some(u.as_secs_f64()),
            (Some(_), None) => Some(run_secs),
        };
        let outage_end = self.outage.map(|(_, b)| b.as_secs_f64());
        fault_end.into_iter().chain(outage_end).fold(f64::NAN, f64::max)
    }
}

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Cohort patients per cell.
    pub trials: u64,
    /// Simulated duration of every run.
    pub run: SimDuration,
    /// Fault onsets to sweep.
    pub onsets: Vec<SimTime>,
    /// Transient fault duration (the permanent arm is always included).
    pub transient: SimDuration,
    /// Link outage length for outage cells.
    pub outage_len: SimDuration,
}

impl CampaignConfig {
    /// The full campaign grid.
    pub fn full(seed: u64) -> Self {
        CampaignConfig {
            seed,
            trials: 3,
            run: SimDuration::from_mins(25),
            onsets: vec![SimTime::from_secs(600), SimTime::from_secs(780)],
            transient: SimDuration::from_secs(120),
            outage_len: SimDuration::from_secs(90),
        }
    }

    /// A reduced grid for CI smoke runs: one onset, permanent faults
    /// only, one patient per cell.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            seed,
            trials: 1,
            run: SimDuration::from_mins(20),
            onsets: vec![SimTime::from_secs(600)],
            transient: SimDuration::ZERO,
            outage_len: SimDuration::from_secs(90),
        }
    }
}

/// The fault kinds swept by the campaign, with their injection target
/// and invariant class.
fn kind_axis() -> Vec<(&'static str, Option<FaultKind>, FaultTarget, InvariantClass)> {
    vec![
        ("none", None, FaultTarget::None, InvariantClass::Danger),
        ("crash", Some(FaultKind::Crash), FaultTarget::Oximeter, InvariantClass::Freshness),
        ("silent", Some(FaultKind::SilentData), FaultTarget::Oximeter, InvariantClass::Freshness),
        ("stuck", Some(FaultKind::StuckValue), FaultTarget::Oximeter, InvariantClass::Plausibility),
        (
            "drift",
            Some(FaultKind::Drift { bias_milli_per_sec: -50 }),
            FaultTarget::Oximeter,
            InvariantClass::Danger,
        ),
        (
            "intermittent",
            Some(FaultKind::Intermittent { period_ms: 30_000, on_ms: 5_000 }),
            FaultTarget::Oximeter,
            InvariantClass::Danger,
        ),
        (
            "delayed-ack",
            Some(FaultKind::DelayedAck { delay_ms: 1_500 }),
            FaultTarget::Pump,
            InvariantClass::Danger,
        ),
        ("dup-ack", Some(FaultKind::DuplicateAck), FaultTarget::Pump, InvariantClass::Danger),
        (
            "sup-crash",
            Some(FaultKind::SupervisorCrash),
            FaultTarget::Supervisor,
            InvariantClass::Failover,
        ),
        // Masks index the scenario's endpoint creation order (bit 3 =
        // primary supervisor, bit 4 = standby): side A is the primary
        // alone, side B is every device plus the standby, so the
        // partitioned ex-primary keeps *believing* it is in charge —
        // the worst case for split-brain.
        (
            "partition",
            Some(FaultKind::Partition { group_a: 0b00_1000, group_b: 0b11_0111 }),
            FaultTarget::Network,
            InvariantClass::Failover,
        ),
    ]
}

/// Builds the deterministic campaign grid for `cfg`.
pub fn build_grid(cfg: &CampaignConfig) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &onset in &cfg.onsets {
        for (kind_label, fault, target, invariant) in kind_axis() {
            let durations: Vec<Option<SimTime>> = match (fault, cfg.transient.is_zero()) {
                // The control cell has no fault window to vary.
                (None, _) => vec![None],
                (Some(_), true) => vec![None],
                (Some(_), false) => vec![None, Some(onset + cfg.transient)],
            };
            for until in durations {
                for has_outage in [false, true] {
                    for backup in [false, true] {
                        let outage = has_outage.then_some((onset, onset + cfg.outage_len));
                        let scenario = if backup { "swap" } else { "pca" };
                        let dur = match until {
                            None => "perm".to_owned(),
                            Some(u) => format!("d{}", (u - onset).as_millis() / 1000),
                        };
                        let id = format!(
                            "{scenario}/{kind_label}/on{}/{dur}{}",
                            onset.as_millis() / 1000,
                            if has_outage { "/outage" } else { "" },
                        );
                        cells.push(CellSpec {
                            id,
                            kind_label,
                            fault,
                            target,
                            onset,
                            until,
                            outage,
                            backup,
                            invariant,
                        });
                    }
                }
            }
        }
    }
    cells
}

/// Exploration budget for the trace miner. The reduced `UnfencedPump`
/// space is under 4k states, so this never exhausts.
const MINER_BUDGET: usize = 200_000;

/// Anchor for mined schedules: the checker's relative instants are
/// shifted to mid-therapy, matching the grid's canonical onset.
const MINED_ANCHOR_SECS: u64 = 600;

/// The crash / promotion / recovery instants (model seconds, relative
/// to the start of the counterexample) mined from the `UnfencedPump`
/// trace, with the recovery clamped past the promotion.
fn mine_unfenced_schedule() -> Option<(u64, u64, u64)> {
    let out = check_failover_variant(FailoverModelVariant::UnfencedPump, MINER_BUDGET);
    let trace = out.trace()?;
    let mut t = 0u64;
    let (mut crash, mut promote, mut recover) = (None, None, None);
    for step in &trace.steps {
        match step {
            Step::Delay => t += 1,
            Step::Edge { automaton, label } => {
                if automaton == "primary" && label == "crash" {
                    crash.get_or_insert(t);
                }
                if automaton == "primary" && label == "recover" {
                    recover.get_or_insert(t);
                }
                if automaton == "standby" && label == "promote" {
                    promote.get_or_insert(t);
                }
            }
            Step::Sync { .. } => {}
        }
    }
    let (crash, promote, recover) = (crash?, promote?, recover?);
    // In the model the recovery may *race* the promotion by up to one
    // network hop (both are legal interleavings); the implementation's
    // prompt checkpoint delivery would reset the standby's silence
    // clock and avert the failover entirely. Clamp the mined recovery
    // to two seconds past the promotion so the replayed schedule keeps
    // the property-relevant ordering: promote first, then recover.
    Some((crash, promote, recover.max(promote + 2)))
}

/// Mines the E13 `UnfencedPump` counterexample into a permanent
/// campaign regression cell.
///
/// The mutant removes the pump's epoch fence; the checker's shortest
/// counterexample is then the tightest crash-promote-recover schedule
/// that puts two live controllers in front of the pump. Replaying that
/// schedule against the *real* (fenced) implementation pins the fence:
/// the standby must promote inside the mined window, the recovered
/// ex-primary's stale traffic must be rejected, and no same-epoch
/// double actuation may occur. Returns an empty vector only if the
/// mutant stops violating — which the `mcps-safety` expected-verdict
/// tests would already flag as a model regression.
pub fn mined_failover_cells() -> Vec<CellSpec> {
    let Some((crash, _promote, recover)) = mine_unfenced_schedule() else {
        return Vec::new();
    };
    let onset = SimTime::from_secs(MINED_ANCHOR_SECS + crash);
    let until = SimTime::from_secs(MINED_ANCHOR_SECS + recover);
    vec![CellSpec {
        id: format!("pca/mined-unfenced/on{}/d{}", onset.as_millis() / 1000, recover - crash),
        kind_label: "mined-sup-crash",
        fault: Some(FaultKind::SupervisorCrash),
        target: FaultTarget::Supervisor,
        onset,
        until: Some(until),
        outage: None,
        backup: false,
        invariant: InvariantClass::Failover,
    }]
}

/// Distribution summary of time-to-fail-safe across a cell's trials.
#[derive(Debug, Clone, Serialize)]
pub struct FailsafeSummary {
    /// Trials in which the pump ceased delivery after onset.
    pub engaged: u64,
    /// Median seconds from onset to stop.
    pub p50_secs: f64,
    /// 95th-percentile seconds from onset to stop.
    pub p95_secs: f64,
    /// Worst observed seconds from onset to stop.
    pub max_secs: f64,
}

/// Scheduler queue-pressure aggregates across a cell's trials,
/// harvested from the runtime timer wheel's telemetry export.
#[derive(Debug, Clone, Serialize)]
pub struct QueuePressure {
    /// Timed events filed into the scheduler (all trials).
    pub events_scheduled: u64,
    /// Wheel slot cascades performed (all trials).
    pub cascades: u64,
    /// Deepest same-instant ready ring observed in any trial.
    pub max_ready_depth: u64,
}

/// The scorecard for one campaign cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Stable cell identifier.
    pub id: String,
    /// Fault kind label.
    pub kind: String,
    /// Injection target.
    pub target: FaultTarget,
    /// Invariant class scoring the cell.
    pub invariant: InvariantClass,
    /// Fault onset, seconds.
    pub onset_secs: f64,
    /// Fault duration, seconds (`None` = permanent).
    pub duration_secs: Option<f64>,
    /// Whether the cell includes a link outage at onset.
    pub outage: bool,
    /// Whether a backup oximeter is present (hot-swap scenario).
    pub backup: bool,
    /// Patients run in this cell.
    pub trials: u64,
    /// Trials that violated the no-overdose invariant.
    pub violations: u64,
    /// Human-readable reasons for the violations (deduplicated).
    pub violation_reasons: Vec<String>,
    /// Time-to-fail-safe distribution (absent if no trial stopped —
    /// normal for cells whose fault never silences the data plane).
    pub failsafe: Option<FailsafeSummary>,
    /// Degraded-mode entries outside the fault window (all trials).
    pub spurious_degradations: u64,
    /// Total degraded-mode entries (all trials).
    pub degraded_entries: u64,
    /// Supervisor command retransmissions (all trials).
    pub commands_retried: u64,
    /// App commands suppressed while degraded (all trials).
    pub commands_suppressed: u64,
    /// Standby → primary failovers (all trials).
    pub failovers: u64,
    /// Stale-epoch commands the pump fenced off (all trials).
    pub fenced_commands: u64,
    /// Same-epoch commands from two controllers (all trials; any value
    /// above 0 is a split-brain actuation).
    pub double_actuations: u64,
    /// Pump local fail-safe latches (all trials).
    pub local_failsafe_entries: u64,
    /// Worst cumulative drug across trials, mg.
    pub max_total_drug_mg: f64,
    /// Deepest true SpO₂ across trials, %.
    pub min_spo2: f64,
    /// Scheduler queue pressure for the cell.
    pub queue: QueuePressure,
}

/// The whole campaign's scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Patients per cell.
    pub trials_per_cell: u64,
    /// Simulated seconds per run.
    pub run_secs: f64,
    /// Grid cells, in deterministic grid order.
    pub cells: Vec<CellReport>,
    /// Total invariant violations across the grid.
    pub total_violations: u64,
    /// Total spurious degradations across the grid.
    pub total_spurious: u64,
    /// Deepest same-instant ready ring observed anywhere in the grid.
    pub max_ready_depth: u64,
}

/// Whether the pump was permitted anywhere in `(a, b)` seconds.
fn permitted_in_window(out: &PcaScenarioOutcome, a: f64, b: f64) -> bool {
    if a >= b {
        return false;
    }
    out.permitted_at_secs(a)
        || out.permit_transitions_secs.iter().any(|&(t, p)| p && t > a && t < b)
}

/// Scores one finished run against `spec`'s invariant.
fn evaluate(
    spec: &CellSpec,
    run_secs: f64,
    out: &PcaScenarioOutcome,
) -> (Option<String>, Option<f64>, u64) {
    let onset_secs = spec.onset.as_secs_f64();
    let failsafe = out.stop_after(spec.onset);
    let mut violation = None;

    // Universal backstop: danger ⇒ stop within the danger deadline.
    if let Some(danger) = out.danger_onset_secs {
        match out.stop_latency_secs {
            Some(lat) if lat <= DANGER_DEADLINE_SECS => {}
            Some(lat) => {
                violation =
                    Some(format!("danger at {danger:.0}s, stop took {lat:.0}s (> backstop)"));
            }
            None => violation = Some(format!("danger at {danger:.0}s, pump never stopped")),
        }
    }

    // Class-specific check.
    if spec.invariant == InvariantClass::Failover {
        if out.failovers < 1 {
            violation.get_or_insert("primary lost and the standby never promoted".to_owned());
        }
        if out.double_actuations > 0 {
            violation.get_or_insert(format!(
                "{} same-epoch command(s) from two controllers (split-brain actuation)",
                out.double_actuations
            ));
        }
    }
    let deadline = match spec.invariant {
        InvariantClass::Freshness => Some(FRESHNESS_DEADLINE_SECS),
        InvariantClass::Plausibility => Some(PLAUSIBILITY_DEADLINE_SECS),
        InvariantClass::Danger | InvariantClass::Failover => None,
    };
    if let Some(deadline) = deadline {
        match failsafe {
            Some(t) if t <= deadline => {}
            Some(t) => {
                violation
                    .get_or_insert(format!("fail-safe took {t:.0}s (deadline {deadline:.0}s)"));
            }
            None => {
                violation
                    .get_or_insert(format!("fail-safe never engaged (deadline {deadline:.0}s)"));
            }
        }
        // With no recovery path, delivery must never resume.
        if !spec.recovery_allowed() && permitted_in_window(out, onset_secs + deadline, run_secs) {
            violation.get_or_insert("delivery re-permitted with no recovery path".to_owned());
        }
    }

    // Spurious degradations: entries outside [onset, disturbance end +
    // grace]. Control cells have an empty allowed window.
    let end = spec.disturbance_end_secs(run_secs);
    let spurious = out
        .degraded_windows_secs
        .iter()
        .filter(|(entered, _)| {
            if spec.fault.is_none() && spec.outage.is_none() {
                true
            } else {
                *entered < onset_secs || *entered > end + DEGRADE_GRACE_SECS
            }
        })
        .count() as u64;

    (violation, failsafe, spurious)
}

/// Builds the scenario configuration for one trial of `spec`.
fn trial_config(spec: &CellSpec, cfg: &CampaignConfig, trial: u64) -> PcaScenarioConfig {
    let cohort = CohortGenerator::new(cfg.seed, CohortConfig::default());
    let params = cohort.params(cfg.seed.wrapping_mul(131).wrapping_add(trial));
    let mut c = PcaScenarioConfig::baseline(
        cfg.seed.wrapping_add(trial).wrapping_add(spec.onset.as_millis()),
        params,
    );
    c.duration = cfg.run;
    c.proxy_rate_per_hour = 20.0;
    c.backup_oximeter = spec.backup;
    c.scheduler_telemetry = true;
    if let Some(il) = c.interlock.as_mut() {
        il.plausibility_check = true;
    }
    if let Some(kind) = spec.fault {
        let plan = FaultPlan::none().with_fault(kind, spec.onset, spec.until);
        match spec.target {
            FaultTarget::Oximeter => c.oximeter_fault = plan,
            FaultTarget::Pump => c.pump_fault = plan,
            FaultTarget::Supervisor | FaultTarget::Network => {
                // Control-plane cells exercise the redundant pair.
                c.standby_supervisor = true;
                c.supervisor_fault = plan;
            }
            FaultTarget::None => {}
        }
    }
    if let Some(w) = spec.outage {
        c.outages = vec![w];
    }
    c
}

/// Runs one grid cell: `cfg.trials` cohort patients, aggregated into a
/// [`CellReport`].
pub fn run_cell(spec: &CellSpec, cfg: &CampaignConfig) -> CellReport {
    let run_secs = cfg.run.as_secs_f64();
    let mut violations = 0u64;
    let mut reasons: Vec<String> = Vec::new();
    let mut failsafe_times: Vec<f64> = Vec::new();
    let mut spurious = 0u64;
    let mut degraded_entries = 0u64;
    let mut commands_retried = 0u64;
    let mut commands_suppressed = 0u64;
    let mut failovers = 0u64;
    let mut fenced_commands = 0u64;
    let mut double_actuations = 0u64;
    let mut local_failsafe_entries = 0u64;
    let mut max_drug = 0f64;
    let mut min_spo2 = f64::INFINITY;
    let mut queue = QueuePressure { events_scheduled: 0, cascades: 0, max_ready_depth: 0 };
    for trial in 0..cfg.trials {
        let out = run_pca_scenario(&trial_config(spec, cfg, trial));
        let (violation, failsafe, sp) = evaluate(spec, run_secs, &out);
        if let Some(reason) = violation {
            violations += 1;
            if !reasons.contains(&reason) {
                reasons.push(reason);
            }
        }
        failsafe_times.extend(failsafe);
        spurious += sp;
        degraded_entries += out.degraded_windows_secs.len() as u64;
        commands_retried += out.commands_retried;
        commands_suppressed += out.commands_suppressed;
        failovers += u64::from(out.failovers);
        fenced_commands += out.fenced_commands;
        double_actuations += out.double_actuations;
        local_failsafe_entries += out.local_failsafe_entries;
        max_drug = max_drug.max(out.total_drug_mg);
        min_spo2 = min_spo2.min(out.patient.min_spo2);
        queue.events_scheduled += out.telemetry.counter("sched.events_scheduled");
        queue.cascades += out.telemetry.counter("sched.cascades");
        let depth =
            out.telemetry.histogram("sched.max_ready_depth").map_or(0.0, |h| h.summary().max);
        queue.max_ready_depth = queue.max_ready_depth.max(depth as u64);
    }
    let failsafe = (!failsafe_times.is_empty()).then(|| {
        let s = Summary::from_values(&failsafe_times);
        FailsafeSummary {
            engaged: failsafe_times.len() as u64,
            p50_secs: s.median,
            p95_secs: s.p95,
            max_secs: s.max,
        }
    });
    CellReport {
        id: spec.id.clone(),
        kind: spec.kind_label.to_owned(),
        target: spec.target,
        invariant: spec.invariant,
        onset_secs: spec.onset.as_secs_f64(),
        duration_secs: spec.until.map(|u| (u - spec.onset).as_secs_f64()),
        outage: spec.outage.is_some(),
        backup: spec.backup,
        trials: cfg.trials,
        violations,
        violation_reasons: reasons,
        failsafe,
        spurious_degradations: spurious,
        degraded_entries,
        commands_retried,
        commands_suppressed,
        failovers,
        fenced_commands,
        double_actuations,
        local_failsafe_entries,
        max_total_drug_mg: max_drug,
        min_spo2,
        queue,
    }
}

/// Runs the whole campaign grid in parallel (cells are independent and
/// internally deterministic, so the report is reproducible for a given
/// seed regardless of worker count).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut grid = build_grid(cfg);
    grid.extend(mined_failover_cells());
    let cfg_ref = cfg.clone();
    let cells = parallel_map(grid, move |spec| run_cell(&spec, &cfg_ref));
    let total_violations = cells.iter().map(|c| c.violations).sum();
    let total_spurious = cells.iter().map(|c| c.spurious_degradations).sum();
    let max_ready_depth = cells.iter().map(|c| c.queue.max_ready_depth).max().unwrap_or(0);
    CampaignReport {
        seed: cfg.seed,
        trials_per_cell: cfg.trials,
        run_secs: cfg.run.as_secs_f64(),
        cells,
        total_violations,
        total_spurious,
        max_ready_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_and_deduplicates_control_durations() {
        let cfg = CampaignConfig::full(9);
        let a = build_grid(&cfg);
        let b = build_grid(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.id == y.id));
        // Control cells appear once per (onset, outage, scenario) —
        // the duration axis is meaningless without a fault.
        let controls = a.iter().filter(|c| c.fault.is_none()).count();
        assert_eq!(controls, cfg.onsets.len() * 2 * 2);
        // 9 fault kinds × 2 durations + 1 control, × outage × scenario.
        assert_eq!(a.len(), cfg.onsets.len() * (9 * 2 + 1) * 2 * 2);
    }

    #[test]
    fn quick_grid_is_smaller() {
        let full = build_grid(&CampaignConfig::full(9)).len();
        let quick = build_grid(&CampaignConfig::quick(9)).len();
        assert!(quick < full / 2, "quick {quick} vs full {full}");
    }

    #[test]
    fn crash_cell_engages_failsafe_with_zero_violations() {
        let mut cfg = CampaignConfig::quick(5);
        cfg.run = SimDuration::from_mins(15);
        let spec = build_grid(&cfg)
            .into_iter()
            .find(|c| c.kind_label == "crash" && !c.backup && c.outage.is_none())
            .expect("crash cell in grid");
        let report = run_cell(&spec, &cfg);
        assert_eq!(report.violations, 0, "reasons: {:?}", report.violation_reasons);
        let fs = report.failsafe.expect("fail-safe must engage");
        assert!(fs.max_secs <= FRESHNESS_DEADLINE_SECS, "{}", fs.max_secs);
        assert_eq!(report.spurious_degradations, 0);
        assert!(report.degraded_entries >= 1, "sensor loss must degrade the supervisor");
    }

    #[test]
    fn supervisor_crash_cell_fails_over_with_zero_violations() {
        let mut cfg = CampaignConfig::quick(5);
        cfg.run = SimDuration::from_mins(15);
        let spec = build_grid(&cfg)
            .into_iter()
            .find(|c| c.kind_label == "sup-crash" && !c.backup && c.outage.is_none())
            .expect("sup-crash cell in grid");
        let report = run_cell(&spec, &cfg);
        assert_eq!(report.violations, 0, "reasons: {:?}", report.violation_reasons);
        assert!(report.failovers >= 1, "the standby must promote");
        assert_eq!(report.double_actuations, 0);
        assert_eq!(report.spurious_degradations, 0);
    }

    #[test]
    fn mined_cell_schedule_derives_from_the_model_trace() {
        use mcps_safety::timing::PROMOTION_SILENCE_SECS;
        let (crash, promote, recover) = mine_unfenced_schedule()
            .expect("the unfenced-pump mutant must yield a counterexample to mine");
        // The mined schedule must preserve the counterexample's shape:
        // a full silence window between crash and promotion, and the
        // recovery clamped strictly past the promotion.
        assert!(promote > crash + u64::from(PROMOTION_SILENCE_SECS), "early promotion");
        assert!(recover > promote, "recovery must land after the promotion");
        let cells = mined_failover_cells();
        assert_eq!(cells.len(), 1, "exactly one mined regression cell");
        let cell = &cells[0];
        assert_eq!(cell.fault, Some(FaultKind::SupervisorCrash));
        assert_eq!(cell.target, FaultTarget::Supervisor);
        assert_eq!(cell.invariant, InvariantClass::Failover);
        assert_eq!(cell.onset, SimTime::from_secs(MINED_ANCHOR_SECS + crash));
        assert_eq!(cell.until, Some(SimTime::from_secs(MINED_ANCHOR_SECS + recover)));
        // The checker is deterministic, so the mined cell is too —
        // reruns must not churn the committed scorecard.
        let again = mined_failover_cells();
        assert_eq!(cell.id, again[0].id);
        assert_eq!(cell.onset, again[0].onset);
        assert_eq!(cell.until, again[0].until);
    }

    #[test]
    fn mined_cell_replays_clean_on_the_fenced_implementation() {
        let mut cfg = CampaignConfig::quick(5);
        cfg.run = SimDuration::from_mins(15);
        let spec = mined_failover_cells().pop().expect("mined cell");
        let report = run_cell(&spec, &cfg);
        assert_eq!(report.violations, 0, "reasons: {:?}", report.violation_reasons);
        assert!(report.failovers >= 1, "the mined crash window must promote the standby");
        assert_eq!(
            report.double_actuations, 0,
            "the epoch fence must reject the recovered ex-primary's stale traffic"
        );
    }

    #[test]
    fn partition_cell_fences_the_isolated_primary() {
        let mut cfg = CampaignConfig::quick(5);
        cfg.run = SimDuration::from_mins(15);
        let spec = build_grid(&cfg)
            .into_iter()
            .find(|c| c.kind_label == "partition" && !c.backup && c.outage.is_none())
            .expect("partition cell in grid");
        let report = run_cell(&spec, &cfg);
        assert_eq!(report.violations, 0, "reasons: {:?}", report.violation_reasons);
        assert!(report.failovers >= 1, "checkpoint silence must promote the standby");
        assert_eq!(report.double_actuations, 0, "the epoch fence must hold");
    }
}
