//! E7e — end-to-end cost of the full ICE closed loop: one simulated
//! 10-minute PCA scenario (patient + 3 devices + supervisor + network)
//! per iteration, plus a small ward, serial and shard-parallel (the
//! runtime's deterministic `run_shards` pool).

use criterion::{criterion_group, criterion_main, Criterion};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps_core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::time::SimDuration;

fn bench_sharded_cohort(c: &mut Criterion) {
    // The same cohort fanned out over the runtime's shard pool — the
    // speedup over `ice/multibed_10min/8` is the parallel harness win;
    // output stays byte-identical to serial (see the mcps-core
    // `shard_determinism` tests).
    let mut group = c.benchmark_group("runtime/sharded_cohort_10min");
    group.sample_size(10);
    let cohort = CohortGenerator::new(2, CohortConfig::default());
    let configs: Vec<PcaScenarioConfig> = (0..8u64)
        .map(|i| {
            let mut cfg = PcaScenarioConfig::baseline(i, cohort.params(i));
            cfg.duration = SimDuration::from_mins(10);
            cfg
        })
        .collect();
    group.bench_function("8_patients", |b| {
        b.iter(|| mcps_runtime::shard::run_shards(configs.clone(), |cfg| run_pca_scenario(&cfg)))
    });
    group.finish();
}

fn bench_ward_scaling(c: &mut Criterion) {
    // E7f: how simulation cost scales with bed count (one full ICE
    // closed loop per bed, 10 simulated minutes each).
    let mut group = c.benchmark_group("ice/multibed_10min");
    group.sample_size(10);
    for &beds in &[1u64, 4, 8] {
        group.bench_with_input(criterion::BenchmarkId::from_parameter(beds), &beds, |b, &beds| {
            let cohort = CohortGenerator::new(2, CohortConfig::default());
            let configs: Vec<PcaScenarioConfig> = (0..beds)
                .map(|i| {
                    let mut cfg = PcaScenarioConfig::baseline(i, cohort.params(i));
                    cfg.duration = SimDuration::from_mins(10);
                    cfg
                })
                .collect();
            b.iter(|| configs.iter().map(run_pca_scenario).count())
        });
    }
    group.finish();
}

fn bench_pca_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ice");
    group.sample_size(20);
    group.bench_function("pca_scenario_10min", |b| {
        let cohort = CohortGenerator::new(1, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(1, cohort.params(0));
        cfg.duration = SimDuration::from_mins(10);
        b.iter(|| run_pca_scenario(&cfg))
    });
    group.bench_function("ward_4beds_30min", |b| {
        let cfg = WardConfig {
            seed: 1,
            patients: 4,
            duration: SimDuration::from_mins(30),
            ..WardConfig::default()
        };
        b.iter(|| run_ward_scenario(&cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_pca_loop, bench_ward_scaling, bench_sharded_cohort);
criterion_main!(benches);
