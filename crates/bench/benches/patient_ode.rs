//! E7c — virtual-patient integration cost: one simulated hour of
//! physiology per iteration (PK RK4 + gas exchange + pain dynamics).

use criterion::{criterion_group, criterion_main, Criterion};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_patient::patient::{PatientParams, VirtualPatient};
use mcps_sim::rng::RngFactory;

fn bench_advance(c: &mut Criterion) {
    c.bench_function("patient/one_hour_1hz", |b| {
        let factory = RngFactory::new(7);
        b.iter(|| {
            let mut p = VirtualPatient::new(PatientParams::default());
            let mut rng = factory.stream("bench");
            p.give_bolus(1.0);
            for _ in 0..3600 {
                p.advance(1.0, &mut rng);
            }
            p.outcome()
        })
    });
}

fn bench_cohort_sampling(c: &mut Criterion) {
    c.bench_function("patient/cohort_param_sample", |b| {
        let g = CohortGenerator::new(3, CohortConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            g.params(i)
        })
    });
}

criterion_group!(benches, bench_advance, bench_cohort_sampling);
criterion_main!(benches);
