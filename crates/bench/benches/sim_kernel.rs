//! E7a — simulation-kernel event throughput.
//!
//! Measures raw event dispatch (single self-scheduling actor) and
//! fan-out cost (one producer driving N consumers), establishing the
//! platform budget that makes cohort-scale experiments feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_sim::prelude::*;

struct Counter {
    n: u64,
    limit: u64,
}

impl Actor<()> for Counter {
    fn handle(&mut self, _msg: (), ctx: &mut Context<'_, ()>) {
        self.n += 1;
        if self.n < self.limit {
            ctx.schedule_self(SimDuration::from_millis(1), ());
        }
    }
}

struct Broadcaster {
    targets: Vec<ActorId>,
    rounds: u64,
}

struct Sink {
    received: u64,
}

#[derive(Clone)]
enum Fan {
    Tick,
    Data,
}

impl Actor<Fan> for Broadcaster {
    fn handle(&mut self, msg: Fan, ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Tick) && self.rounds > 0 {
            self.rounds -= 1;
            for &t in &self.targets {
                ctx.send(t, Fan::Data);
            }
            ctx.schedule_self(SimDuration::from_millis(1), Fan::Tick);
        }
    }
}

impl Actor<Fan> for Sink {
    fn handle(&mut self, msg: Fan, _ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Data) {
            self.received += 1;
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("kernel/self_schedule_100k_events", |b| {
        b.iter(|| {
            let mut sim: Simulation<()> = Simulation::new(0);
            sim.trace_mut().set_enabled(false);
            let id = sim.add_actor("counter", Counter { n: 0, limit: 100_000 });
            sim.schedule(SimTime::ZERO, id, ());
            sim.run();
            assert_eq!(sim.events_processed(), 100_000);
        })
    });
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/fanout_1000_rounds");
    for &n in &[1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim: Simulation<Fan> = Simulation::new(0);
                sim.trace_mut().set_enabled(false);
                let targets: Vec<ActorId> = (0..n)
                    .map(|i| sim.add_actor(&format!("sink{i}"), Sink { received: 0 }))
                    .collect();
                let b_id = sim.add_actor("bcast", Broadcaster { targets, rounds: 1_000 });
                sim.schedule(SimTime::ZERO, b_id, Fan::Tick);
                sim.run();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_fanout);
criterion_main!(benches);
