//! E7a — simulation-kernel event throughput.
//!
//! Measures raw event dispatch (single self-scheduling actor), fan-out
//! cost (one producer driving N consumers) and batched same-instant
//! dispatch (the scheduler draining whole instants at once),
//! establishing the platform budget that makes cohort-scale
//! experiments feasible. Benches the runtime crate directly — the
//! `mcps_sim` facade adds no code of its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_runtime::prelude::*;

struct Counter {
    n: u64,
    limit: u64,
}

impl Actor<()> for Counter {
    fn handle(&mut self, _msg: (), ctx: &mut Context<'_, ()>) {
        self.n += 1;
        if self.n < self.limit {
            ctx.schedule_self(SimDuration::from_millis(1), ());
        }
    }
}

struct Broadcaster {
    targets: Vec<ActorId>,
    rounds: u64,
}

struct Sink {
    received: u64,
}

#[derive(Clone)]
enum Fan {
    Tick,
    Data,
}

impl Actor<Fan> for Broadcaster {
    fn handle(&mut self, msg: Fan, ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Tick) && self.rounds > 0 {
            self.rounds -= 1;
            for &t in &self.targets {
                ctx.send(t, Fan::Data);
            }
            ctx.schedule_self(SimDuration::from_millis(1), Fan::Tick);
        }
    }
}

impl Actor<Fan> for Sink {
    fn handle(&mut self, msg: Fan, _ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Data) {
            self.received += 1;
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("kernel/self_schedule_100k_events", |b| {
        b.iter(|| {
            let mut sim: Simulation<()> = Simulation::new(0);
            sim.trace_mut().set_enabled(false);
            let id = sim.add_actor("counter", Counter { n: 0, limit: 100_000 });
            sim.schedule(SimTime::ZERO, id, ());
            sim.run();
            assert_eq!(sim.events_processed(), 100_000);
        })
    });
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/fanout_1000_rounds");
    for &n in &[1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim: Simulation<Fan> = Simulation::new(0);
                sim.trace_mut().set_enabled(false);
                let targets: Vec<ActorId> = (0..n)
                    .map(|i| sim.add_actor(&format!("sink{i}"), Sink { received: 0 }))
                    .collect();
                let b_id = sim.add_actor("bcast", Broadcaster { targets, rounds: 1_000 });
                sim.schedule(SimTime::ZERO, b_id, Fan::Tick);
                sim.run();
            })
        });
    }
    group.finish();
}

struct Burst {
    sink: ActorId,
    per_round: u64,
    rounds: u64,
}

impl Actor<Fan> for Burst {
    fn handle(&mut self, msg: Fan, ctx: &mut Context<'_, Fan>) {
        if matches!(msg, Fan::Tick) && self.rounds > 0 {
            self.rounds -= 1;
            ctx.send_many(self.sink, (0..self.per_round).map(|_| Fan::Data));
            ctx.schedule_self(SimDuration::from_millis(1), Fan::Tick);
        }
    }
}

fn bench_batched_dispatch(c: &mut Criterion) {
    // Many events share each instant: the scheduler drains the whole
    // batch without re-touching the heap per event. 500 instants x
    // `per_round` same-instant deliveries per iteration.
    let mut group = c.benchmark_group("runtime/batched_dispatch");
    for &per_round in &[16u64, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(per_round),
            &per_round,
            |b, &per_round| {
                b.iter(|| {
                    let mut sim: Simulation<Fan> = Simulation::new(0);
                    sim.trace_mut().set_enabled(false);
                    let sink = sim.add_actor("sink", Sink { received: 0 });
                    let burst = sim.add_actor("burst", Burst { sink, per_round, rounds: 500 });
                    sim.schedule(SimTime::ZERO, burst, Fan::Tick);
                    sim.run();
                    assert_eq!(sim.actor_as::<Sink>(sink).unwrap().received, 500 * per_round);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_fanout, bench_batched_dispatch);
criterion_main!(benches);
