//! E7d — model-checker cost per PCA interlock variant, plus state-space
//! growth with the number of parallel timers (the documented
//! exponential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_safety::automaton::{Action, Automaton, Guard};
use mcps_safety::checker::Network;
use mcps_safety::models::{check_pca_variant, PcaModelVariant};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/pca_variant");
    group.sample_size(20);
    for variant in PcaModelVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| b.iter(|| check_pca_variant(variant, 5_000_000)),
        );
    }
    group.finish();
}

/// A chain of N independent timers each counting to `bound` — the
/// reachable state space grows like `bound^N`.
fn timer_chain(n: usize, bound: u32) -> Network {
    let automata = (0..n)
        .map(|i| {
            let mut b = Automaton::builder(&format!("timer{i}"));
            let x = b.clock("x");
            let run = b.location("Run");
            let done = b.location("Done");
            b.invariant(run, Guard::Le(x, bound));
            b.edge("fire", run, done, Guard::Ge(x, bound), Action::Internal, vec![x]);
            b.edge("restart", done, run, Guard::True, Action::Internal, vec![x]);
            b.build()
        })
        .collect();
    Network::new(automata)
}

fn bench_state_space_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/state_space_bound20");
    group.sample_size(10);
    for &n in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let net = timer_chain(n, 20);
            b.iter(|| net.check_safety(|_| false, 50_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_state_space_growth);
criterion_main!(benches);
