//! E7d — model-checker cost per PCA interlock variant, plus state-space
//! growth with the number of parallel timers (the documented
//! exponential), plus a packed-vs-reference engine comparison on the
//! same workload so the speedup is measured, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_bench::timer_chain;
use mcps_safety::models::{check_pca_variant, PcaModelVariant};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/pca_variant");
    group.sample_size(20);
    for variant in PcaModelVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| b.iter(|| check_pca_variant(variant, 5_000_000)),
        );
    }
    group.finish();
}

fn bench_state_space_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/state_space_bound20");
    group.sample_size(10);
    for &n in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let net = timer_chain(n, 20);
            b.iter(|| net.check_safety(|_| false, 50_000_000))
        });
    }
    group.finish();
}

/// The same workload on the packed engine (serial, to isolate the data
/// layout from the scheduler) and on the retained first-generation
/// engine. `timer_chain(2, 20)` keeps the reference side tolerable.
fn bench_engine_comparison(c: &mut Criterion) {
    use mcps_safety::pack::ExploreMode;
    let mut group = c.benchmark_group("checker/engine_bound20_n2");
    group.sample_size(10);
    let net = timer_chain(2, 20);
    group.bench_function("packed_serial", |b| {
        b.iter(|| net.check_safety_in(|_| false, 50_000_000, ExploreMode::Serial))
    });
    group.bench_function("packed_parallel", |b| {
        b.iter(|| net.check_safety_in(|_| false, 50_000_000, ExploreMode::Parallel))
    });
    group.bench_function("reference", |b| {
        b.iter(|| net.check_safety_reference(|_| false, 50_000_000))
    });
    group.finish();
}

criterion_group!(benches, bench_variants, bench_state_space_growth, bench_engine_comparison);
criterion_main!(benches);
