//! E7b — network-fabric throughput: publish planning with growing
//! subscriber counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_net::fabric::{Fabric, Topic};
use mcps_net::qos::LinkQos;
use mcps_sim::rng::RngFactory;
use mcps_sim::time::SimTime;

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/publish_per_msg");
    for &subs in &[1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, &subs| {
            let mut fabric = Fabric::new();
            fabric.set_default_qos(LinkQos::wifi());
            let publisher = fabric.add_endpoint("pub");
            let topic = Topic::new("vitals/spo2");
            for i in 0..subs {
                let ep = fabric.add_endpoint(&format!("sub{i}"));
                fabric.subscribe(ep, topic.clone());
            }
            let mut rng = RngFactory::new(1).stream("bench");
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                fabric.publish(publisher, &topic, SimTime::from_millis(t), &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_unicast(c: &mut Criterion) {
    c.bench_function("fabric/unicast_per_msg", |b| {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::wired());
        let a = fabric.add_endpoint("a");
        let z = fabric.add_endpoint("z");
        let mut rng = RngFactory::new(1).stream("bench");
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            fabric.unicast(a, z, SimTime::from_millis(t), &mut rng)
        })
    });
}

criterion_group!(benches, bench_publish, bench_unicast);
criterion_main!(benches);
