//! E7b — network-fabric throughput: publish planning with growing
//! subscriber counts, dense-routed engine vs the tree-routed reference.
//!
//! The `fabric/publish_per_msg/{N}` groups measure the dense engine on
//! the heterogeneous routing workload (every link has an explicit QoS
//! override and an outage plan, but deterministic delivery — the
//! figures compare routing cores, not the shared link stochastics);
//! `fabric/reference_per_msg/{N}` is the identical workload on
//! [`ReferenceFabric`]. `fabric/fanout_multitopic` is the multi-bed
//! ward shape: per-bed scoped topics with a small fan-out each,
//! round-robined through one publisher per bed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcps_net::fabric::{Fabric, PlannedDelivery, Topic};
use mcps_net::qos::{LinkQos, OutagePlan};
use mcps_net::reference::ReferenceFabric;
use mcps_sim::rng::RngFactory;
use mcps_sim::time::{SimDuration, SimTime};

/// Heterogeneous per-link QoS: base with a per-link latency tweak.
fn link_qos_for(base: LinkQos, i: usize) -> LinkQos {
    base.with_latency(base.base_latency + SimDuration::from_micros(i as u64 % 32))
}

/// A long-past maintenance window: real per-link outage state on every
/// link without affecting steady-state delivery.
fn stale_outage() -> OutagePlan {
    OutagePlan::none().with_outage(SimTime::ZERO, SimTime::ZERO + SimDuration::from_micros(1))
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/publish_per_msg");
    for &subs in &[1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, &subs| {
            let mut fabric = Fabric::new();
            fabric.set_default_qos(LinkQos::ideal());
            let publisher = fabric.add_endpoint("pub");
            let topic = Topic::new("vitals/spo2");
            for i in 0..subs {
                let ep = fabric.add_endpoint(&format!("sub{i}"));
                fabric.subscribe(ep, topic.clone());
                fabric.set_link(publisher, ep, link_qos_for(LinkQos::ideal(), i));
                fabric.set_outages(publisher, ep, stale_outage());
            }
            let tid = fabric.intern_topic(&topic);
            let mut rng = RngFactory::new(1).stream("bench");
            let mut scratch: Vec<PlannedDelivery> = Vec::new();
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                scratch.clear();
                fabric.publish_topic_into(
                    publisher,
                    tid,
                    SimTime::from_millis(t),
                    &mut rng,
                    &mut scratch,
                );
                scratch.len()
            })
        });
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric/reference_per_msg");
    for &subs in &[1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |b, &subs| {
            let mut fabric = ReferenceFabric::new();
            fabric.set_default_qos(LinkQos::ideal());
            let publisher = fabric.add_endpoint("pub");
            let topic = Topic::new("vitals/spo2");
            for i in 0..subs {
                let ep = fabric.add_endpoint(&format!("sub{i}"));
                fabric.subscribe(ep, topic.clone());
                fabric.set_link(publisher, ep, link_qos_for(LinkQos::ideal(), i));
                fabric.set_outages(publisher, ep, stale_outage());
            }
            let mut rng = RngFactory::new(1).stream("bench");
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                fabric.publish(publisher, &topic, SimTime::from_millis(t), &mut rng).len()
            })
        });
    }
    group.finish();
}

fn bench_multitopic(c: &mut Criterion) {
    // 32 beds, each with its own scoped vitals topic, one device
    // publishing per bed and 4 subscribers — the multibed ward shape.
    c.bench_function("fabric/fanout_multitopic/32beds_x4subs", |b| {
        let beds = 32usize;
        let subs = 4usize;
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::wifi());
        let mut pubs = Vec::new();
        let mut ids = Vec::new();
        for bed in 0..beds {
            let device = fabric.add_endpoint(&format!("bed{bed}/oximeter"));
            let topic = Topic::new(format!("bed{bed}/vitals/spo2"));
            for i in 0..subs {
                let ep = fabric.add_endpoint(&format!("bed{bed}/sub{i}"));
                fabric.subscribe(ep, topic.clone());
                fabric.set_link(device, ep, link_qos_for(LinkQos::wifi(), bed * subs + i));
                fabric.set_outages(device, ep, stale_outage());
            }
            ids.push(fabric.intern_topic(&topic));
            pubs.push(device);
        }
        let mut rng = RngFactory::new(1).stream("bench");
        let mut scratch: Vec<PlannedDelivery> = Vec::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let bed = (t as usize) % beds;
            scratch.clear();
            fabric.publish_topic_into(
                pubs[bed],
                ids[bed],
                SimTime::from_millis(t),
                &mut rng,
                &mut scratch,
            );
            scratch.len()
        })
    });
}

fn bench_unicast(c: &mut Criterion) {
    c.bench_function("fabric/unicast_per_msg", |b| {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::wired());
        let a = fabric.add_endpoint("a");
        let z = fabric.add_endpoint("z");
        let mut rng = RngFactory::new(1).stream("bench");
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            fabric.unicast(a, z, SimTime::from_millis(t), &mut rng)
        })
    });
}

criterion_group!(benches, bench_publish, bench_reference, bench_multitopic, bench_unicast);
criterion_main!(benches);
