//! Shard-parallel execution must be **byte-identical** to serial
//! execution on real workloads — the acceptance gate for moving the
//! experiment cohorts onto `run_shards`. Identity is checked on the
//! serialized JSON, not just `PartialEq`, so even float formatting and
//! field ordering must agree.

use mcps_core::scenarios::multibed::{
    multibed_shard_configs, run_multibed_scenario, run_multibed_sharded, MultiBedConfig,
};
use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig, PcaScenarioOutcome};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_sim::shard::run_shards;
use mcps_sim::time::SimDuration;

#[test]
fn e1_cohort_parallel_is_byte_identical_to_serial() {
    // The exact per-patient configuration E1 builds: one isolated seed
    // per cohort member, shared scenario parameters.
    let seed = 42u64;
    let cohort = CohortGenerator::new(seed, CohortConfig::default());
    let cfgs: Vec<PcaScenarioConfig> = (0..6u64)
        .map(|i| {
            let mut c = PcaScenarioConfig::baseline(seed.wrapping_add(i), cohort.params(i));
            c.duration = SimDuration::from_mins(20);
            c.proxy_rate_per_hour = 4.0;
            c
        })
        .collect();

    let serial: Vec<PcaScenarioOutcome> = cfgs.iter().map(run_pca_scenario).collect();
    let parallel = run_shards(cfgs, |c| run_pca_scenario(&c));

    assert_eq!(
        serde_json::to_string(&parallel).unwrap(),
        serde_json::to_string(&serial).unwrap(),
        "shard-parallel E1 cohort diverged from serial execution"
    );
}

#[test]
fn multibed_ward_parallel_is_byte_identical_to_serial() {
    let cfg = MultiBedConfig {
        seed: 17,
        beds: 3,
        duration: SimDuration::from_mins(8),
        bed0_proxy_rate_per_hour: 15.0,
        ..MultiBedConfig::default()
    };
    let parallel = run_multibed_sharded(&cfg, 3);
    let serial: Vec<_> = multibed_shard_configs(&cfg, 3)
        .into_iter()
        .flat_map(|(offset, c)| {
            let mut beds = run_multibed_scenario(&c);
            for b in &mut beds {
                b.bed += offset;
            }
            beds
        })
        .collect();
    assert_eq!(
        serde_json::to_string(&parallel).unwrap(),
        serde_json::to_string(&serial).unwrap(),
        "shard-parallel ward diverged from serial execution"
    );
}
