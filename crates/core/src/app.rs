//! Clinical apps (virtual medical devices).
//!
//! A *clinical app* is the supervisor-resident logic of one clinical
//! scenario: it declares the device slots it needs, receives the data
//! those devices publish, and issues commands to them by slot name.
//! The app never sees endpoints, vendors or network details — that
//! indirection is precisely what makes the composed system a *virtual
//! medical device* assembled on demand.

use mcps_device::profile::DeviceRequirementSet;
use mcps_patient::vitals::VitalKind;
use mcps_sim::rng::SimRng;
use mcps_sim::time::SimTime;

use crate::manager::DeviceManager;
use crate::msg::IceCommand;

/// What an app may do during a callback: inspect time/associations and
/// enqueue commands to its device slots.
#[derive(Debug)]
pub struct AppCtx<'a> {
    now: SimTime,
    manager: &'a DeviceManager,
    rng: &'a mut SimRng,
    outbox: Vec<(String, IceCommand)>,
    notes: Vec<String>,
    notes_enabled: bool,
}

impl<'a> AppCtx<'a> {
    pub(crate) fn new(now: SimTime, manager: &'a DeviceManager, rng: &'a mut SimRng) -> Self {
        AppCtx { now, manager, rng, outbox: Vec::new(), notes: Vec::new(), notes_enabled: true }
    }

    /// Sets whether notes are collected at all. The supervisor passes
    /// its trace enablement here so disabled-trace runs never build the
    /// note `String`s they would immediately discard.
    pub(crate) fn with_notes_enabled(mut self, enabled: bool) -> Self {
        self.notes_enabled = enabled;
        self
    }

    /// The app's deterministic random stream (e.g. for modelling human
    /// latencies in manual-workflow baselines).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether every slot is associated.
    pub fn fully_associated(&self) -> bool {
        self.manager.fully_associated()
    }

    /// Whether a specific slot is associated.
    pub fn slot_associated(&self, slot: &str) -> bool {
        self.manager.endpoint_for(slot).is_some()
    }

    /// Enqueues a command to the device in `slot`. Commands to
    /// unassociated slots are dropped by the supervisor (and traced).
    pub fn command(&mut self, slot: &str, command: IceCommand) {
        self.outbox.push((slot.to_owned(), command));
    }

    /// Emits a trace note (appears under the `app` category). The
    /// enablement check precedes the `Into<String>` conversion, so a
    /// disabled trace pays no allocation even for `&str` arguments.
    pub fn note(&mut self, text: impl Into<String>) {
        if self.notes_enabled {
            self.notes.push(text.into());
        }
    }

    /// Emits a lazily built trace note: the closure runs only when
    /// notes are being collected. Prefer this over [`Self::note`] when
    /// the message requires formatting.
    pub fn note_with(&mut self, text: impl FnOnce() -> String) {
        if self.notes_enabled {
            self.notes.push(text());
        }
    }

    pub(crate) fn into_parts(self) -> (Vec<(String, IceCommand)>, Vec<String>) {
        (self.outbox, self.notes)
    }
}

/// The clinical-app interface.
///
/// Implementations are plain state machines; all I/O happens through
/// [`AppCtx`]. See [`crate::apps::PcaSafetyApp`] for the paper's
/// flagship example.
///
/// The [`AsAny`](mcps_sim::actor::AsAny) supertrait (blanket-implemented
/// for every `'static` type) lets experiment harnesses downcast to the
/// concrete app after a run.
pub trait ClinicalApp: mcps_sim::actor::AsAny {
    /// The device slots this app requires.
    fn requirements(&self) -> Vec<DeviceRequirementSet>;

    /// Called once when the last slot associates.
    fn on_associated(&mut self, ctx: &mut AppCtx<'_>) {
        let _ = ctx;
    }

    /// Called for every data point arriving from an associated device.
    fn on_data(&mut self, ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, sampled_at: SimTime);

    /// Called when a device acknowledges a command.
    fn on_ack(&mut self, ctx: &mut AppCtx<'_>, command: IceCommand, applied_at: SimTime) {
        let _ = (ctx, command, applied_at);
    }

    /// Called at the supervisor's control rate (1 Hz).
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_commands_and_notes() {
        let manager = DeviceManager::new(vec![]);
        let mut rng = mcps_sim::rng::RngFactory::new(1).stream("appctx");
        let mut ctx = AppCtx::new(SimTime::from_secs(3), &manager, &mut rng);
        assert_eq!(ctx.now(), SimTime::from_secs(3));
        assert!(ctx.fully_associated(), "no slots = trivially associated");
        assert!(!ctx.slot_associated("pump"));
        ctx.command("pump", IceCommand::StopPump);
        ctx.note("hello");
        let (out, notes) = ctx.into_parts();
        assert_eq!(out, vec![("pump".to_owned(), IceCommand::StopPump)]);
        assert_eq!(notes, vec!["hello".to_owned()]);
    }

    #[test]
    fn disabled_notes_build_nothing() {
        let manager = DeviceManager::new(vec![]);
        let mut rng = mcps_sim::rng::RngFactory::new(1).stream("appctx");
        let mut ctx = AppCtx::new(SimTime::ZERO, &manager, &mut rng).with_notes_enabled(false);
        let mut built = 0u32;
        ctx.note("dropped");
        ctx.note_with(|| {
            built += 1;
            "never".to_owned()
        });
        assert_eq!(built, 0, "disabled notes must not run the closure");
        let (_, notes) = ctx.into_parts();
        assert!(notes.is_empty());
    }
}
