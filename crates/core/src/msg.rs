//! The ICE message plane.
//!
//! Every actor in an ICE simulation exchanges [`IceMsg`] values. The
//! *physical* world (drug into a vein, a finger on the demand button)
//! is modelled with direct messages or shared state; the *network*
//! world is modelled by routing [`NetOp`] values through the network
//! controller, which imposes the fabric's latency/loss on them.

use mcps_device::profile::DeviceProfile;
use mcps_net::fabric::{EndpointId, Topic};
use mcps_patient::vitals::VitalKind;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Commands the supervisor can address to devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IceCommand {
    /// Halt infusion.
    StopPump,
    /// Resume infusion.
    ResumePump,
    /// Grant a permission ticket.
    GrantTicket {
        /// Ticket lifetime.
        validity: SimDuration,
    },
    /// Pause ventilation for at most the given duration.
    PauseVentilation {
        /// Requested pause length.
        duration: SimDuration,
    },
    /// Resume ventilation.
    ResumeVentilation,
    /// Arm the x-ray generator.
    ArmExposure,
    /// Fire the x-ray.
    Expose,
    /// Periodic supervisor liveness probe. Applied as a no-op but
    /// acknowledged like any command, so the round-trip (a) feeds the
    /// device-local fail-safe watchdog — a pump that hears neither a
    /// heartbeat nor a real command within its supervision deadline
    /// falls back to a basal-only safe state — and (b) gives the
    /// supervisor a continuous RTT signal on the command channel.
    Heartbeat,
}

/// Payload of a network message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetPayload {
    /// A published vital-sign data point.
    Data {
        /// The vital.
        kind: VitalKind,
        /// Measured value.
        value: f64,
        /// When the device sampled it.
        sampled_at: SimTime,
    },
    /// A device announcing itself for association.
    Announce {
        /// The device's capability profile.
        profile: DeviceProfile,
        /// The announcing endpoint.
        endpoint: EndpointId,
    },
    /// A command to a device.
    Command {
        /// Unique id assigned by the sender; echoed in the [`NetPayload::Ack`]
        /// so round-trips pair up even when identical command kinds
        /// are in flight concurrently.
        id: u64,
        /// Supervisor fencing epoch. Devices remember the highest epoch
        /// they have seen and silently reject commands from lower ones,
        /// so a partitioned ex-primary's stale commands cannot actuate
        /// anything after a standby has promoted (split-brain safety).
        epoch: u64,
        /// The command itself.
        command: IceCommand,
    },
    /// Acknowledgement of a command.
    Ack {
        /// Id of the command being acknowledged.
        id: u64,
        /// The acknowledged command.
        command: IceCommand,
        /// When the device applied it.
        applied_at: SimTime,
    },
    /// Primary → standby state checkpoint on the replication topic.
    /// Doubles as the primary's liveness signal: a standby that misses
    /// enough consecutive checkpoints promotes itself.
    Checkpoint {
        /// The sender's fencing epoch.
        epoch: u64,
        /// Next command id the sender would assign. The standby adopts
        /// the maximum it has seen so a post-promotion command can
        /// never collide with an id the device dedup window remembers.
        next_command_id: u64,
        /// Whether the sender is in degraded mode.
        degraded: bool,
        /// Whether the sender has an unconfirmed stop outstanding.
        stop_unconfirmed: bool,
        /// Command ids still awaiting their acks at the sender.
        inflight_ids: Vec<u64>,
        /// Last data arrival per associated endpoint (freshness view).
        last_data: Vec<(EndpointId, SimTime)>,
    },
}

/// Where a network message is headed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetAddress {
    /// Direct to one endpoint.
    Endpoint(EndpointId),
    /// To all subscribers of a topic.
    Topic(Topic),
}

/// A network-plane operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetOp {
    /// Actor → network controller: transmit this.
    Send {
        /// Sending endpoint.
        from: EndpointId,
        /// Destination.
        to: NetAddress,
        /// Payload.
        payload: NetPayload,
    },
    /// Network controller → actor: a message arrived.
    Deliver {
        /// Originating endpoint.
        from: EndpointId,
        /// Payload.
        payload: NetPayload,
    },
}

/// The universal message type of ICE simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IceMsg {
    /// Periodic self-scheduled tick (each actor manages its own rate).
    Tick,
    /// Network-plane traffic.
    Net(NetOp),
    /// Physical press of the PCA demand button (patient or proxy —
    /// the pump cannot tell the difference, which is the hazard).
    PressButton,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_cloneable_and_comparable() {
        let p = NetPayload::Data { kind: VitalKind::Spo2, value: 97.0, sampled_at: SimTime::ZERO };
        assert_eq!(p.clone(), p);
        let c = IceCommand::GrantTicket { validity: SimDuration::from_secs(15) };
        assert_eq!(c, c.clone());
    }

    #[test]
    fn message_enum_roundtrips_serde() {
        let mut fabric = mcps_net::fabric::Fabric::new();
        let ep = fabric.add_endpoint("dev");
        let m = IceMsg::Net(NetOp::Send {
            from: ep,
            to: NetAddress::Topic(Topic::new("vitals/spo2")),
            payload: NetPayload::Command { id: 7, epoch: 1, command: IceCommand::StopPump },
        });
        let json = serde_json::to_string(&m).unwrap();
        let back: IceMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
