//! The ICE supervisor.
//!
//! Hosts one clinical app: runs device association, forwards published
//! data into the app, dispatches the app's slot-addressed commands onto
//! the network, and tracks command round-trip latency.
//!
//! # Sans-io split
//!
//! All decision logic lives in [`SupervisorCore`] (see [`sans_io`]), a
//! pure state machine with no I/O and no clock of its own. The
//! [`Supervisor`] actor in this module is a *thin adapter*: it maps
//! kernel messages to [`CoreInput`]s, hands the core the actor's RNG
//! stream and the current instant, and replays the buffered
//! [`CoreOutputs`] onto the deterministic scheduler — sends become
//! `NetOp::Send` messages to the network controller, traces land in the
//! kernel trace log, and every `Tick` re-arms itself one step later.
//! The live `mcps-serve` host drives the *same* core from wall-clock
//! time and framed transports, so simulated and served supervisors are
//! one implementation.
//!
//! # Fault robustness
//!
//! The supervisor is the component the paper's assurance case leans on
//! when devices or links misbehave, so it carries three defensive
//! mechanisms:
//!
//! * **Command retry** — safety-critical commands ([`IceCommand::StopPump`],
//!   [`IceCommand::ResumePump`]) that go unacknowledged are retransmitted
//!   with the *same* command id under bounded exponential backoff;
//!   devices deduplicate by id, so a retry can never double-apply.
//!   Periodic commands (ticket grants) are never retried — the next
//!   period re-issues them, and re-applying an old grant would extend
//!   its validity window.
//! * **Ack watchdog** — a [`IceCommand::StopPump`] still unacknowledged
//!   after the last retry is treated as a lost pump: the supervisor
//!   escalates to degraded mode rather than assuming the stop landed.
//! * **Degraded mode** — entered when a streaming device goes silent
//!   (its slot is vacated) or the ack watchdog fires. On entry the
//!   supervisor latches an alarm and halts every associated device that
//!   accepts a stop; while degraded it suppresses app commands that
//!   would re-enable delivery (ticket grants, resumes). The mode is
//!   exited *hysteretically*: only after the system has been fully
//!   associated with fresh data on every stream for a continuous
//!   settling window, at which point the supervisor lifts its own halt.

pub mod sans_io;

pub use sans_io::{
    CheckpointState, CoreInput, CoreOutputs, SupervisorCore, SupervisorRole, HEARTBEAT_PERIOD,
};

use mcps_device::faults::FaultPlan;
use mcps_net::fabric::EndpointId;
use mcps_net::monitor::DeadlineTracker;
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};

use crate::app::ClinicalApp;
use crate::manager::DeviceManager;
use crate::msg::{IceMsg, NetOp};

/// The supervisor actor: [`SupervisorCore`] adapted to the simulation
/// kernel. See the module docs for the sans-io split.
pub struct Supervisor {
    core: SupervisorCore,
    netctl: ActorId,
    /// Reused output buffer (no steady-state allocation per event).
    out: CoreOutputs,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor").field("core", &self.core).finish()
    }
}

impl Supervisor {
    /// Creates a supervisor hosting `app`, with a command-RTT deadline
    /// used for the E4 statistics and as the ack-expiry horizon.
    pub fn new(
        app: impl ClinicalApp,
        netctl: ActorId,
        endpoint: EndpointId,
        rtt_deadline: SimDuration,
    ) -> Self {
        Supervisor {
            core: SupervisorCore::new(app, endpoint, rtt_deadline),
            netctl,
            out: CoreOutputs::new(),
        }
    }

    /// Sets the control-tick re-arm period (see
    /// [`SupervisorCore::with_step`]).
    pub fn with_step(mut self, step: SimDuration) -> Self {
        self.core = self.core.with_step(step);
        self
    }

    /// Sets the role in a redundant pair (see [`SupervisorCore::with_role`]).
    pub fn with_role(mut self, role: SupervisorRole) -> Self {
        self.core = self.core.with_role(role);
        self
    }

    /// Enables primary/standby redundancy under `scope` (see
    /// [`SupervisorCore::with_redundancy`]).
    pub fn with_redundancy(mut self, scope: &str) -> Self {
        self.core = self.core.with_redundancy(scope);
        self
    }

    /// Attaches the supervisor's own fault schedule (see
    /// [`SupervisorCore::with_faults`]).
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.core = self.core.with_faults(fault);
        self
    }

    /// The underlying sans-io core (every counter and latch lives there).
    pub fn core(&self) -> &SupervisorCore {
        &self.core
    }

    /// The device manager (association state).
    pub fn manager(&self) -> &DeviceManager {
        self.core.manager()
    }

    /// Data points received from associated devices.
    pub fn data_received(&self) -> u64 {
        self.core.data_received()
    }

    /// Data points ignored because the sender was not associated.
    pub fn data_ignored(&self) -> u64 {
        self.core.data_ignored()
    }

    /// Commands sent (excluding retransmissions).
    pub fn commands_sent(&self) -> u64 {
        self.core.commands_sent()
    }

    /// Retransmissions of unacknowledged retryable commands.
    pub fn commands_retried(&self) -> u64 {
        self.core.commands_retried()
    }

    /// App commands suppressed while degraded.
    pub fn commands_suppressed(&self) -> u64 {
        self.core.commands_suppressed()
    }

    /// Command round-trip statistics.
    pub fn rtt(&self) -> &DeadlineTracker {
        self.core.rtt()
    }

    /// When association (first) completed, if it did.
    pub fn associated_at(&self) -> Option<SimTime> {
        self.core.associated_at()
    }

    /// Completed associations (> 1 means at least one hot-swap).
    pub fn associations_completed(&self) -> u32 {
        self.core.associations_completed()
    }

    /// Whether the supervisor is currently in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.core.is_degraded()
    }

    /// The latched alarm reason, if an alarm is active.
    pub fn alarm(&self) -> Option<&'static str> {
        self.core.alarm()
    }

    /// Degraded windows `(entered, exited)`, oldest first; an open
    /// window has `None` as its exit.
    pub fn degraded_log(&self) -> &[(SimTime, Option<SimTime>)] {
        self.core.degraded_log()
    }

    /// Times the ack watchdog escalated a lost stop command.
    pub fn watchdog_escalations(&self) -> u32 {
        self.core.watchdog_escalations()
    }

    /// Current role (a standby flips to primary at promotion).
    pub fn role(&self) -> SupervisorRole {
        self.core.role()
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Standby → primary promotions performed.
    pub fn failovers(&self) -> u32 {
        self.core.failovers()
    }

    /// Primary → standby demotions (split-brain resolution).
    pub fn stepdowns(&self) -> u32 {
        self.core.stepdowns()
    }

    /// App commands dropped because this supervisor was standby.
    pub fn standby_suppressed(&self) -> u64 {
        self.core.standby_suppressed()
    }

    /// Heartbeats sent / acknowledged / given up on.
    pub fn heartbeat_counts(&self) -> (u64, u64, u64) {
        self.core.heartbeat_counts()
    }

    /// Heartbeat round-trip times, milliseconds, in completion order.
    pub fn heartbeat_rtts_ms(&self) -> &[f64] {
        self.core.heartbeat_rtts_ms()
    }

    /// Command ids the peer reported inflight in its last checkpoint.
    pub fn replicated_inflight_ids(&self) -> &[u64] {
        self.core.replicated_inflight_ids()
    }

    /// Typed access to the hosted app's concrete state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.core.app_as::<T>()
    }
}

impl Actor<IceMsg> for Supervisor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        let input = match msg {
            IceMsg::Tick => CoreInput::Tick,
            IceMsg::Net(NetOp::Deliver { from, payload }) => CoreInput::Deliver { from, payload },
            IceMsg::PressButton | IceMsg::Net(NetOp::Send { .. }) => return,
        };
        let is_tick = matches!(input, CoreInput::Tick);
        let now = ctx.now();
        self.out.begin(ctx.trace_enabled());
        // Split the borrow: the core takes the actor's RNG stream, the
        // outputs buffer collects what the kernel should do.
        let Supervisor { core, out, .. } = self;
        core.handle(now, input, ctx.rng(), out);
        for (category, message) in self.out.traces.drain(..) {
            ctx.trace(category, message);
        }
        let (netctl, from) = (self.netctl, self.core.endpoint());
        for (to, payload) in self.out.sends.drain(..) {
            ctx.send(netctl, IceMsg::Net(NetOp::Send { from, to, payload }));
        }
        // The driver owns the tick cadence: every tick re-arms, even
        // through crash windows and standby idling, so transient faults
        // recover and promotions can fire.
        if is_tick {
            ctx.schedule_self(self.core.step(), IceMsg::Tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppCtx;
    use crate::msg::{IceCommand, NetPayload};
    use crate::netctl::NetworkController;
    use mcps_device::profile::{DeviceClass, DeviceRequirementSet, Requirement};
    use mcps_net::fabric::Fabric;
    use mcps_net::qos::LinkQos;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::kernel::Simulation;
    use mcps_sim::time::SimTime;
    use sans_io::MAX_RETRIES;

    /// A minimal app that records its callbacks.
    #[derive(Debug, Default)]
    struct Probe {
        associated_calls: u32,
        data_points: Vec<(VitalKind, f64)>,
        ticks: u32,
    }

    impl ClinicalApp for Probe {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new(
                "monitor",
                vec![Requirement::Class(DeviceClass::Monitor)],
            )]
        }
        fn on_associated(&mut self, _ctx: &mut AppCtx<'_>) {
            self.associated_calls += 1;
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _at: SimTime) {
            self.data_points.push((kind, value));
        }
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {
            self.ticks += 1;
        }
    }

    /// An app driving a pump slot: sends one scripted command as soon
    /// as the pump associates.
    #[derive(Debug)]
    struct OneShot {
        command: IceCommand,
        sent: bool,
    }

    impl OneShot {
        fn new(command: IceCommand) -> Self {
            OneShot { command, sent: false }
        }
    }

    impl ClinicalApp for OneShot {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new("pump", vec![Requirement::Class(DeviceClass::Infusion)])]
        }
        fn on_associated(&mut self, ctx: &mut AppCtx<'_>) {
            if !self.sent {
                self.sent = true;
                ctx.command("pump", self.command);
            }
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, _kind: VitalKind, _value: f64, _at: SimTime) {}
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
    }

    fn deliver(sim: &mut Simulation<IceMsg>, sup: ActorId, from: EndpointId, payload: NetPayload) {
        sim.schedule(sim.now(), sup, IceMsg::Net(NetOp::Deliver { from, payload }));
        sim.run();
    }

    fn setup() -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        setup_with(Probe::default())
    }

    fn setup_with(app: impl ClinicalApp) -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let sup_ep = fabric.add_endpoint("sup");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim
            .add_actor("supervisor", Supervisor::new(app, nc, sup_ep, SimDuration::from_secs(2)));
        (sim, sup, dev, sup_ep)
    }

    fn monitor_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::monitor::pulse_oximeter("S-1").profile().clone()
    }

    fn pump_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::pump::PcaPump::profile("P-1", false)
    }

    #[test]
    fn data_from_unassociated_devices_is_ignored() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 97.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 0);
        assert_eq!(s.data_ignored(), 1);
        assert!(s.app_as::<Probe>().unwrap().data_points.is_empty());
    }

    #[test]
    fn association_gates_data_and_fires_callback() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert!(s.manager().fully_associated());
            assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
            assert_eq!(s.associations_completed(), 1);
        }
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 96.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 1);
        assert_eq!(s.app_as::<Probe>().unwrap().data_points, vec![(VitalKind::Spo2, 96.0)]);
    }

    #[test]
    fn duplicate_announce_does_not_refire_on_associated() {
        let (mut sim, sup, dev, _) = setup();
        for _ in 0..3 {
            deliver(
                &mut sim,
                sup,
                dev,
                NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            );
        }
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
        assert_eq!(s.associations_completed(), 1);
    }

    #[test]
    fn silent_monitor_is_disassociated_on_tick() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Supervisor ticks for 40 s with no data: liveness vacates.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.manager().fully_associated(), "silent device must vacate its slot");
        assert!(s.app_as::<Probe>().unwrap().ticks > 30);
        // Losing a streaming device is a degraded-mode entry.
        assert!(s.is_degraded());
        assert_eq!(s.alarm(), Some("sensor-silent"));
    }

    /// Regression: `check_device_liveness` used to treat a *missing*
    /// liveness clock as infinite silence, so a freshly associated
    /// device whose clock had not been seeded was vacated on the very
    /// first liveness tick. A missing entry must instead start the
    /// clock at the current instant.
    #[test]
    fn missing_liveness_clock_is_seeded_not_vacated() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Simulate the pre-fix state: associated, but no liveness clock
        // (the announce-time seeding is what normally prevents this).
        sim.actor_as_mut::<Supervisor>(sup).unwrap().core.last_data.remove(&dev);
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(
            s.manager().fully_associated(),
            "a device with no data *yet* must not be vacated instantly"
        );
        assert!(!s.is_degraded());
        // The clock the tick seeded now ages normally: 40 s of real
        // silence later the device is gone.
        let mut sim2 = sim;
        sim2.run_until(sim2.now() + SimDuration::from_secs(40));
        assert!(!sim2.actor_as::<Supervisor>(sup).unwrap().manager().fully_associated());
    }

    /// Regression: inflight entries for commands whose acks never come
    /// used to leak forever — and precisely the worst RTTs were the
    /// ones missing from the deadline statistics. They must expire at
    /// the RTT deadline and count as unanswered.
    #[test]
    fn lost_ack_expires_inflight_and_counts_unanswered() {
        // GrantTicket is non-retryable: expiry happens one deadline
        // after the send, with no retransmission.
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::GrantTicket {
            validity: SimDuration::from_secs(15),
        }));
        // The pump endpoint is bound to no actor, so the command (and
        // any ack) vanishes into the void.
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(10));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.commands_sent(), 1);
        assert_eq!(s.commands_retried(), 0, "ticket grants are never retried");
        assert!(
            s.core.inflight.values().all(|e| matches!(e.command, IceCommand::Heartbeat)),
            "expired command entries must be removed (only live heartbeats may remain)"
        );
        assert_eq!(s.rtt().unanswered(), 1, "dead heartbeats must not pollute command RTTs");
        let (hb_sent, _, hb_unanswered) = s.heartbeat_counts();
        assert!(hb_sent >= 2, "the pump is stop-capable, so it is heartbeated");
        assert!(hb_unanswered >= 1, "unanswered heartbeats land in their own counter");
        assert!(!s.is_degraded(), "a lost grant is not a lost pump");
    }

    /// A stop command whose acks are all lost is retried with backoff
    /// and then escalated by the ack watchdog to degraded mode.
    #[test]
    fn lost_stop_ack_trips_watchdog_into_degraded() {
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::StopPump));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(60));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        // The app's stop is retried MAX_RETRIES times, then the
        // watchdog fires; the degrade path keeps probing with fresh
        // stops (each with its own retry cycle) as long as none is
        // confirmed. The pump never answers, so degraded mode holds.
        assert!(s.commands_retried() >= 2 * u64::from(MAX_RETRIES));
        let probes = s
            .core
            .inflight
            .values()
            .filter(|e| !matches!(e.command, IceCommand::Heartbeat))
            .count();
        assert!(probes <= 1, "at most the current probe is outstanding");
        assert!(s.watchdog_escalations() >= 2);
        assert!(s.is_degraded(), "an unconfirmed stop must hold degraded mode");
        assert_eq!(s.alarm(), Some("stop-ack-lost"));
        assert!(s.rtt().unanswered() >= 2, "each dead stop counts once, not per retry");
        assert_eq!(
            s.rtt().unanswered() * u64::from(MAX_RETRIES),
            s.commands_retried(),
            "every dead stop ran a full retry cycle"
        );
    }

    /// Degraded mode is exited hysteretically: only after the system
    /// has been fully associated with fresh data for the whole settling
    /// window, and transient recoveries reset the clock.
    #[test]
    fn degraded_mode_exits_hysteretically_on_recovery() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // 40 s of silence: vacate + degrade.
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        assert!(sim.actor_as::<Supervisor>(sup).unwrap().is_degraded());
        // Device comes back: re-announce, then fresh data every second.
        let back = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            back,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            }),
        );
        for i in 1..=30u64 {
            let at = back + SimDuration::from_secs(i);
            sim.schedule(
                at,
                sup,
                IceMsg::Net(NetOp::Deliver {
                    from: dev,
                    payload: NetPayload::Data {
                        kind: VitalKind::Spo2,
                        value: 97.0,
                        sampled_at: at,
                    },
                }),
            );
        }
        // Inside the hysteresis window the mode must hold.
        sim.run_until(back + SimDuration::from_secs(10));
        assert!(
            sim.actor_as::<Supervisor>(sup).unwrap().is_degraded(),
            "must stay degraded inside the hysteresis window"
        );
        sim.run_until(back + SimDuration::from_secs(30));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.is_degraded(), "healthy for > hysteresis window: degraded mode ends");
        assert!(s.alarm().is_none(), "alarm clears on exit");
        let log = s.degraded_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].1.is_some(), "the degraded window is closed");
        assert_eq!(s.associations_completed(), 2, "recovery counted as a hot-swap");
    }

    fn setup_standby(
        app: impl ClinicalApp,
    ) -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let standby_ep = fabric.add_endpoint("standby");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim.add_actor(
            "standby",
            Supervisor::new(app, nc, standby_ep, SimDuration::from_secs(2))
                .with_role(SupervisorRole::Standby)
                .with_redundancy(""),
        );
        (sim, sup, dev, standby_ep)
    }

    /// A standby that stops hearing checkpoints promotes itself with an
    /// epoch that fences the old primary, and adopts the replicated
    /// degraded latch so failover cannot forget an active alarm.
    #[test]
    fn standby_promotes_on_checkpoint_silence_and_inherits_degraded() {
        let (mut sim, sup, primary_ep, _) = setup_standby(Probe::default());
        deliver(
            &mut sim,
            sup,
            primary_ep,
            NetPayload::Checkpoint {
                epoch: 1,
                next_command_id: 7,
                degraded: true,
                stop_unconfirmed: false,
                inflight_ids: vec![5, 6],
                last_data: Vec::new(),
            },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert_eq!(s.role(), SupervisorRole::Standby);
            assert_eq!(s.replicated_inflight_ids(), &[5, 6]);
            assert_eq!(s.failovers(), 0);
        }
        // The primary now falls silent: after MISSED_CHECKPOINT_LIMIT
        // periods without a checkpoint the standby takes over.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(20));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Primary);
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.epoch(), 2, "promotion epoch exceeds everything the primary stamped");
        assert!(s.is_degraded(), "a replicated degraded latch survives failover");
        assert_eq!(s.alarm(), Some("inherited-degraded"));
        assert!(s.core.next_command_id >= 7, "the id high-water mark is adopted");
    }

    /// A standby that never saw a single checkpoint (primary died
    /// before replicating) still promotes past the configured primary
    /// epoch: the fence holds even for an instant primary death.
    #[test]
    fn standby_promotes_past_epoch_one_without_any_checkpoint() {
        let (mut sim, sup, _, _) = setup_standby(Probe::default());
        sim.schedule(SimTime::ZERO, sup, IceMsg::Tick);
        sim.run_until(SimTime::from_secs(20));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Primary);
        assert!(s.epoch() >= 2, "a promoted standby must outrank the epoch-1 primary");
    }

    /// A primary that sees a higher-epoch checkpoint is the stale half
    /// of a healed partition: it steps down, abandoning its inflight
    /// commands and closing any open degraded window (a standby cannot
    /// run the degraded exit, so leaving it open would leak forever).
    #[test]
    fn primary_steps_down_and_closes_degraded_window_on_higher_epoch() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // 40 s of silence: vacate + degrade, window left open.
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        assert!(sim.actor_as::<Supervisor>(sup).unwrap().is_degraded());
        let at = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            at,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Checkpoint {
                    epoch: 9,
                    next_command_id: 0,
                    degraded: false,
                    stop_unconfirmed: false,
                    inflight_ids: Vec::new(),
                    last_data: Vec::new(),
                },
            }),
        );
        sim.run_until(at + SimDuration::from_secs(2));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Standby);
        assert_eq!(s.stepdowns(), 1);
        assert!(!s.is_degraded(), "the higher-epoch primary owns the degraded state now");
        assert!(s.alarm().is_none());
        assert!(s.degraded_log().last().unwrap().1.is_some(), "open window closed at stepdown");
        assert!(s.core.inflight.is_empty(), "inflight commands are abandoned at stepdown");
    }

    /// Standbys own no part of the command channel: app commands are
    /// suppressed (counted separately from degraded suppression) and no
    /// heartbeats are sent until promotion.
    #[test]
    fn standby_suppresses_app_commands_and_sends_nothing() {
        let (mut sim, sup, dev, _) = setup_standby(OneShot::new(IceCommand::StopPump));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // Short of the promotion trigger, so it stays standby throughout.
        sim.run_until(sim.now() + SimDuration::from_secs(8));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Standby);
        assert_eq!(s.commands_sent(), 0, "standbys put nothing on the wire");
        assert!(s.standby_suppressed() >= 1, "the app's stop was suppressed, not sent");
        assert_eq!(s.heartbeat_counts().0, 0, "standbys do not heartbeat");
    }

    /// A heartbeat-ack gap longer than the device's local fail-safe
    /// deadline means its watchdog latched while the supervisor was
    /// away: the supervisor owes it a resume once contact resumes (and
    /// the system is not otherwise degraded).
    #[test]
    fn heartbeat_gap_triggers_failsafe_release_resume() {
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::GrantTicket {
            validity: SimDuration::from_secs(15),
        }));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // First heartbeat goes out at the first tick with id 1 (the
        // app's grant took id 0); ack it promptly.
        let t1 = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            t1,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Ack { id: 1, command: IceCommand::Heartbeat, applied_at: t1 },
            }),
        );
        // Then 20 s of ack silence — past the fail-safe deadline — and
        // a late heartbeat ack (its id long expired; the gap logic does
        // not care).
        let t2 = t1 + SimDuration::from_secs(20);
        sim.schedule(
            t2,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Ack {
                    id: 999,
                    command: IceCommand::Heartbeat,
                    applied_at: t2,
                },
            }),
        );
        sim.run_until(t2 + SimDuration::from_secs(1));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        let (hb_sent, hb_acked, _) = s.heartbeat_counts();
        assert!(hb_sent >= 4);
        assert_eq!(hb_acked, 1, "only the inflight-matched ack counts toward RTTs");
        assert_eq!(s.heartbeat_rtts_ms().len(), 1);
        assert!(s.heartbeat_rtts_ms()[0] >= 999.0, "RTT measured from the heartbeat send");
        assert_eq!(s.commands_sent(), 2, "the grant plus exactly one fail-safe release ResumePump");
        assert!(
            s.core.inflight.values().any(|e| matches!(e.command, IceCommand::ResumePump)),
            "the release resume is on the wire"
        );
    }
}
