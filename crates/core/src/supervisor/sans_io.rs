//! The sans-io supervisor core.
//!
//! [`SupervisorCore`] is the supervisor's entire decision machinery —
//! device association, app hosting, command retry/watchdog, degraded
//! mode, primary/standby replication with epoch fencing — as a pure
//! state machine: *timestamped inputs in, buffered outputs out*. It
//! performs no I/O and never looks at a clock; every transition is
//! `handle(now, input, rng, &mut outputs)`.
//!
//! Two drivers host the same core today:
//!
//! * the sim [`Supervisor`](super::Supervisor) actor adapter, which
//!   maps kernel events to [`CoreInput`]s and replays the outputs onto
//!   the deterministic scheduler (byte-identical with the pre-split
//!   actor), and
//! * the live `mcps-serve` host, which feeds it framed transport
//!   messages and wall-clock-derived ticks.
//!
//! Keeping the core free of I/O is what makes the live service and the
//! simulation provably the *same* supervisor, in the spirit of the
//! paper's "verify the model you execute" argument.

use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_device::profile::CommandKind;
use mcps_net::fabric::{EndpointId, Topic};
use mcps_net::monitor::DeadlineTracker;
use mcps_safety::timing;
use mcps_sim::rng::SimRng;
use mcps_sim::time::{SimDuration, SimTime};

use crate::app::{AppCtx, ClinicalApp};
use crate::manager::{AssociationOutcome, DeviceManager};
use crate::msg::{IceCommand, NetAddress, NetPayload};
use crate::netctl::topics;
use crate::vecmap::VecMap;

/// A monitoring device whose data has not arrived for this long is
/// considered gone: its slot is vacated so a replacement can associate
/// (bedside hot-swap).
const DISASSOCIATION_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Base delay before the first retry of an unacknowledged retryable
/// command; doubles per attempt (2 s, 4 s, 8 s).
const RETRY_BASE: SimDuration = SimDuration::from_secs(2);

/// Retransmissions after the original send before the watchdog gives up.
pub(crate) const MAX_RETRIES: u32 = 3;

/// How long the system must look healthy (fully associated, fresh data
/// on every stream) before degraded mode is exited. Shared with the
/// verified failover model via [`timing::DEGRADED_EXIT_HYSTERESIS_SECS`].
const DEGRADED_EXIT_HYSTERESIS: SimDuration =
    SimDuration::from_secs(timing::DEGRADED_EXIT_HYSTERESIS_SECS as u64);

/// Data younger than this counts as "fresh" for the degraded-mode exit
/// check (streams publish at ~1 Hz; this tolerates jitter and loss).
const EXIT_FRESHNESS: SimDuration = SimDuration::from_secs(5);

/// How often an active supervisor heartbeats every stop-capable device.
/// Shared with the verified failover model via
/// [`timing::HEARTBEAT_SECS`]; two missed beats still fit inside the
/// pump's 15 s local fail-safe deadline, so a healthy but lossy channel
/// does not trip the latch.
pub const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_secs(timing::HEARTBEAT_SECS as u64);

/// How often a redundant primary replicates its state to the standby.
/// Shared with the verified failover model via
/// [`timing::CHECKPOINT_SECS`].
const CHECKPOINT_PERIOD: SimDuration = SimDuration::from_secs(timing::CHECKPOINT_SECS as u64);

/// Consecutive missed checkpoints before a standby declares the primary
/// dead and promotes itself (5 × 2 s = a 10 s failover trigger). Note
/// that a *worst-case* clean failover still overshoots the pump's 15 s
/// watchdog by one second — see [`timing::WORST_CLEAN_FAILOVER_SECS`]
/// — so the pump may transiently latch basal-only mid-failover; the
/// promoted supervisor's first acked heartbeat releases it. The E13
/// model checks both the transient and the bounded release.
const MISSED_CHECKPOINT_LIMIT: u64 = timing::MISSED_CHECKPOINT_LIMIT as u64;

/// A heartbeat-ack gap at least this long means the device's local
/// fail-safe watchdog (same deadline) has latched in the meantime; the
/// supervisor owes it an explicit `ResumePump` once supervision is
/// re-established and the system is not otherwise degraded. Mirrors
/// `LOCAL_FAILSAFE_DEADLINE` in the actor layer; both come from
/// [`timing::FAILSAFE_RELEASE_GAP_SECS`].
const FAILSAFE_RELEASE_GAP: SimDuration =
    SimDuration::from_secs(timing::FAILSAFE_RELEASE_GAP_SECS as u64);

/// A snapshot of the supervisor state a successor needs to take over
/// safely — exactly the fields the PR-5 replication payload carries
/// ([`NetPayload::Checkpoint`]). Two consumers exist: the in-sim
/// standby (via the replication topic) and the serve-mode durable
/// journal, which persists these records across process death so a
/// restarted `mcps-serve` can [`SupervisorCore::resume_from`] one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CheckpointState {
    /// The fencing epoch the snapshot was taken under.
    pub epoch: u64,
    /// Next command id the supervisor would assign (high-water mark;
    /// a successor must never reuse an id a device dedup window may
    /// still remember).
    pub next_command_id: u64,
    /// Whether the supervisor was in degraded mode.
    pub degraded: bool,
    /// Whether a stop command had died unconfirmed (pump state
    /// unknown — a successor must keep probing).
    pub stop_unconfirmed: bool,
    /// Command ids still awaiting their acks.
    pub inflight_ids: Vec<u64>,
    /// Last data arrival per associated endpoint (freshness view).
    /// Timeline-relative: meaningful to a standby sharing the clock,
    /// meaningless to a restarted process (which discards it).
    pub last_data: Vec<(EndpointId, SimTime)>,
}

/// Role of a supervisor in a redundant pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorRole {
    /// Owns the command channel: drives the app's commands, heartbeats
    /// devices, and (when redundancy is enabled) replicates state.
    Primary,
    /// Consumes the same vitals and the primary's checkpoints to stay
    /// warm, sends nothing, and promotes itself on checkpoint silence.
    Standby,
}

/// An outstanding command awaiting its ack.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightCommand {
    pub(crate) command: IceCommand,
    pub(crate) endpoint: EndpointId,
    /// Original transmission instant (RTTs are measured from here, so a
    /// retried command's latency includes the retransmission delay).
    pub(crate) first_sent_at: SimTime,
    /// Most recent transmission instant (retry timers run from here).
    pub(crate) sent_at: SimTime,
    /// Transmissions so far (1 = only the original send).
    pub(crate) attempts: u32,
    /// Whether this command is retransmitted when unacknowledged.
    pub(crate) retryable: bool,
}

/// One timestamped event fed into the core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreInput {
    /// The 1 Hz control tick (liveness, retries, app tick, heartbeats,
    /// checkpoints). The *driver* owns the clock and the re-arming.
    Tick,
    /// A network message addressed to this supervisor.
    Deliver {
        /// Originating endpoint.
        from: EndpointId,
        /// The payload.
        payload: NetPayload,
    },
}

/// The core's output buffer: everything one `handle` call wants the
/// driver to do, in emission order.
///
/// Drivers call [`CoreOutputs::begin`] before each `handle`, then drain
/// `sends` onto their transport/scheduler and `traces` into their log.
/// The buffers are reused across calls, so steady-state handling does
/// not allocate.
#[derive(Debug, Default)]
pub struct CoreOutputs {
    /// Outgoing network messages `(to, payload)`, in send order. The
    /// driver stamps the supervisor's own endpoint as the source.
    pub sends: Vec<(NetAddress, NetPayload)>,
    /// Trace records `(category, message)`, in emission order.
    pub traces: Vec<(&'static str, String)>,
    trace_enabled: bool,
    traces_built: u64,
    traces_suppressed: u64,
}

impl CoreOutputs {
    /// An empty buffer with tracing enabled.
    pub fn new() -> Self {
        CoreOutputs { trace_enabled: true, ..Default::default() }
    }

    /// Clears the per-call buffers and sets whether trace messages are
    /// built at all this call. Cumulative counters persist.
    pub fn begin(&mut self, trace_enabled: bool) {
        self.sends.clear();
        self.traces.clear();
        self.trace_enabled = trace_enabled;
    }

    /// Whether trace messages are currently being built.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Trace messages built (and pushed) over this buffer's lifetime.
    pub fn traces_built(&self) -> u64 {
        self.traces_built
    }

    /// Trace messages skipped — closure never run, nothing allocated —
    /// because tracing was disabled. A disabled-trace run must keep
    /// [`Self::traces_built`] at zero while this climbs.
    pub fn traces_suppressed(&self) -> u64 {
        self.traces_suppressed
    }

    fn send(&mut self, to: NetAddress, payload: NetPayload) {
        self.sends.push((to, payload));
    }

    /// Lazily records a trace: the message closure runs only when
    /// tracing is enabled.
    fn trace_with(&mut self, category: &'static str, message: impl FnOnce() -> String) {
        if self.trace_enabled {
            self.traces_built += 1;
            self.traces.push((category, message()));
        } else {
            self.traces_suppressed += 1;
        }
    }

    /// Records an already built trace message (app notes).
    fn trace_note(&mut self, category: &'static str, message: String) {
        if self.trace_enabled {
            self.traces_built += 1;
            self.traces.push((category, message));
        } else {
            self.traces_suppressed += 1;
        }
    }
}

/// The sans-io supervisor state machine. See the module docs.
pub struct SupervisorCore {
    pub(crate) app: Box<dyn ClinicalApp>,
    pub(crate) manager: DeviceManager,
    pub(crate) endpoint: EndpointId,
    pub(crate) step: SimDuration,
    /// Whether the app is currently fully associated (drives
    /// `on_associated` edges and hot-swap bookkeeping).
    pub(crate) assoc_active: bool,
    /// Completed associations (1 initially; +1 per successful hot-swap).
    pub(crate) associations_completed: u32,
    /// Last data arrival per associated endpoint. Sorted-vec map: a
    /// bed has a handful of devices, and 10k resident cores can't
    /// afford a `BTreeMap` node allocation each.
    pub(crate) last_data: VecMap<EndpointId, SimTime>,
    pub(crate) data_received: u64,
    /// Data points dropped because the sender was not associated.
    pub(crate) data_ignored: u64,
    pub(crate) commands_sent: u64,
    /// Retransmissions of unacknowledged retryable commands.
    pub(crate) commands_retried: u64,
    /// App commands suppressed because the supervisor was degraded.
    pub(crate) commands_suppressed: u64,
    /// Id for the next outgoing command (unique per supervisor).
    pub(crate) next_command_id: u64,
    /// Outstanding commands for RTT measurement and retry, keyed by
    /// command id so concurrent commands of the same kind pair with
    /// their own acks. Entries are bounded: every command either acks
    /// or expires at its deadline (after retries, if retryable).
    /// Sorted-vec map: ids are issued monotonically, so inserts are
    /// pushes and iteration order matches the former `BTreeMap`.
    pub(crate) inflight: VecMap<u64, InflightCommand>,
    pub(crate) rtt: DeadlineTracker,
    pub(crate) rtt_deadline: SimDuration,
    pub(crate) associated_at: Option<SimTime>,
    /// Degraded-mode state: set while the supervisor distrusts the
    /// system enough to hold the pump stopped.
    pub(crate) degraded: bool,
    /// Latched alarm reason; survives until the hysteretic exit.
    pub(crate) alarm: Option<&'static str>,
    /// Closed and open degraded windows, oldest first.
    pub(crate) degraded_log: Vec<(SimTime, Option<SimTime>)>,
    /// Instant since which the system has looked continuously healthy.
    pub(crate) healthy_since: Option<SimTime>,
    /// Whether the degrade path itself halted stop-capable devices (and
    /// must lift that halt on exit).
    pub(crate) degrade_stop_sent: bool,
    /// Set when a stop command dies unconfirmed: the pump's state is
    /// unknown, so degraded mode holds (and keeps probing with fresh
    /// stops) until some stop is acknowledged.
    pub(crate) stop_unconfirmed: bool,
    /// Times the ack watchdog escalated a lost stop to degraded mode.
    pub(crate) watchdog_escalations: u32,
    /// Role in a redundant pair; standbys send nothing until promoted.
    pub(crate) role: SupervisorRole,
    /// Fencing epoch stamped into every outgoing command. Primaries
    /// start at 1, standbys at 0; each promotion takes max-seen + 1.
    pub(crate) epoch: u64,
    /// Replication topic when redundancy is enabled (`None` = solo
    /// supervisor, no checkpoints published or expected).
    pub(crate) replication: Option<Topic>,
    /// The supervisor's own fault schedule (`SupervisorCrash` windows).
    pub(crate) fault: FaultPlan,
    pub(crate) next_heartbeat: Option<SimTime>,
    pub(crate) next_checkpoint: Option<SimTime>,
    /// Standby: last checkpoint arrival, seeded at the first tick so a
    /// standby powered on before its primary does not promote at once.
    pub(crate) last_ckpt: Option<SimTime>,
    /// Highest epoch observed in checkpoints (standby promotion fences
    /// the old primary by exceeding this).
    pub(crate) max_epoch_seen: u64,
    /// Degraded latch replicated from the most recent checkpoint,
    /// adopted at promotion.
    pub(crate) ckpt_degraded: bool,
    pub(crate) ckpt_stop_unconfirmed: bool,
    /// Inflight command ids replicated from the most recent checkpoint.
    pub(crate) ckpt_inflight_ids: Vec<u64>,
    /// Standby → primary promotions performed by this supervisor.
    pub(crate) failovers: u32,
    /// Primary → standby demotions (a higher-epoch peer exists).
    pub(crate) stepdowns: u32,
    /// Commands the app asked for while this supervisor was standby.
    pub(crate) standby_suppressed: u64,
    /// Whether this core was restored from a durable checkpoint (a
    /// crash-restarted process rather than a warm standby). Restored
    /// supervisors owe latched devices a `ResumePump` on their first
    /// heartbeat ack, exactly like a freshly promoted standby: the
    /// predecessor's silence may well have tripped the device-local
    /// fail-safe watchdogs.
    pub(crate) restored: bool,
    pub(crate) hb_sent: u64,
    pub(crate) hb_acked: u64,
    pub(crate) hb_unanswered: u64,
    /// Heartbeat round-trips, milliseconds, in completion order.
    pub(crate) hb_rtt_ms: Vec<f64>,
    /// Last heartbeat-ack instant per endpoint, for fail-safe release.
    pub(crate) hb_last_acked: VecMap<EndpointId, SimTime>,
}

impl std::fmt::Debug for SupervisorCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorCore")
            .field("data_received", &self.data_received)
            .field("commands_sent", &self.commands_sent)
            .field("associated_at", &self.associated_at)
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl SupervisorCore {
    /// Creates a core hosting `app`, publishing from `endpoint`, with a
    /// command-RTT deadline used for the E4 statistics and as the
    /// ack-expiry horizon.
    pub fn new(app: impl ClinicalApp, endpoint: EndpointId, rtt_deadline: SimDuration) -> Self {
        let manager = DeviceManager::new(app.requirements());
        SupervisorCore {
            app: Box::new(app),
            manager,
            endpoint,
            step: SimDuration::from_secs(1),
            assoc_active: false,
            associations_completed: 0,
            last_data: VecMap::new(),
            data_received: 0,
            data_ignored: 0,
            commands_sent: 0,
            commands_retried: 0,
            commands_suppressed: 0,
            next_command_id: 0,
            inflight: VecMap::new(),
            rtt: DeadlineTracker::new(rtt_deadline),
            rtt_deadline,
            associated_at: None,
            degraded: false,
            alarm: None,
            degraded_log: Vec::new(),
            healthy_since: None,
            degrade_stop_sent: false,
            stop_unconfirmed: false,
            watchdog_escalations: 0,
            role: SupervisorRole::Primary,
            epoch: 1,
            replication: None,
            fault: FaultPlan::none(),
            next_heartbeat: None,
            next_checkpoint: None,
            last_ckpt: None,
            max_epoch_seen: 0,
            ckpt_degraded: false,
            ckpt_stop_unconfirmed: false,
            ckpt_inflight_ids: Vec::new(),
            failovers: 0,
            stepdowns: 0,
            standby_suppressed: 0,
            restored: false,
            hb_sent: 0,
            hb_acked: 0,
            hb_unanswered: 0,
            hb_rtt_ms: Vec::new(),
            hb_last_acked: VecMap::new(),
        }
    }

    /// Sets the control-tick period the driver should re-arm at.
    /// Bedside closed loops run the default 1 Hz; ward-floor spot-check
    /// supervision (campus monitor-only beds) can afford a slower tick,
    /// which at 10k beds is the difference between the supervisor ticks
    /// dominating the event budget and disappearing into it.
    pub fn with_step(mut self, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "tick step must be positive");
        self.step = step;
        self
    }

    /// Sets the role in a redundant pair. A standby starts at epoch 0
    /// but already knows the configured primary runs epoch 1, so its
    /// eventual promotion fences the primary even if it died before
    /// replicating a single checkpoint.
    pub fn with_role(mut self, role: SupervisorRole) -> Self {
        self.role = role;
        if role == SupervisorRole::Standby {
            self.epoch = 0;
            self.max_epoch_seen = 1;
        }
        self
    }

    /// Enables primary/standby redundancy under `scope`: primaries
    /// publish periodic state checkpoints on the scope's replication
    /// topic; standbys treat checkpoint silence as primary death.
    pub fn with_redundancy(mut self, scope: &str) -> Self {
        self.replication = Some(topics::replication_scoped(scope));
        self
    }

    /// Rebuilds fencing-relevant state from a durably journaled
    /// checkpoint — the crash-restart constructor behind
    /// `mcps-serve --journal`.
    ///
    /// The restored core takes epoch `ckpt.epoch + 1`, strictly above
    /// everything the dead predecessor ever stamped, so any of its
    /// commands still in flight (delayed, duplicated, or replayed by a
    /// dirty network) are fenced at every device — the same guarantee
    /// a standby promotion gives. The command-id high-water mark is
    /// inherited so no device dedup window ever sees a reused
    /// `(epoch, id)`, and the degraded / stop-unconfirmed latches are
    /// adopted so a restart cannot silently forget an active alarm or
    /// an unconfirmed pump state. Timeline-relative state
    /// (`last_data`) is deliberately discarded: the restarted process
    /// starts a fresh clock and devices re-announce and re-stream.
    pub fn resume_from(mut self, ckpt: &CheckpointState) -> Self {
        self.role = SupervisorRole::Primary;
        self.epoch = ckpt.epoch + 1;
        self.max_epoch_seen = self.epoch;
        self.next_command_id = self.next_command_id.max(ckpt.next_command_id);
        self.restored = true;
        self.stop_unconfirmed = ckpt.stop_unconfirmed;
        self.ckpt_inflight_ids = ckpt.inflight_ids.clone();
        if ckpt.degraded || ckpt.stop_unconfirmed {
            self.degraded = true;
            self.alarm = Some(if ckpt.stop_unconfirmed {
                "restored-stop-unconfirmed"
            } else {
                "restored-degraded"
            });
            self.degraded_log.push((SimTime::ZERO, None));
        }
        self
    }

    /// Attaches the supervisor's own fault schedule. While a
    /// [`FaultKind::SupervisorCrash`] (or `Crash`) window is active the
    /// supervisor processes nothing — no commands, no heartbeats, no
    /// checkpoints — but recovers when the window closes.
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// The device manager (association state).
    pub fn manager(&self) -> &DeviceManager {
        &self.manager
    }

    /// The endpoint this supervisor sends from.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The control-tick period the core is designed around (1 Hz).
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Data points received from associated devices.
    pub fn data_received(&self) -> u64 {
        self.data_received
    }

    /// Data points ignored because the sender was not associated.
    pub fn data_ignored(&self) -> u64 {
        self.data_ignored
    }

    /// Commands sent (excluding retransmissions).
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Retransmissions of unacknowledged retryable commands.
    pub fn commands_retried(&self) -> u64 {
        self.commands_retried
    }

    /// App commands suppressed while degraded.
    pub fn commands_suppressed(&self) -> u64 {
        self.commands_suppressed
    }

    /// Command round-trip statistics.
    pub fn rtt(&self) -> &DeadlineTracker {
        &self.rtt
    }

    /// When association (first) completed, if it did.
    pub fn associated_at(&self) -> Option<SimTime> {
        self.associated_at
    }

    /// Completed associations (> 1 means at least one hot-swap).
    pub fn associations_completed(&self) -> u32 {
        self.associations_completed
    }

    /// Whether the supervisor is currently in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The latched alarm reason, if an alarm is active.
    pub fn alarm(&self) -> Option<&'static str> {
        self.alarm
    }

    /// Degraded windows `(entered, exited)`, oldest first; an open
    /// window has `None` as its exit.
    pub fn degraded_log(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.degraded_log
    }

    /// Times the ack watchdog escalated a lost stop command.
    pub fn watchdog_escalations(&self) -> u32 {
        self.watchdog_escalations
    }

    /// Current role (a standby flips to primary at promotion).
    pub fn role(&self) -> SupervisorRole {
        self.role
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Standby → primary promotions performed.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Primary → standby demotions (split-brain resolution).
    pub fn stepdowns(&self) -> u32 {
        self.stepdowns
    }

    /// App commands dropped because this supervisor was standby.
    pub fn standby_suppressed(&self) -> u64 {
        self.standby_suppressed
    }

    /// Heartbeats sent / acknowledged / given up on.
    pub fn heartbeat_counts(&self) -> (u64, u64, u64) {
        (self.hb_sent, self.hb_acked, self.hb_unanswered)
    }

    /// Heartbeat round-trip times, milliseconds, in completion order.
    pub fn heartbeat_rtts_ms(&self) -> &[f64] {
        &self.hb_rtt_ms
    }

    /// Command ids the peer reported inflight in its last checkpoint.
    pub fn replicated_inflight_ids(&self) -> &[u64] {
        &self.ckpt_inflight_ids
    }

    /// Whether this core was rebuilt from a durable checkpoint
    /// ([`Self::resume_from`]).
    pub fn restored(&self) -> bool {
        self.restored
    }

    /// Snapshots the fencing-relevant state — the same payload the
    /// replication path sends to a standby, exposed so the serve host
    /// can journal it durably.
    pub fn checkpoint_state(&self) -> CheckpointState {
        CheckpointState {
            epoch: self.epoch,
            next_command_id: self.next_command_id,
            degraded: self.degraded,
            stop_unconfirmed: self.stop_unconfirmed,
            inflight_ids: self.inflight.keys().copied().collect(),
            last_data: self.last_data.iter().map(|(&ep, &t)| (ep, t)).collect(),
        }
    }

    /// Typed access to the hosted app's concrete state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Exports the core's counters into `bus` under `prefix` — the
    /// live host publishes these the same way scenarios harvest the
    /// sim supervisor.
    pub fn export_telemetry(&self, bus: &mut mcps_sim::metrics::Telemetry, prefix: &str) {
        bus.incr(&format!("{prefix}.data_received"), self.data_received);
        bus.incr(&format!("{prefix}.data_ignored"), self.data_ignored);
        bus.incr(&format!("{prefix}.commands_sent"), self.commands_sent);
        bus.incr(&format!("{prefix}.commands_retried"), self.commands_retried);
        bus.incr(&format!("{prefix}.commands_suppressed"), self.commands_suppressed);
        bus.incr(&format!("{prefix}.watchdog_escalations"), u64::from(self.watchdog_escalations));
        bus.incr(&format!("{prefix}.failovers"), u64::from(self.failovers));
        bus.incr(&format!("{prefix}.stepdowns"), u64::from(self.stepdowns));
        bus.incr(&format!("{prefix}.epoch"), self.epoch);
        bus.incr(&format!("{prefix}.heartbeats_sent"), self.hb_sent);
        bus.incr(&format!("{prefix}.heartbeats_acked"), self.hb_acked);
        bus.incr(&format!("{prefix}.heartbeats_unanswered"), self.hb_unanswered);
        for &ms in &self.hb_rtt_ms {
            bus.observe(&format!("{prefix}.heartbeat_rtt_ms"), ms);
        }
    }

    /// Feeds one timestamped input through the state machine,
    /// appending everything it wants done to `out`. `now` must be
    /// monotonically non-decreasing across calls; the driver owns the
    /// clock and the 1 Hz tick cadence ([`Self::step`]).
    pub fn handle(
        &mut self,
        now: SimTime,
        input: CoreInput,
        rng: &mut SimRng,
        out: &mut CoreOutputs,
    ) {
        // A crashed supervisor processes nothing — announcements, data,
        // acks, and checkpoints all fall on the floor — but it recovers
        // when the fault window closes (the driver keeps ticking).
        if matches!(self.fault.active(now), Some(FaultKind::SupervisorCrash | FaultKind::Crash)) {
            return;
        }
        match input {
            CoreInput::Tick => self.on_tick(now, rng, out),
            CoreInput::Deliver { from, payload } => self.on_deliver(now, from, payload, rng, out),
        }
    }

    fn on_tick(&mut self, now: SimTime, rng: &mut SimRng, out: &mut CoreOutputs) {
        if self.role == SupervisorRole::Standby {
            // A standby only watches the checkpoint stream. The
            // silence clock is seeded at the first tick so a
            // standby powered on before its primary does not
            // promote instantly.
            if self.replication.is_some() {
                let last = *self.last_ckpt.get_or_insert(now);
                if now.saturating_since(last) > CHECKPOINT_PERIOD * MISSED_CHECKPOINT_LIMIT {
                    self.promote(now, rng, out);
                }
            }
            return;
        }
        self.check_device_liveness(now, out);
        self.check_inflight(now, out);
        self.check_degraded_exit(now, out);
        self.drive_app(now, rng, out, |app, actx| app.on_tick(actx));
        // Supervision heartbeats to every stop-capable device keep the
        // devices' local fail-safe watchdogs fed.
        let due_hb = *self.next_heartbeat.get_or_insert(now);
        if now >= due_hb {
            for ep in self.stop_capable_endpoints() {
                self.send_heartbeat(now, out, ep);
            }
            self.next_heartbeat = Some(now + HEARTBEAT_PERIOD);
        }
        if self.replication.is_some() {
            let due_ckpt = *self.next_checkpoint.get_or_insert(now);
            if now >= due_ckpt {
                self.publish_checkpoint(out);
                self.next_checkpoint = Some(now + CHECKPOINT_PERIOD);
            }
        }
    }

    fn on_deliver(
        &mut self,
        now: SimTime,
        from: EndpointId,
        payload: NetPayload,
        rng: &mut SimRng,
        out: &mut CoreOutputs,
    ) {
        match payload {
            NetPayload::Announce { profile, endpoint } => {
                let outcome = self.manager.on_announce(endpoint, &profile);
                if matches!(outcome, AssociationOutcome::Associated { .. }) {
                    out.trace_with("assoc", || format!("{profile}: {outcome:?}"));
                    // Newly associated devices start their liveness
                    // clock now.
                    self.last_data.insert(endpoint, now);
                }
                if self.manager.fully_associated() && !self.assoc_active {
                    self.assoc_active = true;
                    self.associations_completed += 1;
                    self.associated_at.get_or_insert(now);
                    out.trace_with("assoc", || "all slots associated; app active".to_owned());
                    self.drive_app(now, rng, out, |app, actx| app.on_associated(actx));
                }
            }
            NetPayload::Data { kind, value, sampled_at } => {
                // Data is only accepted from *associated* devices:
                // an unvetted bedside device must not drive control
                // decisions, even if it publishes on the right topic.
                if self.manager.slot_of(from).is_none() {
                    self.data_ignored += 1;
                    return;
                }
                self.data_received += 1;
                self.last_data.insert(from, now);
                self.drive_app(now, rng, out, |app, actx| {
                    app.on_data(actx, kind, value, sampled_at)
                });
            }
            NetPayload::Ack { id, command, applied_at } => {
                if matches!(command, IceCommand::Heartbeat) {
                    if let Some(e) = self.inflight.remove(&id) {
                        self.hb_acked += 1;
                        let rtt = now.saturating_since(e.first_sent_at);
                        self.hb_rtt_ms.push(rtt.as_secs_f64() * 1000.0);
                    }
                    // A supervision gap at least as long as the
                    // device's local fail-safe deadline means its
                    // watchdog latched while we (or a dead
                    // predecessor) were away: release it, unless
                    // the system is degraded and the latch is
                    // exactly what we want.
                    let prev = self.hb_last_acked.insert(from, now);
                    let gap = prev.map(|t| now.saturating_since(t));
                    if gap.is_none_or(|g| g >= FAILSAFE_RELEASE_GAP) && !self.degraded {
                        // `prev == None` covers a freshly promoted
                        // standby or a crash-restarted supervisor:
                        // neither has ack history, but the dead
                        // predecessor's silence may well have
                        // latched the device.
                        if self.failovers > 0 || self.restored || gap.is_some() {
                            self.send_command(now, out, from, IceCommand::ResumePump);
                        }
                    }
                    return;
                }
                if let Some(e) = self.inflight.remove(&id) {
                    self.rtt.record(now.saturating_since(e.first_sent_at));
                    if matches!(e.command, IceCommand::StopPump) {
                        // A confirmed stop: the pump is reachable
                        // and halted, so the watchdog latch clears.
                        self.stop_unconfirmed = false;
                    }
                }
                self.drive_app(now, rng, out, |app, actx| app.on_ack(actx, command, applied_at));
            }
            NetPayload::Checkpoint {
                epoch,
                next_command_id,
                degraded,
                stop_unconfirmed,
                inflight_ids,
                last_data,
            } => {
                if epoch > self.epoch && self.role == SupervisorRole::Primary {
                    // Someone with a higher epoch is alive and
                    // publishing: we are the stale half of a healed
                    // partition. Yield.
                    self.step_down(now, out, epoch);
                    return;
                }
                if self.role != SupervisorRole::Standby || epoch < self.max_epoch_seen {
                    return;
                }
                self.max_epoch_seen = epoch;
                self.last_ckpt = Some(now);
                // The id high-water mark only ratchets up: device
                // dedup windows never see a reused (epoch, id).
                self.next_command_id = self.next_command_id.max(next_command_id);
                self.ckpt_degraded = degraded;
                self.ckpt_stop_unconfirmed = stop_unconfirmed;
                self.ckpt_inflight_ids = inflight_ids;
                for (ep, t) in last_data {
                    let e = self.last_data.get_or_insert(ep, t);
                    *e = (*e).max(t);
                }
            }
            NetPayload::Command { .. } => {
                // Supervisors do not accept commands.
                out.trace_with("app", || format!("unexpected command from {from}"));
            }
        }
    }

    fn send_command(
        &mut self,
        now: SimTime,
        out: &mut CoreOutputs,
        ep: EndpointId,
        command: IceCommand,
    ) {
        // A standby owns no part of the command channel: everything its
        // (warm) app or degrade paths would send is suppressed until
        // promotion. Devices would fence a stale epoch anyway; this
        // keeps the wire quiet and the counter honest.
        if self.role == SupervisorRole::Standby {
            self.standby_suppressed += 1;
            return;
        }
        self.commands_sent += 1;
        let id = self.next_command_id;
        self.next_command_id += 1;
        let retryable = matches!(command, IceCommand::StopPump | IceCommand::ResumePump);
        self.inflight.insert(
            id,
            InflightCommand {
                command,
                endpoint: ep,
                first_sent_at: now,
                sent_at: now,
                attempts: 1,
                retryable,
            },
        );
        out.send(NetAddress::Endpoint(ep), NetPayload::Command { id, epoch: self.epoch, command });
    }

    /// Sends one supervision heartbeat to `ep`. Heartbeats ride the
    /// normal command channel (id-paired acks, same inflight table) but
    /// are never retried — the next period is the retry — and an
    /// expired one counts against the heartbeat statistics, not the
    /// command RTT deadline figures.
    fn send_heartbeat(&mut self, now: SimTime, out: &mut CoreOutputs, ep: EndpointId) {
        self.hb_sent += 1;
        let id = self.next_command_id;
        self.next_command_id += 1;
        self.inflight.insert(
            id,
            InflightCommand {
                command: IceCommand::Heartbeat,
                endpoint: ep,
                first_sent_at: now,
                sent_at: now,
                attempts: 1,
                retryable: false,
            },
        );
        out.send(
            NetAddress::Endpoint(ep),
            NetPayload::Command { id, epoch: self.epoch, command: IceCommand::Heartbeat },
        );
    }

    /// Publishes a state checkpoint on the replication topic so the
    /// standby can take over mid-story: the command-id high-water mark,
    /// the degraded latch, outstanding command ids, and per-endpoint
    /// data freshness.
    fn publish_checkpoint(&mut self, out: &mut CoreOutputs) {
        let Some(topic) = self.replication.clone() else { return };
        let state = self.checkpoint_state();
        let payload = NetPayload::Checkpoint {
            epoch: state.epoch,
            next_command_id: state.next_command_id,
            degraded: state.degraded,
            stop_unconfirmed: state.stop_unconfirmed,
            inflight_ids: state.inflight_ids,
            last_data: state.last_data,
        };
        out.send(NetAddress::Topic(topic), payload);
    }

    /// Standby → primary promotion after checkpoint silence. The new
    /// epoch exceeds everything the old primary ever stamped, so its
    /// stale commands are fenced at every device; the replicated
    /// degraded latch is adopted so a failover cannot silently forget
    /// an active alarm.
    fn promote(&mut self, now: SimTime, rng: &mut SimRng, out: &mut CoreOutputs) {
        self.role = SupervisorRole::Primary;
        self.epoch = self.max_epoch_seen.max(self.epoch) + 1;
        self.max_epoch_seen = self.epoch;
        self.failovers += 1;
        let epoch = self.epoch;
        out.trace_with("failover", || format!("standby promoted to primary, epoch {epoch}"));
        self.stop_unconfirmed = self.ckpt_stop_unconfirmed;
        if self.ckpt_degraded {
            self.enter_degraded(now, out, "inherited-degraded");
        }
        // Re-establish supervision immediately: devices near their
        // local fail-safe deadline get a fresh heartbeat now rather
        // than at the next period boundary.
        for ep in self.stop_capable_endpoints() {
            self.send_heartbeat(now, out, ep);
        }
        self.next_heartbeat = Some(now + HEARTBEAT_PERIOD);
        self.next_checkpoint = Some(now);
        self.drive_app(now, rng, out, |app, actx| app.on_tick(actx));
    }

    /// Primary → standby demotion on proof of a higher-epoch peer (a
    /// checkpoint it could only have published after promoting). The
    /// ex-primary abandons every open concern — the new primary owns
    /// them now — including an open degraded window, which a standby
    /// could never close because it cannot send the exit's resumes.
    fn step_down(&mut self, now: SimTime, out: &mut CoreOutputs, seen_epoch: u64) {
        self.stepdowns += 1;
        self.role = SupervisorRole::Standby;
        self.max_epoch_seen = seen_epoch;
        self.last_ckpt = Some(now);
        self.inflight.clear();
        self.next_heartbeat = None;
        self.next_checkpoint = None;
        if self.degraded {
            if let Some(last) = self.degraded_log.last_mut() {
                if last.1.is_none() {
                    last.1 = Some(now);
                }
            }
        }
        self.degraded = false;
        self.alarm = None;
        self.healthy_since = None;
        self.degrade_stop_sent = false;
        self.stop_unconfirmed = false;
        out.trace_with("failover", || format!("primary stepped down; peer at epoch {seen_epoch}"));
    }

    /// Vacates slots of monitoring devices that have gone silent, so a
    /// replacement device's periodic announce can claim them. Vacating
    /// a streaming slot drops the supervisor into degraded mode.
    fn check_device_liveness(&mut self, now: SimTime, out: &mut CoreOutputs) {
        let mut vacate: Vec<EndpointId> = Vec::new();
        for (_, ep, profile) in self.manager.associated() {
            // Only devices that promise data streams are liveness-checked;
            // command-only devices (pumps) are supervised by their acks.
            if profile.streams.is_empty() {
                continue;
            }
            let silent = match self.last_data.get(&ep) {
                Some(&t) => now.saturating_since(t) > DISASSOCIATION_TIMEOUT,
                // No liveness clock at all: start one now instead of
                // treating "no data yet" as an eternity of silence. The
                // announce path seeds the clock at association, so this
                // is defence in depth against a device being vacated on
                // the very first liveness tick after associating.
                None => {
                    self.last_data.insert(ep, now);
                    false
                }
            };
            if silent {
                vacate.push(ep);
            }
        }
        for ep in vacate {
            if let Some(slot) = self.manager.disassociate(ep) {
                self.assoc_active = false;
                self.last_data.remove(&ep);
                out.trace_with("assoc", || format!("device {ep} silent; slot {slot} vacated"));
                self.enter_degraded(now, out, "sensor-silent");
            }
        }
    }

    /// Retries and expires outstanding commands. Non-retryable commands
    /// expire (and count as unanswered) one RTT deadline after the
    /// send; retryable commands are retransmitted with exponential
    /// backoff and expire after the last retry's deadline — a stop
    /// command that dies this way trips the ack watchdog.
    fn check_inflight(&mut self, now: SimTime, out: &mut CoreOutputs) {
        let mut retries: Vec<u64> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        for (&id, e) in self.inflight.iter() {
            let waited = now.saturating_since(e.sent_at);
            if e.retryable && e.attempts <= MAX_RETRIES {
                // Backoff doubles per transmission: 2 s, 4 s, 8 s.
                let backoff = RETRY_BASE * (1u64 << (e.attempts - 1));
                if waited > backoff.max(self.rtt_deadline) {
                    retries.push(id);
                }
            } else if waited > self.rtt_deadline {
                expired.push(id);
            }
        }
        for id in retries {
            let e = self.inflight.get_mut(&id).expect("retry id is inflight");
            e.attempts += 1;
            e.sent_at = now;
            let (ep, command, attempts) = (e.endpoint, e.command, e.attempts);
            self.commands_retried += 1;
            out.trace_with("app", || format!("retrying command id {id} (attempt {attempts})"));
            out.send(
                NetAddress::Endpoint(ep),
                NetPayload::Command { id, epoch: self.epoch, command },
            );
        }
        for id in expired {
            let e = self.inflight.remove(&id).expect("expired id is inflight");
            if matches!(e.command, IceCommand::Heartbeat) {
                // A dead heartbeat is a supervision gap, not a command
                // latency outlier: it counts against the heartbeat
                // figures and the next period retries implicitly.
                self.hb_unanswered += 1;
                continue;
            }
            self.rtt.record_unanswered();
            out.trace_with("app", || format!("command id {id} unanswered; giving up"));
            if e.retryable && matches!(e.command, IceCommand::StopPump) {
                // A stop we cannot confirm is a lost pump: fail safe.
                self.watchdog_escalations += 1;
                self.stop_unconfirmed = true;
                self.enter_degraded(now, out, "stop-ack-lost");
            }
        }
        // While the pump's state is unknown, keep probing with fresh
        // stop commands: the first acknowledged stop clears the latch
        // and lets the hysteretic exit begin.
        if self.degraded
            && self.stop_unconfirmed
            && !self.inflight.values().any(|e| matches!(e.command, IceCommand::StopPump))
        {
            for ep in self.stop_capable_endpoints() {
                self.send_command(now, out, ep, IceCommand::StopPump);
            }
        }
    }

    /// Associated endpoints whose profile accepts an immediate stop,
    /// in slot declaration order.
    fn stop_capable_endpoints(&self) -> Vec<EndpointId> {
        self.manager
            .associated()
            .filter_map(|(_, ep, p)| p.accepts_command(CommandKind::Stop).then_some(ep))
            .collect()
    }

    /// Enters degraded mode: latch the alarm, halt every associated
    /// stop-capable device, and start suppressing delivery-enabling app
    /// commands. Idempotent while already degraded.
    fn enter_degraded(&mut self, now: SimTime, out: &mut CoreOutputs, reason: &'static str) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.alarm = Some(reason);
        self.healthy_since = None;
        self.degraded_log.push((now, None));
        out.trace_with("alarm", || format!("degraded mode entered: {reason}"));
        for ep in self.stop_capable_endpoints() {
            self.degrade_stop_sent = true;
            self.send_command(now, out, ep, IceCommand::StopPump);
        }
    }

    /// Exits degraded mode once the system has been healthy (fully
    /// associated, fresh data on every stream) for the full hysteresis
    /// window. Lifts the supervisor's own halt if it imposed one.
    fn check_degraded_exit(&mut self, now: SimTime, out: &mut CoreOutputs) {
        if !self.degraded {
            return;
        }
        let healthy = !self.stop_unconfirmed
            && self.manager.fully_associated()
            && self.manager.associated().all(|(_, ep, p)| {
                p.streams.is_empty()
                    || self
                        .last_data
                        .get(&ep)
                        .is_some_and(|&t| now.saturating_since(t) <= EXIT_FRESHNESS)
            });
        if !healthy {
            self.healthy_since = None;
            return;
        }
        let since = *self.healthy_since.get_or_insert(now);
        if now.saturating_since(since) < DEGRADED_EXIT_HYSTERESIS {
            return;
        }
        self.degraded = false;
        self.alarm = None;
        self.healthy_since = None;
        if let Some(last) = self.degraded_log.last_mut() {
            last.1 = Some(now);
        }
        out.trace_with("alarm", || "degraded mode exited: system healthy again".to_owned());
        if self.degrade_stop_sent {
            self.degrade_stop_sent = false;
            for ep in self.stop_capable_endpoints() {
                self.send_command(now, out, ep, IceCommand::ResumePump);
            }
        }
    }

    fn drive_app(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut CoreOutputs,
        f: impl FnOnce(&mut dyn ClinicalApp, &mut AppCtx<'_>),
    ) {
        let (outbox, notes) = {
            let mut app_ctx =
                AppCtx::new(now, &self.manager, rng).with_notes_enabled(out.trace_enabled());
            f(self.app.as_mut(), &mut app_ctx);
            app_ctx.into_parts()
        };
        for note in notes {
            out.trace_note("app", note);
        }
        for (slot, command) in outbox {
            // While degraded, the supervisor holds the fail-safe state:
            // app commands that would re-enable delivery are suppressed
            // until the hysteretic exit.
            if self.degraded
                && matches!(command, IceCommand::GrantTicket { .. } | IceCommand::ResumePump)
            {
                self.commands_suppressed += 1;
                out.trace_with("app", || format!("degraded: suppressed {command:?} to {slot}"));
                continue;
            }
            match self.manager.endpoint_for(&slot) {
                Some(ep) => self.send_command(now, out, ep, command),
                None => {
                    out.trace_with("app", || {
                        format!("command to unassociated slot {slot} dropped")
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_device::profile::{DeviceClass, DeviceRequirementSet, Requirement};
    use mcps_net::fabric::Fabric;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::rng::RngFactory;

    /// A data-free app requiring one pump slot.
    #[derive(Debug)]
    struct PumpOnly;

    impl ClinicalApp for PumpOnly {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new("pump", vec![Requirement::Class(DeviceClass::Infusion)])]
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, _kind: VitalKind, _value: f64, _at: SimTime) {}
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
    }

    fn rig() -> (SupervisorCore, EndpointId, SimRng, CoreOutputs) {
        let mut fabric = Fabric::new();
        let dev = fabric.add_endpoint("dev");
        let sup = fabric.add_endpoint("sup");
        let core = SupervisorCore::new(PumpOnly, sup, SimDuration::from_secs(2));
        (core, dev, RngFactory::new(1).stream("core"), CoreOutputs::new())
    }

    #[test]
    fn tick_after_association_emits_heartbeat_send() {
        let (mut core, dev, mut rng, mut out) = rig();
        let profile = mcps_device::pump::PcaPump::profile("P-1", false);
        out.begin(true);
        core.handle(
            SimTime::ZERO,
            CoreInput::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile, endpoint: dev },
            },
            &mut rng,
            &mut out,
        );
        assert!(core.manager().fully_associated());
        out.begin(true);
        core.handle(SimTime::from_secs(1), CoreInput::Tick, &mut rng, &mut out);
        assert!(
            out.sends.iter().any(|(to, p)| *to == NetAddress::Endpoint(dev)
                && matches!(p, NetPayload::Command { command: IceCommand::Heartbeat, .. })),
            "first primary tick must heartbeat the stop-capable pump: {:?}",
            out.sends
        );
    }

    /// Satellite of the E13 failover verification: the implementation's
    /// timing constants must be the model's timing constants. Both sides
    /// now *derive* from [`mcps_safety::timing`], so this pins against
    /// someone re-hardcoding a literal on either side.
    #[test]
    fn failover_timing_matches_the_verified_model() {
        assert_eq!(HEARTBEAT_PERIOD, SimDuration::from_secs(timing::HEARTBEAT_SECS as u64));
        assert_eq!(CHECKPOINT_PERIOD, SimDuration::from_secs(timing::CHECKPOINT_SECS as u64));
        assert_eq!(MISSED_CHECKPOINT_LIMIT, timing::MISSED_CHECKPOINT_LIMIT as u64);
        assert_eq!(
            CHECKPOINT_PERIOD * MISSED_CHECKPOINT_LIMIT,
            SimDuration::from_secs(timing::PROMOTION_SILENCE_SECS as u64),
            "the standby's promotion trigger is the model's silence window"
        );
        assert_eq!(
            FAILSAFE_RELEASE_GAP,
            SimDuration::from_secs(timing::FAILSAFE_RELEASE_GAP_SECS as u64)
        );
        assert_eq!(
            DEGRADED_EXIT_HYSTERESIS,
            SimDuration::from_secs(timing::DEGRADED_EXIT_HYSTERESIS_SECS as u64)
        );
        assert_eq!(
            crate::actors::LOCAL_FAILSAFE_DEADLINE,
            SimDuration::from_secs(timing::LOCAL_FAILSAFE_DEADLINE_SECS as u64)
        );
    }

    /// Startup grace (E13 satellite): a standby admitted long before its
    /// primary's first checkpoint must not spuriously promote on its
    /// first ticks — the silence clock is seeded at the first tick, not
    /// at time zero. The model expresses the same invariant (the
    /// `NoStartupGrace` mutant violates it); this pins the
    /// implementation side.
    #[test]
    fn standby_booting_before_first_checkpoint_does_not_promote() {
        let (core, _dev, mut rng, mut out) = rig();
        let mut core = core.with_role(SupervisorRole::Standby).with_redundancy("bed-0");
        // First tick lands late (the standby was admitted well after
        // t=0); silence must be measured from here, not from zero.
        let boot = SimTime::from_secs(200);
        for s in 0..=timing::PROMOTION_SILENCE_SECS as u64 {
            out.begin(true);
            core.handle(boot + SimDuration::from_secs(s), CoreInput::Tick, &mut rng, &mut out);
            assert_eq!(
                core.role(),
                SupervisorRole::Standby,
                "spurious promotion {s}s after a checkpoint-free boot"
            );
            assert_eq!(core.failovers(), 0);
        }
        // ... and the grace is a *seed*, not a disable: one second past
        // the silence window the standby must promote.
        out.begin(true);
        core.handle(
            boot + SimDuration::from_secs(timing::PROMOTION_SILENCE_SECS as u64 + 1),
            CoreInput::Tick,
            &mut rng,
            &mut out,
        );
        assert_eq!(core.role(), SupervisorRole::Primary, "silence from boot must still promote");
        assert_eq!(core.failovers(), 1);
    }

    /// Crash-restart fencing: a core resumed from a journaled
    /// checkpoint must stamp a strictly higher epoch than anything the
    /// dead predecessor could have sent, never reuse a command id, and
    /// inherit the safety latches.
    #[test]
    fn resume_from_checkpoint_fences_the_predecessor() {
        let (_, _dev, mut rng, mut out) = rig();
        let ckpt = CheckpointState {
            epoch: 3,
            next_command_id: 41,
            degraded: true,
            stop_unconfirmed: true,
            inflight_ids: vec![39, 40],
            last_data: vec![(EndpointId::from_index(0), SimTime::from_secs(500))],
        };
        let mut fabric = Fabric::new();
        let dev = fabric.add_endpoint("dev");
        let sup = fabric.add_endpoint("sup");
        let core = SupervisorCore::new(PumpOnly, sup, SimDuration::from_secs(2));
        let mut core = core.resume_from(&ckpt);
        assert_eq!(core.epoch(), 4, "restart must fence every journaled epoch");
        assert!(core.restored());
        assert!(core.is_degraded(), "latches must survive the restart");
        assert_eq!(core.alarm(), Some("restored-stop-unconfirmed"));
        assert_eq!(core.replicated_inflight_ids(), &[39, 40]);
        // The restarted timeline starts at zero; old freshness data is
        // discarded, not trusted.
        assert!(core.last_data.is_empty());
        // First command after a pump associates must use an unseen id.
        let profile = mcps_device::pump::PcaPump::profile("P-1", false);
        out.begin(true);
        core.handle(
            SimTime::ZERO,
            CoreInput::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile, endpoint: dev },
            },
            &mut rng,
            &mut out,
        );
        out.begin(true);
        core.handle(SimTime::from_secs(1), CoreInput::Tick, &mut rng, &mut out);
        let ids: Vec<u64> = out
            .sends
            .iter()
            .filter_map(|(_, p)| match p {
                NetPayload::Command { id, epoch, .. } => {
                    assert_eq!(*epoch, 4, "every post-restart command carries the new epoch");
                    Some(*id)
                }
                _ => None,
            })
            .collect();
        assert!(!ids.is_empty(), "degraded + stop-unconfirmed core must probe with stops");
        assert!(ids.iter().all(|&id| id >= 41), "command ids must not reuse the journaled range");
    }

    #[test]
    fn disabled_trace_builds_no_messages() {
        let (mut core, dev, mut rng, mut out) = rig();
        let profile = mcps_device::pump::PcaPump::profile("P-1", false);
        out.begin(false);
        core.handle(
            SimTime::ZERO,
            CoreInput::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile, endpoint: dev },
            },
            &mut rng,
            &mut out,
        );
        for s in 1..30 {
            out.begin(false);
            core.handle(SimTime::from_secs(s), CoreInput::Tick, &mut rng, &mut out);
        }
        assert_eq!(out.traces_built(), 0, "disabled tracing must never build a String");
        assert!(out.traces_suppressed() > 0, "the suppression path was actually exercised");
        assert!(out.traces.is_empty());
    }
}
