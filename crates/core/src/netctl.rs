//! The ICE network controller.
//!
//! The component the paper's interoperability architecture interposes
//! between devices and the supervisor: it owns the [`Fabric`], maps
//! endpoints to actors, and imposes the fabric's latency/jitter/loss on
//! every message. All network traffic in an ICE simulation flows
//! through this actor.

use mcps_net::fabric::{EndpointId, Fabric, PlannedDelivery, Topic};
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;

use crate::msg::{IceMsg, NetAddress, NetOp};

/// The network controller actor.
///
/// Planning is zero-alloc in steady state: the controller keeps one
/// scratch buffer of [`PlannedDelivery`] entries that the fabric's
/// `publish_into` fills per message, and the endpoint→actor route
/// table is a dense `Vec` indexed by endpoint id (endpoint ids are
/// dense by construction), so delivering a planned message is an array
/// index, not a map walk.
#[derive(Debug)]
pub struct NetworkController {
    fabric: Fabric,
    routes: Vec<Option<ActorId>>,
    scratch: Vec<PlannedDelivery>,
    sent: u64,
    delivered: u64,
}

impl NetworkController {
    /// Wraps a configured fabric. Endpoint→actor routes are registered
    /// afterwards with [`Self::bind`].
    pub fn new(fabric: Fabric) -> Self {
        NetworkController { fabric, routes: Vec::new(), scratch: Vec::new(), sent: 0, delivered: 0 }
    }

    /// Binds an endpoint to the actor that should receive its traffic.
    pub fn bind(&mut self, endpoint: EndpointId, actor: ActorId) {
        let i = endpoint.index() as usize;
        if self.routes.len() <= i {
            self.routes.resize(i + 1, None);
        }
        self.routes[i] = Some(actor);
    }

    /// The actor bound to `endpoint`, if any.
    fn route(&self, endpoint: EndpointId) -> Option<ActorId> {
        self.routes.get(endpoint.index() as usize).copied().flatten()
    }

    /// The underlying fabric (e.g. for stats or late subscriptions).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable access to the fabric.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Messages offered to the controller.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Deliveries scheduled (after loss).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Exports the controller's counters and the fabric's aggregate
    /// link statistics into `bus` under `prefix` — scenarios harvest
    /// this so network QoS figures flow through the same telemetry
    /// sink as every other metric.
    pub fn export_telemetry(&self, bus: &mut mcps_sim::metrics::Telemetry, prefix: &str) {
        bus.incr(&format!("{prefix}.sent"), self.sent);
        bus.incr(&format!("{prefix}.delivered"), self.delivered);
        self.fabric.total_stats().export_into(bus, &format!("{prefix}.link"));
    }
}

impl Actor<IceMsg> for NetworkController {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        let IceMsg::Net(NetOp::Send { from, to, payload }) = msg else {
            return;
        };
        self.sent += 1;
        let now = ctx.now();
        // Plan the whole message into the reusable scratch buffer
        // (taken out of `self` so the fabric and the route table can be
        // borrowed independently), then batch the planned deliveries
        // onto the scheduler.
        let mut planned = std::mem::take(&mut self.scratch);
        planned.clear();
        match &to {
            NetAddress::Endpoint(ep) => {
                if let Some(d) = self.fabric.unicast(from, *ep, now, ctx.rng()) {
                    planned.push(d);
                }
            }
            NetAddress::Topic(topic) => {
                self.fabric.publish_into(from, topic, now, ctx.rng(), &mut planned);
            }
        }
        for &d in &planned {
            let Some(actor) = self.route(d.to) else {
                ctx.trace_with("net", || format!("no route for {}", d.to));
                continue;
            };
            self.delivered += 1;
            ctx.schedule_at(
                d.at,
                actor,
                IceMsg::Net(NetOp::Deliver { from, payload: payload.clone() }),
            );
        }
        self.scratch = planned;
    }
}

/// Standard ICE topic names.
///
/// Multi-bed deployments share one fabric; topics are namespaced by a
/// *scope* (typically the bed id) so one bed's supervisor never
/// consumes another bed's data. The unscoped forms are shorthand for
/// scope `""` and suit single-bed systems.
pub mod topics {
    use super::Topic;

    /// Device announcements for association (unscoped).
    pub fn announce() -> Topic {
        announce_scoped("")
    }

    /// Device announcements within a scope (e.g. `"bed3"`).
    pub fn announce_scoped(scope: &str) -> Topic {
        if scope.is_empty() {
            Topic::new("ice/announce")
        } else {
            Topic::new(format!("{scope}/ice/announce"))
        }
    }

    /// Vital-sign data stream for a kind (unscoped).
    pub fn vitals(kind: mcps_patient::vitals::VitalKind) -> Topic {
        vitals_scoped("", kind)
    }

    /// Vital-sign data stream for a kind within a scope.
    pub fn vitals_scoped(scope: &str, kind: mcps_patient::vitals::VitalKind) -> Topic {
        if scope.is_empty() {
            Topic::new(format!("vitals/{kind}"))
        } else {
            Topic::new(format!("{scope}/vitals/{kind}"))
        }
    }

    /// Primary → standby supervisor state replication (unscoped).
    pub fn replication() -> Topic {
        replication_scoped("")
    }

    /// Supervisor state replication within a scope.
    pub fn replication_scoped(scope: &str) -> Topic {
        if scope.is_empty() {
            Topic::new("ice/replication")
        } else {
            Topic::new(format!("{scope}/ice/replication"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::NetPayload;
    use mcps_net::qos::LinkQos;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::kernel::Simulation;
    use mcps_sim::time::{SimDuration, SimTime};

    /// Collects everything delivered to it.
    #[derive(Debug, Default)]
    struct Sink {
        received: Vec<(SimTime, NetPayload)>,
    }

    impl Actor<IceMsg> for Sink {
        fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
            if let IceMsg::Net(NetOp::Deliver { payload, .. }) = msg {
                self.received.push((ctx.now(), payload));
            }
        }
    }

    #[test]
    fn unicast_respects_latency() {
        let mut sim: Simulation<IceMsg> = Simulation::new(3);
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal().with_latency(SimDuration::from_millis(40)));
        let dev = fabric.add_endpoint("dev");
        let sup = fabric.add_endpoint("sup");
        let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
        let sink_id = sim.add_actor("sink", Sink::default());
        sim.actor_as_mut::<NetworkController>(nc_id).unwrap().bind(sup, sink_id);

        sim.schedule(
            SimTime::from_secs(1),
            nc_id,
            IceMsg::Net(NetOp::Send {
                from: dev,
                to: NetAddress::Endpoint(sup),
                payload: NetPayload::Data {
                    kind: VitalKind::Spo2,
                    value: 97.0,
                    sampled_at: SimTime::from_secs(1),
                },
            }),
        );
        sim.run();
        let sink = sim.actor_as::<Sink>(sink_id).unwrap();
        assert_eq!(sink.received.len(), 1);
        assert_eq!(sink.received[0].0, SimTime::from_secs(1) + SimDuration::from_millis(40));
    }

    #[test]
    fn topic_fanout_delivers_to_subscribers() {
        let mut sim: Simulation<IceMsg> = Simulation::new(3);
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let a = fabric.add_endpoint("a");
        let b = fabric.add_endpoint("b");
        let topic = topics::vitals(VitalKind::Spo2);
        fabric.subscribe(a, topic.clone());
        fabric.subscribe(b, topic.clone());
        let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
        let sa = sim.add_actor("sa", Sink::default());
        let sb = sim.add_actor("sb", Sink::default());
        {
            let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
            nc.bind(a, sa);
            nc.bind(b, sb);
        }
        sim.schedule(
            SimTime::ZERO,
            nc_id,
            IceMsg::Net(NetOp::Send {
                from: dev,
                to: NetAddress::Topic(topic),
                payload: NetPayload::Data {
                    kind: VitalKind::Spo2,
                    value: 95.0,
                    sampled_at: SimTime::ZERO,
                },
            }),
        );
        sim.run();
        assert_eq!(sim.actor_as::<Sink>(sa).unwrap().received.len(), 1);
        assert_eq!(sim.actor_as::<Sink>(sb).unwrap().received.len(), 1);
        let nc = sim.actor_as::<NetworkController>(nc_id).unwrap();
        assert_eq!(nc.sent(), 1);
        assert_eq!(nc.delivered(), 2);
    }

    #[test]
    fn unroutable_delivery_is_dropped_gracefully() {
        let mut sim: Simulation<IceMsg> = Simulation::new(3);
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let ghost = fabric.add_endpoint("ghost");
        let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
        sim.schedule(
            SimTime::ZERO,
            nc_id,
            IceMsg::Net(NetOp::Send {
                from: dev,
                to: NetAddress::Endpoint(ghost),
                payload: NetPayload::Command {
                    id: 1,
                    epoch: 1,
                    command: crate::msg::IceCommand::StopPump,
                },
            }),
        );
        sim.run();
        assert_eq!(sim.actor_as::<NetworkController>(nc_id).unwrap().delivered(), 0);
        assert!(sim.trace().by_category("net").count() > 0);
    }
}
