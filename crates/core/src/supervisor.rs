//! The ICE supervisor actor.
//!
//! Hosts one clinical app: runs device association, forwards published
//! data into the app, dispatches the app's slot-addressed commands onto
//! the network, and tracks command round-trip latency.
//!
//! # Fault robustness
//!
//! The supervisor is the component the paper's assurance case leans on
//! when devices or links misbehave, so it carries three defensive
//! mechanisms:
//!
//! * **Command retry** — safety-critical commands ([`IceCommand::StopPump`],
//!   [`IceCommand::ResumePump`]) that go unacknowledged are retransmitted
//!   with the *same* command id under bounded exponential backoff;
//!   devices deduplicate by id, so a retry can never double-apply.
//!   Periodic commands (ticket grants) are never retried — the next
//!   period re-issues them, and re-applying an old grant would extend
//!   its validity window.
//! * **Ack watchdog** — a [`IceCommand::StopPump`] still unacknowledged
//!   after the last retry is treated as a lost pump: the supervisor
//!   escalates to degraded mode rather than assuming the stop landed.
//! * **Degraded mode** — entered when a streaming device goes silent
//!   (its slot is vacated) or the ack watchdog fires. On entry the
//!   supervisor latches an alarm and halts every associated device that
//!   accepts a stop; while degraded it suppresses app commands that
//!   would re-enable delivery (ticket grants, resumes). The mode is
//!   exited *hysteretically*: only after the system has been fully
//!   associated with fresh data on every stream for a continuous
//!   settling window, at which point the supervisor lifts its own halt.

use mcps_device::profile::CommandKind;
use mcps_net::fabric::EndpointId;
use mcps_net::monitor::DeadlineTracker;
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::app::{AppCtx, ClinicalApp};
use crate::manager::{AssociationOutcome, DeviceManager};
use crate::msg::{IceCommand, IceMsg, NetAddress, NetOp, NetPayload};

/// A monitoring device whose data has not arrived for this long is
/// considered gone: its slot is vacated so a replacement can associate
/// (bedside hot-swap).
const DISASSOCIATION_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Base delay before the first retry of an unacknowledged retryable
/// command; doubles per attempt (2 s, 4 s, 8 s).
const RETRY_BASE: SimDuration = SimDuration::from_secs(2);

/// Retransmissions after the original send before the watchdog gives up.
const MAX_RETRIES: u32 = 3;

/// How long the system must look healthy (fully associated, fresh data
/// on every stream) before degraded mode is exited.
const DEGRADED_EXIT_HYSTERESIS: SimDuration = SimDuration::from_secs(15);

/// Data younger than this counts as "fresh" for the degraded-mode exit
/// check (streams publish at ~1 Hz; this tolerates jitter and loss).
const EXIT_FRESHNESS: SimDuration = SimDuration::from_secs(5);

/// An outstanding command awaiting its ack.
#[derive(Debug, Clone, Copy)]
struct InflightCommand {
    command: IceCommand,
    endpoint: EndpointId,
    /// Original transmission instant (RTTs are measured from here, so a
    /// retried command's latency includes the retransmission delay).
    first_sent_at: SimTime,
    /// Most recent transmission instant (retry timers run from here).
    sent_at: SimTime,
    /// Transmissions so far (1 = only the original send).
    attempts: u32,
    /// Whether this command is retransmitted when unacknowledged.
    retryable: bool,
}

/// The supervisor actor.
pub struct Supervisor {
    app: Box<dyn ClinicalApp>,
    manager: DeviceManager,
    netctl: ActorId,
    endpoint: EndpointId,
    step: SimDuration,
    /// Whether the app is currently fully associated (drives
    /// `on_associated` edges and hot-swap bookkeeping).
    assoc_active: bool,
    /// Completed associations (1 initially; +1 per successful hot-swap).
    associations_completed: u32,
    /// Last data arrival per associated endpoint.
    last_data: BTreeMap<EndpointId, SimTime>,
    data_received: u64,
    /// Data points dropped because the sender was not associated.
    data_ignored: u64,
    commands_sent: u64,
    /// Retransmissions of unacknowledged retryable commands.
    commands_retried: u64,
    /// App commands suppressed because the supervisor was degraded.
    commands_suppressed: u64,
    /// Id for the next outgoing command (unique per supervisor).
    next_command_id: u64,
    /// Outstanding commands for RTT measurement and retry, keyed by
    /// command id so concurrent commands of the same kind pair with
    /// their own acks. Entries are bounded: every command either acks
    /// or expires at its deadline (after retries, if retryable).
    inflight: BTreeMap<u64, InflightCommand>,
    rtt: DeadlineTracker,
    rtt_deadline: SimDuration,
    associated_at: Option<SimTime>,
    /// Degraded-mode state: set while the supervisor distrusts the
    /// system enough to hold the pump stopped.
    degraded: bool,
    /// Latched alarm reason; survives until the hysteretic exit.
    alarm: Option<&'static str>,
    /// Closed and open degraded windows, oldest first.
    degraded_log: Vec<(SimTime, Option<SimTime>)>,
    /// Instant since which the system has looked continuously healthy.
    healthy_since: Option<SimTime>,
    /// Whether the degrade path itself halted stop-capable devices (and
    /// must lift that halt on exit).
    degrade_stop_sent: bool,
    /// Set when a stop command dies unconfirmed: the pump's state is
    /// unknown, so degraded mode holds (and keeps probing with fresh
    /// stops) until some stop is acknowledged.
    stop_unconfirmed: bool,
    /// Times the ack watchdog escalated a lost stop to degraded mode.
    watchdog_escalations: u32,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("data_received", &self.data_received)
            .field("commands_sent", &self.commands_sent)
            .field("associated_at", &self.associated_at)
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor hosting `app`, with a command-RTT deadline
    /// used for the E4 statistics and as the ack-expiry horizon.
    pub fn new(
        app: impl ClinicalApp,
        netctl: ActorId,
        endpoint: EndpointId,
        rtt_deadline: SimDuration,
    ) -> Self {
        let manager = DeviceManager::new(app.requirements());
        Supervisor {
            app: Box::new(app),
            manager,
            netctl,
            endpoint,
            step: SimDuration::from_secs(1),
            assoc_active: false,
            associations_completed: 0,
            last_data: BTreeMap::new(),
            data_received: 0,
            data_ignored: 0,
            commands_sent: 0,
            commands_retried: 0,
            commands_suppressed: 0,
            next_command_id: 0,
            inflight: BTreeMap::new(),
            rtt: DeadlineTracker::new(rtt_deadline),
            rtt_deadline,
            associated_at: None,
            degraded: false,
            alarm: None,
            degraded_log: Vec::new(),
            healthy_since: None,
            degrade_stop_sent: false,
            stop_unconfirmed: false,
            watchdog_escalations: 0,
        }
    }

    /// The device manager (association state).
    pub fn manager(&self) -> &DeviceManager {
        &self.manager
    }

    /// Data points received from associated devices.
    pub fn data_received(&self) -> u64 {
        self.data_received
    }

    /// Data points ignored because the sender was not associated.
    pub fn data_ignored(&self) -> u64 {
        self.data_ignored
    }

    /// Commands sent (excluding retransmissions).
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Retransmissions of unacknowledged retryable commands.
    pub fn commands_retried(&self) -> u64 {
        self.commands_retried
    }

    /// App commands suppressed while degraded.
    pub fn commands_suppressed(&self) -> u64 {
        self.commands_suppressed
    }

    /// Command round-trip statistics.
    pub fn rtt(&self) -> &DeadlineTracker {
        &self.rtt
    }

    /// When association (first) completed, if it did.
    pub fn associated_at(&self) -> Option<SimTime> {
        self.associated_at
    }

    /// Completed associations (> 1 means at least one hot-swap).
    pub fn associations_completed(&self) -> u32 {
        self.associations_completed
    }

    /// Whether the supervisor is currently in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The latched alarm reason, if an alarm is active.
    pub fn alarm(&self) -> Option<&'static str> {
        self.alarm
    }

    /// Degraded windows `(entered, exited)`, oldest first; an open
    /// window has `None` as its exit.
    pub fn degraded_log(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.degraded_log
    }

    /// Times the ack watchdog escalated a lost stop command.
    pub fn watchdog_escalations(&self) -> u32 {
        self.watchdog_escalations
    }

    /// Typed access to the hosted app's concrete state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    fn send_command(&mut self, ctx: &mut Context<'_, IceMsg>, ep: EndpointId, command: IceCommand) {
        self.commands_sent += 1;
        let id = self.next_command_id;
        self.next_command_id += 1;
        let retryable = matches!(command, IceCommand::StopPump | IceCommand::ResumePump);
        self.inflight.insert(
            id,
            InflightCommand {
                command,
                endpoint: ep,
                first_sent_at: ctx.now(),
                sent_at: ctx.now(),
                attempts: 1,
                retryable,
            },
        );
        ctx.send(
            self.netctl,
            IceMsg::Net(NetOp::Send {
                from: self.endpoint,
                to: NetAddress::Endpoint(ep),
                payload: NetPayload::Command { id, command },
            }),
        );
    }

    /// Vacates slots of monitoring devices that have gone silent, so a
    /// replacement device's periodic announce can claim them. Vacating
    /// a streaming slot drops the supervisor into degraded mode.
    fn check_device_liveness(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        let mut vacate: Vec<EndpointId> = Vec::new();
        for slot in self.manager.slot_names() {
            let Some(ep) = self.manager.endpoint_for(&slot) else { continue };
            // Only devices that promise data streams are liveness-checked;
            // command-only devices (pumps) are supervised by their acks.
            let publishes = self.manager.profile_for(&slot).is_some_and(|p| !p.streams.is_empty());
            if !publishes {
                continue;
            }
            let silent = match self.last_data.get(&ep) {
                Some(&t) => now.saturating_since(t) > DISASSOCIATION_TIMEOUT,
                // No liveness clock at all: start one now instead of
                // treating "no data yet" as an eternity of silence. The
                // announce path seeds the clock at association, so this
                // is defence in depth against a device being vacated on
                // the very first liveness tick after associating.
                None => {
                    self.last_data.insert(ep, now);
                    false
                }
            };
            if silent {
                vacate.push(ep);
            }
        }
        for ep in vacate {
            if let Some(slot) = self.manager.disassociate(ep) {
                self.assoc_active = false;
                self.last_data.remove(&ep);
                ctx.trace("assoc", format!("device {ep} silent; slot {slot} vacated"));
                self.enter_degraded(ctx, "sensor-silent");
            }
        }
    }

    /// Retries and expires outstanding commands. Non-retryable commands
    /// expire (and count as unanswered) one RTT deadline after the
    /// send; retryable commands are retransmitted with exponential
    /// backoff and expire after the last retry's deadline — a stop
    /// command that dies this way trips the ack watchdog.
    fn check_inflight(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        let mut retries: Vec<u64> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        for (&id, e) in &self.inflight {
            let waited = now.saturating_since(e.sent_at);
            if e.retryable && e.attempts <= MAX_RETRIES {
                // Backoff doubles per transmission: 2 s, 4 s, 8 s.
                let backoff = RETRY_BASE * (1u64 << (e.attempts - 1));
                if waited > backoff.max(self.rtt_deadline) {
                    retries.push(id);
                }
            } else if waited > self.rtt_deadline {
                expired.push(id);
            }
        }
        for id in retries {
            let e = self.inflight.get_mut(&id).expect("retry id is inflight");
            e.attempts += 1;
            e.sent_at = now;
            let (ep, command, attempts) = (e.endpoint, e.command, e.attempts);
            self.commands_retried += 1;
            ctx.trace("app", format!("retrying command id {id} (attempt {attempts})"));
            ctx.send(
                self.netctl,
                IceMsg::Net(NetOp::Send {
                    from: self.endpoint,
                    to: NetAddress::Endpoint(ep),
                    payload: NetPayload::Command { id, command },
                }),
            );
        }
        for id in expired {
            let e = self.inflight.remove(&id).expect("expired id is inflight");
            self.rtt.record_unanswered();
            ctx.trace("app", format!("command id {id} unanswered; giving up"));
            if e.retryable && matches!(e.command, IceCommand::StopPump) {
                // A stop we cannot confirm is a lost pump: fail safe.
                self.watchdog_escalations += 1;
                self.stop_unconfirmed = true;
                self.enter_degraded(ctx, "stop-ack-lost");
            }
        }
        // While the pump's state is unknown, keep probing with fresh
        // stop commands: the first acknowledged stop clears the latch
        // and lets the hysteretic exit begin.
        if self.degraded
            && self.stop_unconfirmed
            && !self.inflight.values().any(|e| matches!(e.command, IceCommand::StopPump))
        {
            for ep in self.stop_capable_endpoints() {
                self.send_command(ctx, ep, IceCommand::StopPump);
            }
        }
    }

    /// Associated endpoints whose profile accepts an immediate stop.
    fn stop_capable_endpoints(&self) -> Vec<EndpointId> {
        self.manager
            .slot_names()
            .into_iter()
            .filter_map(|slot| {
                let ep = self.manager.endpoint_for(&slot)?;
                let p = self.manager.profile_for(&slot)?;
                p.accepts_command(CommandKind::Stop).then_some(ep)
            })
            .collect()
    }

    /// Enters degraded mode: latch the alarm, halt every associated
    /// stop-capable device, and start suppressing delivery-enabling app
    /// commands. Idempotent while already degraded.
    fn enter_degraded(&mut self, ctx: &mut Context<'_, IceMsg>, reason: &'static str) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.alarm = Some(reason);
        self.healthy_since = None;
        self.degraded_log.push((ctx.now(), None));
        ctx.trace("alarm", format!("degraded mode entered: {reason}"));
        for ep in self.stop_capable_endpoints() {
            self.degrade_stop_sent = true;
            self.send_command(ctx, ep, IceCommand::StopPump);
        }
    }

    /// Exits degraded mode once the system has been healthy (fully
    /// associated, fresh data on every stream) for the full hysteresis
    /// window. Lifts the supervisor's own halt if it imposed one.
    fn check_degraded_exit(&mut self, ctx: &mut Context<'_, IceMsg>) {
        if !self.degraded {
            return;
        }
        let now = ctx.now();
        let healthy = !self.stop_unconfirmed
            && self.manager.fully_associated()
            && self.manager.slot_names().iter().all(|slot| {
                let Some(ep) = self.manager.endpoint_for(slot) else { return false };
                let streams = self.manager.profile_for(slot).is_some_and(|p| !p.streams.is_empty());
                !streams
                    || self
                        .last_data
                        .get(&ep)
                        .is_some_and(|&t| now.saturating_since(t) <= EXIT_FRESHNESS)
            });
        if !healthy {
            self.healthy_since = None;
            return;
        }
        let since = *self.healthy_since.get_or_insert(now);
        if now.saturating_since(since) < DEGRADED_EXIT_HYSTERESIS {
            return;
        }
        self.degraded = false;
        self.alarm = None;
        self.healthy_since = None;
        if let Some(last) = self.degraded_log.last_mut() {
            last.1 = Some(now);
        }
        ctx.trace("alarm", "degraded mode exited: system healthy again");
        if self.degrade_stop_sent {
            self.degrade_stop_sent = false;
            for ep in self.stop_capable_endpoints() {
                self.send_command(ctx, ep, IceCommand::ResumePump);
            }
        }
    }

    fn drive_app(
        &mut self,
        ctx: &mut Context<'_, IceMsg>,
        f: impl FnOnce(&mut dyn ClinicalApp, &mut AppCtx<'_>),
    ) {
        let (outbox, notes) = {
            let now = ctx.now();
            let mut app_ctx = AppCtx::new(now, &self.manager, ctx.rng());
            f(self.app.as_mut(), &mut app_ctx);
            app_ctx.into_parts()
        };
        for note in notes {
            ctx.trace("app", note);
        }
        for (slot, command) in outbox {
            // While degraded, the supervisor holds the fail-safe state:
            // app commands that would re-enable delivery are suppressed
            // until the hysteretic exit.
            if self.degraded
                && matches!(command, IceCommand::GrantTicket { .. } | IceCommand::ResumePump)
            {
                self.commands_suppressed += 1;
                ctx.trace("app", format!("degraded: suppressed {command:?} to {slot}"));
                continue;
            }
            match self.manager.endpoint_for(&slot) {
                Some(ep) => self.send_command(ctx, ep, command),
                None => ctx.trace("app", format!("command to unassociated slot {slot} dropped")),
            }
        }
    }
}

impl Actor<IceMsg> for Supervisor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        match msg {
            IceMsg::Tick => {
                self.check_device_liveness(ctx);
                self.check_inflight(ctx);
                self.check_degraded_exit(ctx);
                self.drive_app(ctx, |app, actx| app.on_tick(actx));
                ctx.schedule_self(self.step, IceMsg::Tick);
            }
            IceMsg::Net(NetOp::Deliver { from, payload }) => match payload {
                NetPayload::Announce { profile, endpoint } => {
                    let outcome = self.manager.on_announce(endpoint, &profile);
                    if matches!(outcome, AssociationOutcome::Associated { .. }) {
                        ctx.trace("assoc", format!("{profile}: {outcome:?}"));
                        // Newly associated devices start their liveness
                        // clock now.
                        self.last_data.insert(endpoint, ctx.now());
                    }
                    if self.manager.fully_associated() && !self.assoc_active {
                        self.assoc_active = true;
                        self.associations_completed += 1;
                        self.associated_at.get_or_insert(ctx.now());
                        ctx.trace("assoc", "all slots associated; app active");
                        self.drive_app(ctx, |app, actx| app.on_associated(actx));
                    }
                }
                NetPayload::Data { kind, value, sampled_at } => {
                    // Data is only accepted from *associated* devices:
                    // an unvetted bedside device must not drive control
                    // decisions, even if it publishes on the right topic.
                    if self.manager.slot_of(from).is_none() {
                        self.data_ignored += 1;
                        return;
                    }
                    self.data_received += 1;
                    self.last_data.insert(from, ctx.now());
                    self.drive_app(ctx, |app, actx| app.on_data(actx, kind, value, sampled_at));
                }
                NetPayload::Ack { id, command, applied_at } => {
                    if let Some(e) = self.inflight.remove(&id) {
                        self.rtt.record(ctx.now().saturating_since(e.first_sent_at));
                        if matches!(e.command, IceCommand::StopPump) {
                            // A confirmed stop: the pump is reachable
                            // and halted, so the watchdog latch clears.
                            self.stop_unconfirmed = false;
                        }
                    }
                    self.drive_app(ctx, |app, actx| app.on_ack(actx, command, applied_at));
                }
                NetPayload::Command { .. } => {
                    // Supervisors do not accept commands.
                    ctx.trace("app", format!("unexpected command from {from}"));
                }
            },
            IceMsg::PressButton | IceMsg::Net(NetOp::Send { .. }) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppCtx;
    use crate::netctl::NetworkController;
    use mcps_device::profile::{DeviceClass, DeviceRequirementSet, Requirement};
    use mcps_net::fabric::Fabric;
    use mcps_net::qos::LinkQos;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::kernel::Simulation;
    use mcps_sim::time::SimTime;

    /// A minimal app that records its callbacks.
    #[derive(Debug, Default)]
    struct Probe {
        associated_calls: u32,
        data_points: Vec<(VitalKind, f64)>,
        ticks: u32,
    }

    impl ClinicalApp for Probe {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new(
                "monitor",
                vec![Requirement::Class(DeviceClass::Monitor)],
            )]
        }
        fn on_associated(&mut self, _ctx: &mut AppCtx<'_>) {
            self.associated_calls += 1;
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _at: SimTime) {
            self.data_points.push((kind, value));
        }
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {
            self.ticks += 1;
        }
    }

    /// An app driving a pump slot: sends one scripted command as soon
    /// as the pump associates.
    #[derive(Debug)]
    struct OneShot {
        command: IceCommand,
        sent: bool,
    }

    impl OneShot {
        fn new(command: IceCommand) -> Self {
            OneShot { command, sent: false }
        }
    }

    impl ClinicalApp for OneShot {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new("pump", vec![Requirement::Class(DeviceClass::Infusion)])]
        }
        fn on_associated(&mut self, ctx: &mut AppCtx<'_>) {
            if !self.sent {
                self.sent = true;
                ctx.command("pump", self.command);
            }
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, _kind: VitalKind, _value: f64, _at: SimTime) {}
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
    }

    fn deliver(sim: &mut Simulation<IceMsg>, sup: ActorId, from: EndpointId, payload: NetPayload) {
        sim.schedule(sim.now(), sup, IceMsg::Net(NetOp::Deliver { from, payload }));
        sim.run();
    }

    fn setup() -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        setup_with(Probe::default())
    }

    fn setup_with(app: impl ClinicalApp) -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let sup_ep = fabric.add_endpoint("sup");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim
            .add_actor("supervisor", Supervisor::new(app, nc, sup_ep, SimDuration::from_secs(2)));
        (sim, sup, dev, sup_ep)
    }

    fn monitor_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::monitor::pulse_oximeter("S-1").profile().clone()
    }

    fn pump_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::pump::PcaPump::profile("P-1", false)
    }

    #[test]
    fn data_from_unassociated_devices_is_ignored() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 97.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 0);
        assert_eq!(s.data_ignored(), 1);
        assert!(s.app_as::<Probe>().unwrap().data_points.is_empty());
    }

    #[test]
    fn association_gates_data_and_fires_callback() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert!(s.manager().fully_associated());
            assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
            assert_eq!(s.associations_completed(), 1);
        }
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 96.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 1);
        assert_eq!(s.app_as::<Probe>().unwrap().data_points, vec![(VitalKind::Spo2, 96.0)]);
    }

    #[test]
    fn duplicate_announce_does_not_refire_on_associated() {
        let (mut sim, sup, dev, _) = setup();
        for _ in 0..3 {
            deliver(
                &mut sim,
                sup,
                dev,
                NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            );
        }
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
        assert_eq!(s.associations_completed(), 1);
    }

    #[test]
    fn silent_monitor_is_disassociated_on_tick() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Supervisor ticks for 40 s with no data: liveness vacates.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.manager().fully_associated(), "silent device must vacate its slot");
        assert!(s.app_as::<Probe>().unwrap().ticks > 30);
        // Losing a streaming device is a degraded-mode entry.
        assert!(s.is_degraded());
        assert_eq!(s.alarm(), Some("sensor-silent"));
    }

    /// Regression: `check_device_liveness` used to treat a *missing*
    /// liveness clock as infinite silence, so a freshly associated
    /// device whose clock had not been seeded was vacated on the very
    /// first liveness tick. A missing entry must instead start the
    /// clock at the current instant.
    #[test]
    fn missing_liveness_clock_is_seeded_not_vacated() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Simulate the pre-fix state: associated, but no liveness clock
        // (the announce-time seeding is what normally prevents this).
        sim.actor_as_mut::<Supervisor>(sup).unwrap().last_data.remove(&dev);
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(
            s.manager().fully_associated(),
            "a device with no data *yet* must not be vacated instantly"
        );
        assert!(!s.is_degraded());
        // The clock the tick seeded now ages normally: 40 s of real
        // silence later the device is gone.
        let mut sim2 = sim;
        sim2.run_until(sim2.now() + SimDuration::from_secs(40));
        assert!(!sim2.actor_as::<Supervisor>(sup).unwrap().manager().fully_associated());
    }

    /// Regression: inflight entries for commands whose acks never come
    /// used to leak forever — and precisely the worst RTTs were the
    /// ones missing from the deadline statistics. They must expire at
    /// the RTT deadline and count as unanswered.
    #[test]
    fn lost_ack_expires_inflight_and_counts_unanswered() {
        // GrantTicket is non-retryable: expiry happens one deadline
        // after the send, with no retransmission.
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::GrantTicket {
            validity: SimDuration::from_secs(15),
        }));
        // The pump endpoint is bound to no actor, so the command (and
        // any ack) vanishes into the void.
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(10));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.commands_sent(), 1);
        assert_eq!(s.commands_retried(), 0, "ticket grants are never retried");
        assert!(s.inflight.is_empty(), "expired entries must be removed");
        assert_eq!(s.rtt().unanswered(), 1);
        assert!(!s.is_degraded(), "a lost grant is not a lost pump");
    }

    /// A stop command whose acks are all lost is retried with backoff
    /// and then escalated by the ack watchdog to degraded mode.
    #[test]
    fn lost_stop_ack_trips_watchdog_into_degraded() {
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::StopPump));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(60));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        // The app's stop is retried MAX_RETRIES times, then the
        // watchdog fires; the degrade path keeps probing with fresh
        // stops (each with its own retry cycle) as long as none is
        // confirmed. The pump never answers, so degraded mode holds.
        assert!(s.commands_retried() >= 2 * u64::from(MAX_RETRIES));
        assert!(s.inflight.len() <= 1, "at most the current probe is outstanding");
        assert!(s.watchdog_escalations() >= 2);
        assert!(s.is_degraded(), "an unconfirmed stop must hold degraded mode");
        assert_eq!(s.alarm(), Some("stop-ack-lost"));
        assert!(s.rtt().unanswered() >= 2, "each dead stop counts once, not per retry");
        assert_eq!(
            s.rtt().unanswered() * u64::from(MAX_RETRIES),
            s.commands_retried(),
            "every dead stop ran a full retry cycle"
        );
    }

    /// Degraded mode is exited hysteretically: only after the system
    /// has been fully associated with fresh data for the whole settling
    /// window, and transient recoveries reset the clock.
    #[test]
    fn degraded_mode_exits_hysteretically_on_recovery() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // 40 s of silence: vacate + degrade.
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        assert!(sim.actor_as::<Supervisor>(sup).unwrap().is_degraded());
        // Device comes back: re-announce, then fresh data every second.
        let back = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            back,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            }),
        );
        for i in 1..=30u64 {
            let at = back + SimDuration::from_secs(i);
            sim.schedule(
                at,
                sup,
                IceMsg::Net(NetOp::Deliver {
                    from: dev,
                    payload: NetPayload::Data {
                        kind: VitalKind::Spo2,
                        value: 97.0,
                        sampled_at: at,
                    },
                }),
            );
        }
        // Inside the hysteresis window the mode must hold.
        sim.run_until(back + SimDuration::from_secs(10));
        assert!(
            sim.actor_as::<Supervisor>(sup).unwrap().is_degraded(),
            "must stay degraded inside the hysteresis window"
        );
        sim.run_until(back + SimDuration::from_secs(30));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.is_degraded(), "healthy for > hysteresis window: degraded mode ends");
        assert!(s.alarm().is_none(), "alarm clears on exit");
        let log = s.degraded_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].1.is_some(), "the degraded window is closed");
        assert_eq!(s.associations_completed(), 2, "recovery counted as a hot-swap");
    }
}
