//! The ICE supervisor actor.
//!
//! Hosts one clinical app: runs device association, forwards published
//! data into the app, dispatches the app's slot-addressed commands onto
//! the network, and tracks command round-trip latency.
//!
//! # Fault robustness
//!
//! The supervisor is the component the paper's assurance case leans on
//! when devices or links misbehave, so it carries three defensive
//! mechanisms:
//!
//! * **Command retry** — safety-critical commands ([`IceCommand::StopPump`],
//!   [`IceCommand::ResumePump`]) that go unacknowledged are retransmitted
//!   with the *same* command id under bounded exponential backoff;
//!   devices deduplicate by id, so a retry can never double-apply.
//!   Periodic commands (ticket grants) are never retried — the next
//!   period re-issues them, and re-applying an old grant would extend
//!   its validity window.
//! * **Ack watchdog** — a [`IceCommand::StopPump`] still unacknowledged
//!   after the last retry is treated as a lost pump: the supervisor
//!   escalates to degraded mode rather than assuming the stop landed.
//! * **Degraded mode** — entered when a streaming device goes silent
//!   (its slot is vacated) or the ack watchdog fires. On entry the
//!   supervisor latches an alarm and halts every associated device that
//!   accepts a stop; while degraded it suppresses app commands that
//!   would re-enable delivery (ticket grants, resumes). The mode is
//!   exited *hysteretically*: only after the system has been fully
//!   associated with fresh data on every stream for a continuous
//!   settling window, at which point the supervisor lifts its own halt.

use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_device::profile::CommandKind;
use mcps_net::fabric::{EndpointId, Topic};
use mcps_net::monitor::DeadlineTracker;
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::app::{AppCtx, ClinicalApp};
use crate::manager::{AssociationOutcome, DeviceManager};
use crate::msg::{IceCommand, IceMsg, NetAddress, NetOp, NetPayload};
use crate::netctl::topics;

/// A monitoring device whose data has not arrived for this long is
/// considered gone: its slot is vacated so a replacement can associate
/// (bedside hot-swap).
const DISASSOCIATION_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Base delay before the first retry of an unacknowledged retryable
/// command; doubles per attempt (2 s, 4 s, 8 s).
const RETRY_BASE: SimDuration = SimDuration::from_secs(2);

/// Retransmissions after the original send before the watchdog gives up.
const MAX_RETRIES: u32 = 3;

/// How long the system must look healthy (fully associated, fresh data
/// on every stream) before degraded mode is exited.
const DEGRADED_EXIT_HYSTERESIS: SimDuration = SimDuration::from_secs(15);

/// Data younger than this counts as "fresh" for the degraded-mode exit
/// check (streams publish at ~1 Hz; this tolerates jitter and loss).
const EXIT_FRESHNESS: SimDuration = SimDuration::from_secs(5);

/// How often an active supervisor heartbeats every stop-capable device.
/// Three missed beats fit inside the pump's 15 s local fail-safe
/// deadline, so a healthy but lossy channel does not trip the latch.
pub const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_secs(5);

/// How often a redundant primary replicates its state to the standby.
const CHECKPOINT_PERIOD: SimDuration = SimDuration::from_secs(2);

/// Consecutive missed checkpoints before a standby declares the primary
/// dead and promotes itself (5 × 2 s = a 10 s failover trigger, inside
/// the pump's 15 s watchdog so a clean failover never latches it).
const MISSED_CHECKPOINT_LIMIT: u64 = 5;

/// A heartbeat-ack gap at least this long means the device's local
/// fail-safe watchdog (same deadline) has latched in the meantime; the
/// supervisor owes it an explicit `ResumePump` once supervision is
/// re-established and the system is not otherwise degraded. Mirrors
/// `LOCAL_FAILSAFE_DEADLINE` in the actor layer.
const FAILSAFE_RELEASE_GAP: SimDuration = SimDuration::from_secs(15);

/// Role of a supervisor in a redundant pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorRole {
    /// Owns the command channel: drives the app's commands, heartbeats
    /// devices, and (when redundancy is enabled) replicates state.
    Primary,
    /// Consumes the same vitals and the primary's checkpoints to stay
    /// warm, sends nothing, and promotes itself on checkpoint silence.
    Standby,
}

/// An outstanding command awaiting its ack.
#[derive(Debug, Clone, Copy)]
struct InflightCommand {
    command: IceCommand,
    endpoint: EndpointId,
    /// Original transmission instant (RTTs are measured from here, so a
    /// retried command's latency includes the retransmission delay).
    first_sent_at: SimTime,
    /// Most recent transmission instant (retry timers run from here).
    sent_at: SimTime,
    /// Transmissions so far (1 = only the original send).
    attempts: u32,
    /// Whether this command is retransmitted when unacknowledged.
    retryable: bool,
}

/// The supervisor actor.
pub struct Supervisor {
    app: Box<dyn ClinicalApp>,
    manager: DeviceManager,
    netctl: ActorId,
    endpoint: EndpointId,
    step: SimDuration,
    /// Whether the app is currently fully associated (drives
    /// `on_associated` edges and hot-swap bookkeeping).
    assoc_active: bool,
    /// Completed associations (1 initially; +1 per successful hot-swap).
    associations_completed: u32,
    /// Last data arrival per associated endpoint.
    last_data: BTreeMap<EndpointId, SimTime>,
    data_received: u64,
    /// Data points dropped because the sender was not associated.
    data_ignored: u64,
    commands_sent: u64,
    /// Retransmissions of unacknowledged retryable commands.
    commands_retried: u64,
    /// App commands suppressed because the supervisor was degraded.
    commands_suppressed: u64,
    /// Id for the next outgoing command (unique per supervisor).
    next_command_id: u64,
    /// Outstanding commands for RTT measurement and retry, keyed by
    /// command id so concurrent commands of the same kind pair with
    /// their own acks. Entries are bounded: every command either acks
    /// or expires at its deadline (after retries, if retryable).
    inflight: BTreeMap<u64, InflightCommand>,
    rtt: DeadlineTracker,
    rtt_deadline: SimDuration,
    associated_at: Option<SimTime>,
    /// Degraded-mode state: set while the supervisor distrusts the
    /// system enough to hold the pump stopped.
    degraded: bool,
    /// Latched alarm reason; survives until the hysteretic exit.
    alarm: Option<&'static str>,
    /// Closed and open degraded windows, oldest first.
    degraded_log: Vec<(SimTime, Option<SimTime>)>,
    /// Instant since which the system has looked continuously healthy.
    healthy_since: Option<SimTime>,
    /// Whether the degrade path itself halted stop-capable devices (and
    /// must lift that halt on exit).
    degrade_stop_sent: bool,
    /// Set when a stop command dies unconfirmed: the pump's state is
    /// unknown, so degraded mode holds (and keeps probing with fresh
    /// stops) until some stop is acknowledged.
    stop_unconfirmed: bool,
    /// Times the ack watchdog escalated a lost stop to degraded mode.
    watchdog_escalations: u32,
    /// Role in a redundant pair; standbys send nothing until promoted.
    role: SupervisorRole,
    /// Fencing epoch stamped into every outgoing command. Primaries
    /// start at 1, standbys at 0; each promotion takes max-seen + 1.
    epoch: u64,
    /// Replication topic when redundancy is enabled (`None` = solo
    /// supervisor, no checkpoints published or expected).
    replication: Option<Topic>,
    /// The supervisor's own fault schedule (`SupervisorCrash` windows).
    fault: FaultPlan,
    next_heartbeat: Option<SimTime>,
    next_checkpoint: Option<SimTime>,
    /// Standby: last checkpoint arrival, seeded at the first tick so a
    /// standby powered on before its primary does not promote at once.
    last_ckpt: Option<SimTime>,
    /// Highest epoch observed in checkpoints (standby promotion fences
    /// the old primary by exceeding this).
    max_epoch_seen: u64,
    /// Degraded latch replicated from the most recent checkpoint,
    /// adopted at promotion.
    ckpt_degraded: bool,
    ckpt_stop_unconfirmed: bool,
    /// Inflight command ids replicated from the most recent checkpoint.
    ckpt_inflight_ids: Vec<u64>,
    /// Standby → primary promotions performed by this supervisor.
    failovers: u32,
    /// Primary → standby demotions (a higher-epoch peer exists).
    stepdowns: u32,
    /// Commands the app asked for while this supervisor was standby.
    standby_suppressed: u64,
    hb_sent: u64,
    hb_acked: u64,
    hb_unanswered: u64,
    /// Heartbeat round-trips, milliseconds, in completion order.
    hb_rtt_ms: Vec<f64>,
    /// Last heartbeat-ack instant per endpoint, for fail-safe release.
    hb_last_acked: BTreeMap<EndpointId, SimTime>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("data_received", &self.data_received)
            .field("commands_sent", &self.commands_sent)
            .field("associated_at", &self.associated_at)
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor hosting `app`, with a command-RTT deadline
    /// used for the E4 statistics and as the ack-expiry horizon.
    pub fn new(
        app: impl ClinicalApp,
        netctl: ActorId,
        endpoint: EndpointId,
        rtt_deadline: SimDuration,
    ) -> Self {
        let manager = DeviceManager::new(app.requirements());
        Supervisor {
            app: Box::new(app),
            manager,
            netctl,
            endpoint,
            step: SimDuration::from_secs(1),
            assoc_active: false,
            associations_completed: 0,
            last_data: BTreeMap::new(),
            data_received: 0,
            data_ignored: 0,
            commands_sent: 0,
            commands_retried: 0,
            commands_suppressed: 0,
            next_command_id: 0,
            inflight: BTreeMap::new(),
            rtt: DeadlineTracker::new(rtt_deadline),
            rtt_deadline,
            associated_at: None,
            degraded: false,
            alarm: None,
            degraded_log: Vec::new(),
            healthy_since: None,
            degrade_stop_sent: false,
            stop_unconfirmed: false,
            watchdog_escalations: 0,
            role: SupervisorRole::Primary,
            epoch: 1,
            replication: None,
            fault: FaultPlan::none(),
            next_heartbeat: None,
            next_checkpoint: None,
            last_ckpt: None,
            max_epoch_seen: 0,
            ckpt_degraded: false,
            ckpt_stop_unconfirmed: false,
            ckpt_inflight_ids: Vec::new(),
            failovers: 0,
            stepdowns: 0,
            standby_suppressed: 0,
            hb_sent: 0,
            hb_acked: 0,
            hb_unanswered: 0,
            hb_rtt_ms: Vec::new(),
            hb_last_acked: BTreeMap::new(),
        }
    }

    /// Sets the role in a redundant pair. A standby starts at epoch 0
    /// but already knows the configured primary runs epoch 1, so its
    /// eventual promotion fences the primary even if it died before
    /// replicating a single checkpoint.
    pub fn with_role(mut self, role: SupervisorRole) -> Self {
        self.role = role;
        if role == SupervisorRole::Standby {
            self.epoch = 0;
            self.max_epoch_seen = 1;
        }
        self
    }

    /// Enables primary/standby redundancy under `scope`: primaries
    /// publish periodic state checkpoints on the scope's replication
    /// topic; standbys treat checkpoint silence as primary death.
    pub fn with_redundancy(mut self, scope: &str) -> Self {
        self.replication = Some(topics::replication_scoped(scope));
        self
    }

    /// Attaches the supervisor's own fault schedule. While a
    /// [`FaultKind::SupervisorCrash`] (or `Crash`) window is active the
    /// supervisor processes nothing — no commands, no heartbeats, no
    /// checkpoints — but recovers when the window closes.
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// The device manager (association state).
    pub fn manager(&self) -> &DeviceManager {
        &self.manager
    }

    /// Data points received from associated devices.
    pub fn data_received(&self) -> u64 {
        self.data_received
    }

    /// Data points ignored because the sender was not associated.
    pub fn data_ignored(&self) -> u64 {
        self.data_ignored
    }

    /// Commands sent (excluding retransmissions).
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Retransmissions of unacknowledged retryable commands.
    pub fn commands_retried(&self) -> u64 {
        self.commands_retried
    }

    /// App commands suppressed while degraded.
    pub fn commands_suppressed(&self) -> u64 {
        self.commands_suppressed
    }

    /// Command round-trip statistics.
    pub fn rtt(&self) -> &DeadlineTracker {
        &self.rtt
    }

    /// When association (first) completed, if it did.
    pub fn associated_at(&self) -> Option<SimTime> {
        self.associated_at
    }

    /// Completed associations (> 1 means at least one hot-swap).
    pub fn associations_completed(&self) -> u32 {
        self.associations_completed
    }

    /// Whether the supervisor is currently in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The latched alarm reason, if an alarm is active.
    pub fn alarm(&self) -> Option<&'static str> {
        self.alarm
    }

    /// Degraded windows `(entered, exited)`, oldest first; an open
    /// window has `None` as its exit.
    pub fn degraded_log(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.degraded_log
    }

    /// Times the ack watchdog escalated a lost stop command.
    pub fn watchdog_escalations(&self) -> u32 {
        self.watchdog_escalations
    }

    /// Current role (a standby flips to primary at promotion).
    pub fn role(&self) -> SupervisorRole {
        self.role
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Standby → primary promotions performed.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Primary → standby demotions (split-brain resolution).
    pub fn stepdowns(&self) -> u32 {
        self.stepdowns
    }

    /// App commands dropped because this supervisor was standby.
    pub fn standby_suppressed(&self) -> u64 {
        self.standby_suppressed
    }

    /// Heartbeats sent / acknowledged / given up on.
    pub fn heartbeat_counts(&self) -> (u64, u64, u64) {
        (self.hb_sent, self.hb_acked, self.hb_unanswered)
    }

    /// Heartbeat round-trip times, milliseconds, in completion order.
    pub fn heartbeat_rtts_ms(&self) -> &[f64] {
        &self.hb_rtt_ms
    }

    /// Command ids the peer reported inflight in its last checkpoint.
    pub fn replicated_inflight_ids(&self) -> &[u64] {
        &self.ckpt_inflight_ids
    }

    /// Typed access to the hosted app's concrete state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    fn send_command(&mut self, ctx: &mut Context<'_, IceMsg>, ep: EndpointId, command: IceCommand) {
        // A standby owns no part of the command channel: everything its
        // (warm) app or degrade paths would send is suppressed until
        // promotion. Devices would fence a stale epoch anyway; this
        // keeps the wire quiet and the counter honest.
        if self.role == SupervisorRole::Standby {
            self.standby_suppressed += 1;
            return;
        }
        self.commands_sent += 1;
        let id = self.next_command_id;
        self.next_command_id += 1;
        let retryable = matches!(command, IceCommand::StopPump | IceCommand::ResumePump);
        self.inflight.insert(
            id,
            InflightCommand {
                command,
                endpoint: ep,
                first_sent_at: ctx.now(),
                sent_at: ctx.now(),
                attempts: 1,
                retryable,
            },
        );
        ctx.send(
            self.netctl,
            IceMsg::Net(NetOp::Send {
                from: self.endpoint,
                to: NetAddress::Endpoint(ep),
                payload: NetPayload::Command { id, epoch: self.epoch, command },
            }),
        );
    }

    /// Sends one supervision heartbeat to `ep`. Heartbeats ride the
    /// normal command channel (id-paired acks, same inflight table) but
    /// are never retried — the next period is the retry — and an
    /// expired one counts against the heartbeat statistics, not the
    /// command RTT deadline figures.
    fn send_heartbeat(&mut self, ctx: &mut Context<'_, IceMsg>, ep: EndpointId) {
        self.hb_sent += 1;
        let id = self.next_command_id;
        self.next_command_id += 1;
        self.inflight.insert(
            id,
            InflightCommand {
                command: IceCommand::Heartbeat,
                endpoint: ep,
                first_sent_at: ctx.now(),
                sent_at: ctx.now(),
                attempts: 1,
                retryable: false,
            },
        );
        ctx.send(
            self.netctl,
            IceMsg::Net(NetOp::Send {
                from: self.endpoint,
                to: NetAddress::Endpoint(ep),
                payload: NetPayload::Command {
                    id,
                    epoch: self.epoch,
                    command: IceCommand::Heartbeat,
                },
            }),
        );
    }

    /// Publishes a state checkpoint on the replication topic so the
    /// standby can take over mid-story: the command-id high-water mark,
    /// the degraded latch, outstanding command ids, and per-endpoint
    /// data freshness.
    fn publish_checkpoint(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let Some(topic) = self.replication.clone() else { return };
        let payload = NetPayload::Checkpoint {
            epoch: self.epoch,
            next_command_id: self.next_command_id,
            degraded: self.degraded,
            stop_unconfirmed: self.stop_unconfirmed,
            inflight_ids: self.inflight.keys().copied().collect(),
            last_data: self.last_data.iter().map(|(&ep, &t)| (ep, t)).collect(),
        };
        ctx.send(
            self.netctl,
            IceMsg::Net(NetOp::Send { from: self.endpoint, to: NetAddress::Topic(topic), payload }),
        );
    }

    /// Standby → primary promotion after checkpoint silence. The new
    /// epoch exceeds everything the old primary ever stamped, so its
    /// stale commands are fenced at every device; the replicated
    /// degraded latch is adopted so a failover cannot silently forget
    /// an active alarm.
    fn promote(&mut self, ctx: &mut Context<'_, IceMsg>) {
        self.role = SupervisorRole::Primary;
        self.epoch = self.max_epoch_seen.max(self.epoch) + 1;
        self.max_epoch_seen = self.epoch;
        self.failovers += 1;
        ctx.trace("failover", format!("standby promoted to primary, epoch {}", self.epoch));
        self.stop_unconfirmed = self.ckpt_stop_unconfirmed;
        if self.ckpt_degraded {
            self.enter_degraded(ctx, "inherited-degraded");
        }
        // Re-establish supervision immediately: devices near their
        // local fail-safe deadline get a fresh heartbeat now rather
        // than at the next period boundary.
        for ep in self.stop_capable_endpoints() {
            self.send_heartbeat(ctx, ep);
        }
        let now = ctx.now();
        self.next_heartbeat = Some(now + HEARTBEAT_PERIOD);
        self.next_checkpoint = Some(now);
        self.drive_app(ctx, |app, actx| app.on_tick(actx));
    }

    /// Primary → standby demotion on proof of a higher-epoch peer (a
    /// checkpoint it could only have published after promoting). The
    /// ex-primary abandons every open concern — the new primary owns
    /// them now — including an open degraded window, which a standby
    /// could never close because it cannot send the exit's resumes.
    fn step_down(&mut self, ctx: &mut Context<'_, IceMsg>, seen_epoch: u64) {
        self.stepdowns += 1;
        self.role = SupervisorRole::Standby;
        self.max_epoch_seen = seen_epoch;
        self.last_ckpt = Some(ctx.now());
        self.inflight.clear();
        self.next_heartbeat = None;
        self.next_checkpoint = None;
        if self.degraded {
            if let Some(last) = self.degraded_log.last_mut() {
                if last.1.is_none() {
                    last.1 = Some(ctx.now());
                }
            }
        }
        self.degraded = false;
        self.alarm = None;
        self.healthy_since = None;
        self.degrade_stop_sent = false;
        self.stop_unconfirmed = false;
        ctx.trace("failover", format!("primary stepped down; peer at epoch {seen_epoch}"));
    }

    /// Vacates slots of monitoring devices that have gone silent, so a
    /// replacement device's periodic announce can claim them. Vacating
    /// a streaming slot drops the supervisor into degraded mode.
    fn check_device_liveness(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        let mut vacate: Vec<EndpointId> = Vec::new();
        for slot in self.manager.slot_names() {
            let Some(ep) = self.manager.endpoint_for(&slot) else { continue };
            // Only devices that promise data streams are liveness-checked;
            // command-only devices (pumps) are supervised by their acks.
            let publishes = self.manager.profile_for(&slot).is_some_and(|p| !p.streams.is_empty());
            if !publishes {
                continue;
            }
            let silent = match self.last_data.get(&ep) {
                Some(&t) => now.saturating_since(t) > DISASSOCIATION_TIMEOUT,
                // No liveness clock at all: start one now instead of
                // treating "no data yet" as an eternity of silence. The
                // announce path seeds the clock at association, so this
                // is defence in depth against a device being vacated on
                // the very first liveness tick after associating.
                None => {
                    self.last_data.insert(ep, now);
                    false
                }
            };
            if silent {
                vacate.push(ep);
            }
        }
        for ep in vacate {
            if let Some(slot) = self.manager.disassociate(ep) {
                self.assoc_active = false;
                self.last_data.remove(&ep);
                ctx.trace("assoc", format!("device {ep} silent; slot {slot} vacated"));
                self.enter_degraded(ctx, "sensor-silent");
            }
        }
    }

    /// Retries and expires outstanding commands. Non-retryable commands
    /// expire (and count as unanswered) one RTT deadline after the
    /// send; retryable commands are retransmitted with exponential
    /// backoff and expire after the last retry's deadline — a stop
    /// command that dies this way trips the ack watchdog.
    fn check_inflight(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        let mut retries: Vec<u64> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        for (&id, e) in &self.inflight {
            let waited = now.saturating_since(e.sent_at);
            if e.retryable && e.attempts <= MAX_RETRIES {
                // Backoff doubles per transmission: 2 s, 4 s, 8 s.
                let backoff = RETRY_BASE * (1u64 << (e.attempts - 1));
                if waited > backoff.max(self.rtt_deadline) {
                    retries.push(id);
                }
            } else if waited > self.rtt_deadline {
                expired.push(id);
            }
        }
        for id in retries {
            let e = self.inflight.get_mut(&id).expect("retry id is inflight");
            e.attempts += 1;
            e.sent_at = now;
            let (ep, command, attempts) = (e.endpoint, e.command, e.attempts);
            self.commands_retried += 1;
            ctx.trace("app", format!("retrying command id {id} (attempt {attempts})"));
            ctx.send(
                self.netctl,
                IceMsg::Net(NetOp::Send {
                    from: self.endpoint,
                    to: NetAddress::Endpoint(ep),
                    payload: NetPayload::Command { id, epoch: self.epoch, command },
                }),
            );
        }
        for id in expired {
            let e = self.inflight.remove(&id).expect("expired id is inflight");
            if matches!(e.command, IceCommand::Heartbeat) {
                // A dead heartbeat is a supervision gap, not a command
                // latency outlier: it counts against the heartbeat
                // figures and the next period retries implicitly.
                self.hb_unanswered += 1;
                continue;
            }
            self.rtt.record_unanswered();
            ctx.trace("app", format!("command id {id} unanswered; giving up"));
            if e.retryable && matches!(e.command, IceCommand::StopPump) {
                // A stop we cannot confirm is a lost pump: fail safe.
                self.watchdog_escalations += 1;
                self.stop_unconfirmed = true;
                self.enter_degraded(ctx, "stop-ack-lost");
            }
        }
        // While the pump's state is unknown, keep probing with fresh
        // stop commands: the first acknowledged stop clears the latch
        // and lets the hysteretic exit begin.
        if self.degraded
            && self.stop_unconfirmed
            && !self.inflight.values().any(|e| matches!(e.command, IceCommand::StopPump))
        {
            for ep in self.stop_capable_endpoints() {
                self.send_command(ctx, ep, IceCommand::StopPump);
            }
        }
    }

    /// Associated endpoints whose profile accepts an immediate stop.
    fn stop_capable_endpoints(&self) -> Vec<EndpointId> {
        self.manager
            .slot_names()
            .into_iter()
            .filter_map(|slot| {
                let ep = self.manager.endpoint_for(&slot)?;
                let p = self.manager.profile_for(&slot)?;
                p.accepts_command(CommandKind::Stop).then_some(ep)
            })
            .collect()
    }

    /// Enters degraded mode: latch the alarm, halt every associated
    /// stop-capable device, and start suppressing delivery-enabling app
    /// commands. Idempotent while already degraded.
    fn enter_degraded(&mut self, ctx: &mut Context<'_, IceMsg>, reason: &'static str) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.alarm = Some(reason);
        self.healthy_since = None;
        self.degraded_log.push((ctx.now(), None));
        ctx.trace("alarm", format!("degraded mode entered: {reason}"));
        for ep in self.stop_capable_endpoints() {
            self.degrade_stop_sent = true;
            self.send_command(ctx, ep, IceCommand::StopPump);
        }
    }

    /// Exits degraded mode once the system has been healthy (fully
    /// associated, fresh data on every stream) for the full hysteresis
    /// window. Lifts the supervisor's own halt if it imposed one.
    fn check_degraded_exit(&mut self, ctx: &mut Context<'_, IceMsg>) {
        if !self.degraded {
            return;
        }
        let now = ctx.now();
        let healthy = !self.stop_unconfirmed
            && self.manager.fully_associated()
            && self.manager.slot_names().iter().all(|slot| {
                let Some(ep) = self.manager.endpoint_for(slot) else { return false };
                let streams = self.manager.profile_for(slot).is_some_and(|p| !p.streams.is_empty());
                !streams
                    || self
                        .last_data
                        .get(&ep)
                        .is_some_and(|&t| now.saturating_since(t) <= EXIT_FRESHNESS)
            });
        if !healthy {
            self.healthy_since = None;
            return;
        }
        let since = *self.healthy_since.get_or_insert(now);
        if now.saturating_since(since) < DEGRADED_EXIT_HYSTERESIS {
            return;
        }
        self.degraded = false;
        self.alarm = None;
        self.healthy_since = None;
        if let Some(last) = self.degraded_log.last_mut() {
            last.1 = Some(now);
        }
        ctx.trace("alarm", "degraded mode exited: system healthy again");
        if self.degrade_stop_sent {
            self.degrade_stop_sent = false;
            for ep in self.stop_capable_endpoints() {
                self.send_command(ctx, ep, IceCommand::ResumePump);
            }
        }
    }

    fn drive_app(
        &mut self,
        ctx: &mut Context<'_, IceMsg>,
        f: impl FnOnce(&mut dyn ClinicalApp, &mut AppCtx<'_>),
    ) {
        let (outbox, notes) = {
            let now = ctx.now();
            let mut app_ctx = AppCtx::new(now, &self.manager, ctx.rng());
            f(self.app.as_mut(), &mut app_ctx);
            app_ctx.into_parts()
        };
        for note in notes {
            ctx.trace("app", note);
        }
        for (slot, command) in outbox {
            // While degraded, the supervisor holds the fail-safe state:
            // app commands that would re-enable delivery are suppressed
            // until the hysteretic exit.
            if self.degraded
                && matches!(command, IceCommand::GrantTicket { .. } | IceCommand::ResumePump)
            {
                self.commands_suppressed += 1;
                ctx.trace("app", format!("degraded: suppressed {command:?} to {slot}"));
                continue;
            }
            match self.manager.endpoint_for(&slot) {
                Some(ep) => self.send_command(ctx, ep, command),
                None => ctx.trace("app", format!("command to unassociated slot {slot} dropped")),
            }
        }
    }
}

impl Actor<IceMsg> for Supervisor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        // A crashed supervisor processes nothing — announcements, data,
        // acks, and checkpoints all fall on the floor — but the tick
        // keeps rescheduling so a transient crash window recovers.
        if matches!(
            self.fault.active(ctx.now()),
            Some(FaultKind::SupervisorCrash | FaultKind::Crash)
        ) {
            if matches!(msg, IceMsg::Tick) {
                ctx.schedule_self(self.step, IceMsg::Tick);
            }
            return;
        }
        match msg {
            IceMsg::Tick => {
                let now = ctx.now();
                if self.role == SupervisorRole::Standby {
                    // A standby only watches the checkpoint stream. The
                    // silence clock is seeded at the first tick so a
                    // standby powered on before its primary does not
                    // promote instantly.
                    if self.replication.is_some() {
                        let last = *self.last_ckpt.get_or_insert(now);
                        if now.saturating_since(last) > CHECKPOINT_PERIOD * MISSED_CHECKPOINT_LIMIT
                        {
                            self.promote(ctx);
                        }
                    }
                    ctx.schedule_self(self.step, IceMsg::Tick);
                    return;
                }
                self.check_device_liveness(ctx);
                self.check_inflight(ctx);
                self.check_degraded_exit(ctx);
                self.drive_app(ctx, |app, actx| app.on_tick(actx));
                // Supervision heartbeats to every stop-capable device
                // keep the devices' local fail-safe watchdogs fed.
                let due_hb = *self.next_heartbeat.get_or_insert(now);
                if now >= due_hb {
                    for ep in self.stop_capable_endpoints() {
                        self.send_heartbeat(ctx, ep);
                    }
                    self.next_heartbeat = Some(now + HEARTBEAT_PERIOD);
                }
                if self.replication.is_some() {
                    let due_ckpt = *self.next_checkpoint.get_or_insert(now);
                    if now >= due_ckpt {
                        self.publish_checkpoint(ctx);
                        self.next_checkpoint = Some(now + CHECKPOINT_PERIOD);
                    }
                }
                ctx.schedule_self(self.step, IceMsg::Tick);
            }
            IceMsg::Net(NetOp::Deliver { from, payload }) => match payload {
                NetPayload::Announce { profile, endpoint } => {
                    let outcome = self.manager.on_announce(endpoint, &profile);
                    if matches!(outcome, AssociationOutcome::Associated { .. }) {
                        ctx.trace("assoc", format!("{profile}: {outcome:?}"));
                        // Newly associated devices start their liveness
                        // clock now.
                        self.last_data.insert(endpoint, ctx.now());
                    }
                    if self.manager.fully_associated() && !self.assoc_active {
                        self.assoc_active = true;
                        self.associations_completed += 1;
                        self.associated_at.get_or_insert(ctx.now());
                        ctx.trace("assoc", "all slots associated; app active");
                        self.drive_app(ctx, |app, actx| app.on_associated(actx));
                    }
                }
                NetPayload::Data { kind, value, sampled_at } => {
                    // Data is only accepted from *associated* devices:
                    // an unvetted bedside device must not drive control
                    // decisions, even if it publishes on the right topic.
                    if self.manager.slot_of(from).is_none() {
                        self.data_ignored += 1;
                        return;
                    }
                    self.data_received += 1;
                    self.last_data.insert(from, ctx.now());
                    self.drive_app(ctx, |app, actx| app.on_data(actx, kind, value, sampled_at));
                }
                NetPayload::Ack { id, command, applied_at } => {
                    if matches!(command, IceCommand::Heartbeat) {
                        let now = ctx.now();
                        if let Some(e) = self.inflight.remove(&id) {
                            self.hb_acked += 1;
                            let rtt = now.saturating_since(e.first_sent_at);
                            self.hb_rtt_ms.push(rtt.as_secs_f64() * 1000.0);
                        }
                        // A supervision gap at least as long as the
                        // device's local fail-safe deadline means its
                        // watchdog latched while we (or a dead
                        // predecessor) were away: release it, unless
                        // the system is degraded and the latch is
                        // exactly what we want.
                        let prev = self.hb_last_acked.insert(from, now);
                        let gap = prev.map(|t| now.saturating_since(t));
                        if gap.is_none_or(|g| g >= FAILSAFE_RELEASE_GAP) && !self.degraded {
                            // `prev == None` covers a freshly promoted
                            // standby: it has no ack history, but the
                            // old primary's silence may well have
                            // latched the device.
                            if self.failovers > 0 || gap.is_some() {
                                self.send_command(ctx, from, IceCommand::ResumePump);
                            }
                        }
                        return;
                    }
                    if let Some(e) = self.inflight.remove(&id) {
                        self.rtt.record(ctx.now().saturating_since(e.first_sent_at));
                        if matches!(e.command, IceCommand::StopPump) {
                            // A confirmed stop: the pump is reachable
                            // and halted, so the watchdog latch clears.
                            self.stop_unconfirmed = false;
                        }
                    }
                    self.drive_app(ctx, |app, actx| app.on_ack(actx, command, applied_at));
                }
                NetPayload::Checkpoint {
                    epoch,
                    next_command_id,
                    degraded,
                    stop_unconfirmed,
                    inflight_ids,
                    last_data,
                } => {
                    if epoch > self.epoch && self.role == SupervisorRole::Primary {
                        // Someone with a higher epoch is alive and
                        // publishing: we are the stale half of a healed
                        // partition. Yield.
                        self.step_down(ctx, epoch);
                        return;
                    }
                    if self.role != SupervisorRole::Standby || epoch < self.max_epoch_seen {
                        return;
                    }
                    self.max_epoch_seen = epoch;
                    self.last_ckpt = Some(ctx.now());
                    // The id high-water mark only ratchets up: device
                    // dedup windows never see a reused (epoch, id).
                    self.next_command_id = self.next_command_id.max(next_command_id);
                    self.ckpt_degraded = degraded;
                    self.ckpt_stop_unconfirmed = stop_unconfirmed;
                    self.ckpt_inflight_ids = inflight_ids;
                    for (ep, t) in last_data {
                        let e = self.last_data.entry(ep).or_insert(t);
                        *e = (*e).max(t);
                    }
                }
                NetPayload::Command { .. } => {
                    // Supervisors do not accept commands.
                    ctx.trace("app", format!("unexpected command from {from}"));
                }
            },
            IceMsg::PressButton | IceMsg::Net(NetOp::Send { .. }) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppCtx;
    use crate::netctl::NetworkController;
    use mcps_device::profile::{DeviceClass, DeviceRequirementSet, Requirement};
    use mcps_net::fabric::Fabric;
    use mcps_net::qos::LinkQos;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::kernel::Simulation;
    use mcps_sim::time::SimTime;

    /// A minimal app that records its callbacks.
    #[derive(Debug, Default)]
    struct Probe {
        associated_calls: u32,
        data_points: Vec<(VitalKind, f64)>,
        ticks: u32,
    }

    impl ClinicalApp for Probe {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new(
                "monitor",
                vec![Requirement::Class(DeviceClass::Monitor)],
            )]
        }
        fn on_associated(&mut self, _ctx: &mut AppCtx<'_>) {
            self.associated_calls += 1;
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _at: SimTime) {
            self.data_points.push((kind, value));
        }
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {
            self.ticks += 1;
        }
    }

    /// An app driving a pump slot: sends one scripted command as soon
    /// as the pump associates.
    #[derive(Debug)]
    struct OneShot {
        command: IceCommand,
        sent: bool,
    }

    impl OneShot {
        fn new(command: IceCommand) -> Self {
            OneShot { command, sent: false }
        }
    }

    impl ClinicalApp for OneShot {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new("pump", vec![Requirement::Class(DeviceClass::Infusion)])]
        }
        fn on_associated(&mut self, ctx: &mut AppCtx<'_>) {
            if !self.sent {
                self.sent = true;
                ctx.command("pump", self.command);
            }
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, _kind: VitalKind, _value: f64, _at: SimTime) {}
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
    }

    fn deliver(sim: &mut Simulation<IceMsg>, sup: ActorId, from: EndpointId, payload: NetPayload) {
        sim.schedule(sim.now(), sup, IceMsg::Net(NetOp::Deliver { from, payload }));
        sim.run();
    }

    fn setup() -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        setup_with(Probe::default())
    }

    fn setup_with(app: impl ClinicalApp) -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let sup_ep = fabric.add_endpoint("sup");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim
            .add_actor("supervisor", Supervisor::new(app, nc, sup_ep, SimDuration::from_secs(2)));
        (sim, sup, dev, sup_ep)
    }

    fn monitor_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::monitor::pulse_oximeter("S-1").profile().clone()
    }

    fn pump_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::pump::PcaPump::profile("P-1", false)
    }

    #[test]
    fn data_from_unassociated_devices_is_ignored() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 97.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 0);
        assert_eq!(s.data_ignored(), 1);
        assert!(s.app_as::<Probe>().unwrap().data_points.is_empty());
    }

    #[test]
    fn association_gates_data_and_fires_callback() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert!(s.manager().fully_associated());
            assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
            assert_eq!(s.associations_completed(), 1);
        }
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 96.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 1);
        assert_eq!(s.app_as::<Probe>().unwrap().data_points, vec![(VitalKind::Spo2, 96.0)]);
    }

    #[test]
    fn duplicate_announce_does_not_refire_on_associated() {
        let (mut sim, sup, dev, _) = setup();
        for _ in 0..3 {
            deliver(
                &mut sim,
                sup,
                dev,
                NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            );
        }
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
        assert_eq!(s.associations_completed(), 1);
    }

    #[test]
    fn silent_monitor_is_disassociated_on_tick() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Supervisor ticks for 40 s with no data: liveness vacates.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.manager().fully_associated(), "silent device must vacate its slot");
        assert!(s.app_as::<Probe>().unwrap().ticks > 30);
        // Losing a streaming device is a degraded-mode entry.
        assert!(s.is_degraded());
        assert_eq!(s.alarm(), Some("sensor-silent"));
    }

    /// Regression: `check_device_liveness` used to treat a *missing*
    /// liveness clock as infinite silence, so a freshly associated
    /// device whose clock had not been seeded was vacated on the very
    /// first liveness tick. A missing entry must instead start the
    /// clock at the current instant.
    #[test]
    fn missing_liveness_clock_is_seeded_not_vacated() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Simulate the pre-fix state: associated, but no liveness clock
        // (the announce-time seeding is what normally prevents this).
        sim.actor_as_mut::<Supervisor>(sup).unwrap().last_data.remove(&dev);
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(
            s.manager().fully_associated(),
            "a device with no data *yet* must not be vacated instantly"
        );
        assert!(!s.is_degraded());
        // The clock the tick seeded now ages normally: 40 s of real
        // silence later the device is gone.
        let mut sim2 = sim;
        sim2.run_until(sim2.now() + SimDuration::from_secs(40));
        assert!(!sim2.actor_as::<Supervisor>(sup).unwrap().manager().fully_associated());
    }

    /// Regression: inflight entries for commands whose acks never come
    /// used to leak forever — and precisely the worst RTTs were the
    /// ones missing from the deadline statistics. They must expire at
    /// the RTT deadline and count as unanswered.
    #[test]
    fn lost_ack_expires_inflight_and_counts_unanswered() {
        // GrantTicket is non-retryable: expiry happens one deadline
        // after the send, with no retransmission.
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::GrantTicket {
            validity: SimDuration::from_secs(15),
        }));
        // The pump endpoint is bound to no actor, so the command (and
        // any ack) vanishes into the void.
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(10));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.commands_sent(), 1);
        assert_eq!(s.commands_retried(), 0, "ticket grants are never retried");
        assert!(
            s.inflight.values().all(|e| matches!(e.command, IceCommand::Heartbeat)),
            "expired command entries must be removed (only live heartbeats may remain)"
        );
        assert_eq!(s.rtt().unanswered(), 1, "dead heartbeats must not pollute command RTTs");
        let (hb_sent, _, hb_unanswered) = s.heartbeat_counts();
        assert!(hb_sent >= 2, "the pump is stop-capable, so it is heartbeated");
        assert!(hb_unanswered >= 1, "unanswered heartbeats land in their own counter");
        assert!(!s.is_degraded(), "a lost grant is not a lost pump");
    }

    /// A stop command whose acks are all lost is retried with backoff
    /// and then escalated by the ack watchdog to degraded mode.
    #[test]
    fn lost_stop_ack_trips_watchdog_into_degraded() {
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::StopPump));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(60));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        // The app's stop is retried MAX_RETRIES times, then the
        // watchdog fires; the degrade path keeps probing with fresh
        // stops (each with its own retry cycle) as long as none is
        // confirmed. The pump never answers, so degraded mode holds.
        assert!(s.commands_retried() >= 2 * u64::from(MAX_RETRIES));
        let probes =
            s.inflight.values().filter(|e| !matches!(e.command, IceCommand::Heartbeat)).count();
        assert!(probes <= 1, "at most the current probe is outstanding");
        assert!(s.watchdog_escalations() >= 2);
        assert!(s.is_degraded(), "an unconfirmed stop must hold degraded mode");
        assert_eq!(s.alarm(), Some("stop-ack-lost"));
        assert!(s.rtt().unanswered() >= 2, "each dead stop counts once, not per retry");
        assert_eq!(
            s.rtt().unanswered() * u64::from(MAX_RETRIES),
            s.commands_retried(),
            "every dead stop ran a full retry cycle"
        );
    }

    /// Degraded mode is exited hysteretically: only after the system
    /// has been fully associated with fresh data for the whole settling
    /// window, and transient recoveries reset the clock.
    #[test]
    fn degraded_mode_exits_hysteretically_on_recovery() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // 40 s of silence: vacate + degrade.
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        assert!(sim.actor_as::<Supervisor>(sup).unwrap().is_degraded());
        // Device comes back: re-announce, then fresh data every second.
        let back = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            back,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            }),
        );
        for i in 1..=30u64 {
            let at = back + SimDuration::from_secs(i);
            sim.schedule(
                at,
                sup,
                IceMsg::Net(NetOp::Deliver {
                    from: dev,
                    payload: NetPayload::Data {
                        kind: VitalKind::Spo2,
                        value: 97.0,
                        sampled_at: at,
                    },
                }),
            );
        }
        // Inside the hysteresis window the mode must hold.
        sim.run_until(back + SimDuration::from_secs(10));
        assert!(
            sim.actor_as::<Supervisor>(sup).unwrap().is_degraded(),
            "must stay degraded inside the hysteresis window"
        );
        sim.run_until(back + SimDuration::from_secs(30));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.is_degraded(), "healthy for > hysteresis window: degraded mode ends");
        assert!(s.alarm().is_none(), "alarm clears on exit");
        let log = s.degraded_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].1.is_some(), "the degraded window is closed");
        assert_eq!(s.associations_completed(), 2, "recovery counted as a hot-swap");
    }

    fn setup_standby(
        app: impl ClinicalApp,
    ) -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let standby_ep = fabric.add_endpoint("standby");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim.add_actor(
            "standby",
            Supervisor::new(app, nc, standby_ep, SimDuration::from_secs(2))
                .with_role(SupervisorRole::Standby)
                .with_redundancy(""),
        );
        (sim, sup, dev, standby_ep)
    }

    /// A standby that stops hearing checkpoints promotes itself with an
    /// epoch that fences the old primary, and adopts the replicated
    /// degraded latch so failover cannot forget an active alarm.
    #[test]
    fn standby_promotes_on_checkpoint_silence_and_inherits_degraded() {
        let (mut sim, sup, primary_ep, _) = setup_standby(Probe::default());
        deliver(
            &mut sim,
            sup,
            primary_ep,
            NetPayload::Checkpoint {
                epoch: 1,
                next_command_id: 7,
                degraded: true,
                stop_unconfirmed: false,
                inflight_ids: vec![5, 6],
                last_data: Vec::new(),
            },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert_eq!(s.role(), SupervisorRole::Standby);
            assert_eq!(s.replicated_inflight_ids(), &[5, 6]);
            assert_eq!(s.failovers(), 0);
        }
        // The primary now falls silent: after MISSED_CHECKPOINT_LIMIT
        // periods without a checkpoint the standby takes over.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(20));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Primary);
        assert_eq!(s.failovers(), 1);
        assert_eq!(s.epoch(), 2, "promotion epoch exceeds everything the primary stamped");
        assert!(s.is_degraded(), "a replicated degraded latch survives failover");
        assert_eq!(s.alarm(), Some("inherited-degraded"));
        assert!(s.next_command_id >= 7, "the id high-water mark is adopted");
    }

    /// A standby that never saw a single checkpoint (primary died
    /// before replicating) still promotes past the configured primary
    /// epoch: the fence holds even for an instant primary death.
    #[test]
    fn standby_promotes_past_epoch_one_without_any_checkpoint() {
        let (mut sim, sup, _, _) = setup_standby(Probe::default());
        sim.schedule(SimTime::ZERO, sup, IceMsg::Tick);
        sim.run_until(SimTime::from_secs(20));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Primary);
        assert!(s.epoch() >= 2, "a promoted standby must outrank the epoch-1 primary");
    }

    /// A primary that sees a higher-epoch checkpoint is the stale half
    /// of a healed partition: it steps down, abandoning its inflight
    /// commands and closing any open degraded window (a standby cannot
    /// run the degraded exit, so leaving it open would leak forever).
    #[test]
    fn primary_steps_down_and_closes_degraded_window_on_higher_epoch() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // 40 s of silence: vacate + degrade, window left open.
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        assert!(sim.actor_as::<Supervisor>(sup).unwrap().is_degraded());
        let at = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            at,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Checkpoint {
                    epoch: 9,
                    next_command_id: 0,
                    degraded: false,
                    stop_unconfirmed: false,
                    inflight_ids: Vec::new(),
                    last_data: Vec::new(),
                },
            }),
        );
        sim.run_until(at + SimDuration::from_secs(2));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Standby);
        assert_eq!(s.stepdowns(), 1);
        assert!(!s.is_degraded(), "the higher-epoch primary owns the degraded state now");
        assert!(s.alarm().is_none());
        assert!(s.degraded_log().last().unwrap().1.is_some(), "open window closed at stepdown");
        assert!(s.inflight.is_empty(), "inflight commands are abandoned at stepdown");
    }

    /// Standbys own no part of the command channel: app commands are
    /// suppressed (counted separately from degraded suppression) and no
    /// heartbeats are sent until promotion.
    #[test]
    fn standby_suppresses_app_commands_and_sends_nothing() {
        let (mut sim, sup, dev, _) = setup_standby(OneShot::new(IceCommand::StopPump));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // Short of the promotion trigger, so it stays standby throughout.
        sim.run_until(sim.now() + SimDuration::from_secs(8));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.role(), SupervisorRole::Standby);
        assert_eq!(s.commands_sent(), 0, "standbys put nothing on the wire");
        assert!(s.standby_suppressed() >= 1, "the app's stop was suppressed, not sent");
        assert_eq!(s.heartbeat_counts().0, 0, "standbys do not heartbeat");
    }

    /// A heartbeat-ack gap longer than the device's local fail-safe
    /// deadline means its watchdog latched while the supervisor was
    /// away: the supervisor owes it a resume once contact resumes (and
    /// the system is not otherwise degraded).
    #[test]
    fn heartbeat_gap_triggers_failsafe_release_resume() {
        let (mut sim, sup, dev, _) = setup_with(OneShot::new(IceCommand::GrantTicket {
            validity: SimDuration::from_secs(15),
        }));
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: pump_profile(), endpoint: dev },
        );
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        // First heartbeat goes out at the first tick with id 1 (the
        // app's grant took id 0); ack it promptly.
        let t1 = sim.now() + SimDuration::from_secs(1);
        sim.schedule(
            t1,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Ack { id: 1, command: IceCommand::Heartbeat, applied_at: t1 },
            }),
        );
        // Then 20 s of ack silence — past the fail-safe deadline — and
        // a late heartbeat ack (its id long expired; the gap logic does
        // not care).
        let t2 = t1 + SimDuration::from_secs(20);
        sim.schedule(
            t2,
            sup,
            IceMsg::Net(NetOp::Deliver {
                from: dev,
                payload: NetPayload::Ack {
                    id: 999,
                    command: IceCommand::Heartbeat,
                    applied_at: t2,
                },
            }),
        );
        sim.run_until(t2 + SimDuration::from_secs(1));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        let (hb_sent, hb_acked, _) = s.heartbeat_counts();
        assert!(hb_sent >= 4);
        assert_eq!(hb_acked, 1, "only the inflight-matched ack counts toward RTTs");
        assert_eq!(s.heartbeat_rtts_ms().len(), 1);
        assert!(s.heartbeat_rtts_ms()[0] >= 999.0, "RTT measured from the heartbeat send");
        assert_eq!(s.commands_sent(), 2, "the grant plus exactly one fail-safe release ResumePump");
        assert!(
            s.inflight.values().any(|e| matches!(e.command, IceCommand::ResumePump)),
            "the release resume is on the wire"
        );
    }
}
