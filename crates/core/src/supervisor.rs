//! The ICE supervisor actor.
//!
//! Hosts one clinical app: runs device association, forwards published
//! data into the app, dispatches the app's slot-addressed commands onto
//! the network, and tracks command round-trip latency.

use mcps_net::fabric::EndpointId;
use mcps_net::monitor::DeadlineTracker;
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::app::{AppCtx, ClinicalApp};
use crate::manager::{AssociationOutcome, DeviceManager};
use crate::msg::{IceMsg, NetAddress, NetOp, NetPayload};

/// A monitoring device whose data has not arrived for this long is
/// considered gone: its slot is vacated so a replacement can associate
/// (bedside hot-swap).
const DISASSOCIATION_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// The supervisor actor.
pub struct Supervisor {
    app: Box<dyn ClinicalApp>,
    manager: DeviceManager,
    netctl: ActorId,
    endpoint: EndpointId,
    step: SimDuration,
    /// Whether the app is currently fully associated (drives
    /// `on_associated` edges and hot-swap bookkeeping).
    assoc_active: bool,
    /// Completed associations (1 initially; +1 per successful hot-swap).
    associations_completed: u32,
    /// Last data arrival per associated endpoint.
    last_data: BTreeMap<EndpointId, SimTime>,
    data_received: u64,
    /// Data points dropped because the sender was not associated.
    data_ignored: u64,
    commands_sent: u64,
    /// Id for the next outgoing command (unique per supervisor).
    next_command_id: u64,
    /// Outstanding command send times for RTT measurement, keyed by
    /// command id so concurrent commands of the same kind pair with
    /// their own acks.
    inflight: BTreeMap<u64, SimTime>,
    rtt: DeadlineTracker,
    associated_at: Option<SimTime>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("data_received", &self.data_received)
            .field("commands_sent", &self.commands_sent)
            .field("associated_at", &self.associated_at)
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor hosting `app`, with a command-RTT deadline
    /// used for the E4 statistics.
    pub fn new(
        app: impl ClinicalApp,
        netctl: ActorId,
        endpoint: EndpointId,
        rtt_deadline: SimDuration,
    ) -> Self {
        let manager = DeviceManager::new(app.requirements());
        Supervisor {
            app: Box::new(app),
            manager,
            netctl,
            endpoint,
            step: SimDuration::from_secs(1),
            assoc_active: false,
            associations_completed: 0,
            last_data: BTreeMap::new(),
            data_received: 0,
            data_ignored: 0,
            commands_sent: 0,
            next_command_id: 0,
            inflight: BTreeMap::new(),
            rtt: DeadlineTracker::new(rtt_deadline),
            associated_at: None,
        }
    }

    /// The device manager (association state).
    pub fn manager(&self) -> &DeviceManager {
        &self.manager
    }

    /// Data points received from associated devices.
    pub fn data_received(&self) -> u64 {
        self.data_received
    }

    /// Data points ignored because the sender was not associated.
    pub fn data_ignored(&self) -> u64 {
        self.data_ignored
    }

    /// Commands sent.
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Command round-trip statistics.
    pub fn rtt(&self) -> &DeadlineTracker {
        &self.rtt
    }

    /// When association (first) completed, if it did.
    pub fn associated_at(&self) -> Option<SimTime> {
        self.associated_at
    }

    /// Completed associations (> 1 means at least one hot-swap).
    pub fn associations_completed(&self) -> u32 {
        self.associations_completed
    }

    /// Typed access to the hosted app's concrete state.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Vacates slots of monitoring devices that have gone silent, so a
    /// replacement device's periodic announce can claim them.
    fn check_device_liveness(&mut self, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        let mut vacate: Vec<EndpointId> = Vec::new();
        for slot in self.manager.slot_names() {
            let Some(ep) = self.manager.endpoint_for(&slot) else { continue };
            // Only devices that promise data streams are liveness-checked;
            // command-only devices (pumps) are supervised by their acks.
            let publishes = self.manager.profile_for(&slot).is_some_and(|p| !p.streams.is_empty());
            if !publishes {
                continue;
            }
            let silent = self
                .last_data
                .get(&ep)
                .is_none_or(|&t| now.saturating_since(t) > DISASSOCIATION_TIMEOUT);
            if silent {
                vacate.push(ep);
            }
        }
        for ep in vacate {
            if let Some(slot) = self.manager.disassociate(ep) {
                self.assoc_active = false;
                self.last_data.remove(&ep);
                ctx.trace("assoc", format!("device {ep} silent; slot {slot} vacated"));
            }
        }
    }

    fn drive_app(
        &mut self,
        ctx: &mut Context<'_, IceMsg>,
        f: impl FnOnce(&mut dyn ClinicalApp, &mut AppCtx<'_>),
    ) {
        let (outbox, notes) = {
            let now = ctx.now();
            let mut app_ctx = AppCtx::new(now, &self.manager, ctx.rng());
            f(self.app.as_mut(), &mut app_ctx);
            app_ctx.into_parts()
        };
        for note in notes {
            ctx.trace("app", note);
        }
        for (slot, command) in outbox {
            match self.manager.endpoint_for(&slot) {
                Some(ep) => {
                    self.commands_sent += 1;
                    let id = self.next_command_id;
                    self.next_command_id += 1;
                    self.inflight.insert(id, ctx.now());
                    ctx.send(
                        self.netctl,
                        IceMsg::Net(NetOp::Send {
                            from: self.endpoint,
                            to: NetAddress::Endpoint(ep),
                            payload: NetPayload::Command { id, command },
                        }),
                    );
                }
                None => ctx.trace("app", format!("command to unassociated slot {slot} dropped")),
            }
        }
    }
}

impl Actor<IceMsg> for Supervisor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        match msg {
            IceMsg::Tick => {
                self.check_device_liveness(ctx);
                self.drive_app(ctx, |app, actx| app.on_tick(actx));
                ctx.schedule_self(self.step, IceMsg::Tick);
            }
            IceMsg::Net(NetOp::Deliver { from, payload }) => match payload {
                NetPayload::Announce { profile, endpoint } => {
                    let outcome = self.manager.on_announce(endpoint, &profile);
                    if matches!(outcome, AssociationOutcome::Associated { .. }) {
                        ctx.trace("assoc", format!("{profile}: {outcome:?}"));
                        // Newly associated devices start their liveness
                        // clock now.
                        self.last_data.insert(endpoint, ctx.now());
                    }
                    if self.manager.fully_associated() && !self.assoc_active {
                        self.assoc_active = true;
                        self.associations_completed += 1;
                        self.associated_at.get_or_insert(ctx.now());
                        ctx.trace("assoc", "all slots associated; app active");
                        self.drive_app(ctx, |app, actx| app.on_associated(actx));
                    }
                }
                NetPayload::Data { kind, value, sampled_at } => {
                    // Data is only accepted from *associated* devices:
                    // an unvetted bedside device must not drive control
                    // decisions, even if it publishes on the right topic.
                    if self.manager.slot_of(from).is_none() {
                        self.data_ignored += 1;
                        return;
                    }
                    self.data_received += 1;
                    self.last_data.insert(from, ctx.now());
                    self.drive_app(ctx, |app, actx| app.on_data(actx, kind, value, sampled_at));
                }
                NetPayload::Ack { id, command, applied_at } => {
                    if let Some(sent) = self.inflight.remove(&id) {
                        self.rtt.record(ctx.now().saturating_since(sent));
                    }
                    self.drive_app(ctx, |app, actx| app.on_ack(actx, command, applied_at));
                }
                NetPayload::Command { .. } => {
                    // Supervisors do not accept commands.
                    ctx.trace("app", format!("unexpected command from {from}"));
                }
            },
            IceMsg::PressButton | IceMsg::Net(NetOp::Send { .. }) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppCtx;
    use crate::netctl::NetworkController;
    use mcps_device::profile::{DeviceClass, DeviceRequirementSet, Requirement};
    use mcps_net::fabric::Fabric;
    use mcps_net::qos::LinkQos;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::kernel::Simulation;
    use mcps_sim::time::SimTime;

    /// A minimal app that records its callbacks.
    #[derive(Debug, Default)]
    struct Probe {
        associated_calls: u32,
        data_points: Vec<(VitalKind, f64)>,
        ticks: u32,
    }

    impl ClinicalApp for Probe {
        fn requirements(&self) -> Vec<DeviceRequirementSet> {
            vec![DeviceRequirementSet::new(
                "monitor",
                vec![Requirement::Class(DeviceClass::Monitor)],
            )]
        }
        fn on_associated(&mut self, _ctx: &mut AppCtx<'_>) {
            self.associated_calls += 1;
        }
        fn on_data(&mut self, _ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _at: SimTime) {
            self.data_points.push((kind, value));
        }
        fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {
            self.ticks += 1;
        }
    }

    fn deliver(sim: &mut Simulation<IceMsg>, sup: ActorId, from: EndpointId, payload: NetPayload) {
        sim.schedule(sim.now(), sup, IceMsg::Net(NetOp::Deliver { from, payload }));
        sim.run();
    }

    fn setup() -> (Simulation<IceMsg>, ActorId, EndpointId, EndpointId) {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev = fabric.add_endpoint("dev");
        let sup_ep = fabric.add_endpoint("sup");
        let mut sim: Simulation<IceMsg> = Simulation::new(4);
        let nc = sim.add_actor("netctl", NetworkController::new(fabric));
        let sup = sim.add_actor(
            "supervisor",
            Supervisor::new(Probe::default(), nc, sup_ep, SimDuration::from_secs(2)),
        );
        (sim, sup, dev, sup_ep)
    }

    fn monitor_profile() -> mcps_device::profile::DeviceProfile {
        mcps_device::monitor::pulse_oximeter("S-1").profile().clone()
    }

    #[test]
    fn data_from_unassociated_devices_is_ignored() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 97.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 0);
        assert_eq!(s.data_ignored(), 1);
        assert!(s.app_as::<Probe>().unwrap().data_points.is_empty());
    }

    #[test]
    fn association_gates_data_and_fires_callback() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        {
            let s = sim.actor_as::<Supervisor>(sup).unwrap();
            assert!(s.manager().fully_associated());
            assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
            assert_eq!(s.associations_completed(), 1);
        }
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Data { kind: VitalKind::Spo2, value: 96.0, sampled_at: SimTime::ZERO },
        );
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.data_received(), 1);
        assert_eq!(s.app_as::<Probe>().unwrap().data_points, vec![(VitalKind::Spo2, 96.0)]);
    }

    #[test]
    fn duplicate_announce_does_not_refire_on_associated() {
        let (mut sim, sup, dev, _) = setup();
        for _ in 0..3 {
            deliver(
                &mut sim,
                sup,
                dev,
                NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
            );
        }
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert_eq!(s.app_as::<Probe>().unwrap().associated_calls, 1);
        assert_eq!(s.associations_completed(), 1);
    }

    #[test]
    fn silent_monitor_is_disassociated_on_tick() {
        let (mut sim, sup, dev, _) = setup();
        deliver(
            &mut sim,
            sup,
            dev,
            NetPayload::Announce { profile: monitor_profile(), endpoint: dev },
        );
        // Supervisor ticks for 40 s with no data: liveness vacates.
        sim.schedule(sim.now(), sup, IceMsg::Tick);
        sim.run_until(sim.now() + SimDuration::from_secs(40));
        let s = sim.actor_as::<Supervisor>(sup).unwrap();
        assert!(!s.manager().fully_associated(), "silent device must vacate its slot");
        assert!(s.app_as::<Probe>().unwrap().ticks > 30);
    }
}
