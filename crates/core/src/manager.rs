//! The ICE device manager: on-demand association.
//!
//! A clinical app declares *slots* ("I need a pulse oximeter that
//! publishes SpO₂ at ≥ 1 Hz and a pump that accepts stop commands");
//! devices announce capability profiles; the manager matches profiles
//! to slots, vendor-agnostically. The app only starts once every slot
//! is filled — the paper's answer to systems "assembled at the
//! patient's bedside" from whatever devices happen to be present.

use mcps_device::profile::{DeviceProfile, DeviceRequirementSet};
use mcps_net::fabric::EndpointId;
use serde::{Deserialize, Serialize};

/// Result of processing one announcement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssociationOutcome {
    /// The device filled the named slot.
    Associated {
        /// The slot that was filled.
        slot: String,
    },
    /// No open slot's requirements were satisfied.
    Rejected,
    /// The device was already associated.
    Duplicate,
}

/// The device manager.
///
/// State is slot-indexed: `filled[i]` is the device (if any) occupying
/// `slots[i]`. Bedside apps declare a handful of slots, so name lookups
/// are a linear scan over a contiguous array — cheaper and far more
/// compact than the former name-keyed `BTreeMap`, which matters when a
/// campus run keeps 10k of these managers resident.
#[derive(Debug, Clone, Default)]
pub struct DeviceManager {
    slots: Vec<DeviceRequirementSet>,
    filled: Vec<Option<(EndpointId, DeviceProfile)>>,
    rejected: Vec<(EndpointId, String)>,
}

impl DeviceManager {
    /// Creates a manager with the app's required slots.
    pub fn new(slots: Vec<DeviceRequirementSet>) -> Self {
        let filled = slots.iter().map(|_| None).collect();
        DeviceManager { slots, filled, rejected: Vec::new() }
    }

    #[inline]
    fn slot_index(&self, slot: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.slot == slot)
    }

    /// Processes a device announcement.
    pub fn on_announce(
        &mut self,
        endpoint: EndpointId,
        profile: &DeviceProfile,
    ) -> AssociationOutcome {
        if self.filled.iter().flatten().any(|(ep, _)| *ep == endpoint) {
            return AssociationOutcome::Duplicate;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if self.filled[i].is_none() && slot.matches(profile) {
                self.filled[i] = Some((endpoint, profile.clone()));
                return AssociationOutcome::Associated { slot: slot.slot.clone() };
            }
        }
        self.rejected.push((endpoint, profile.to_string()));
        AssociationOutcome::Rejected
    }

    /// Whether every slot is filled.
    pub fn fully_associated(&self) -> bool {
        self.filled.iter().all(Option::is_some)
    }

    /// The endpoint filling a slot, if any.
    pub fn endpoint_for(&self, slot: &str) -> Option<EndpointId> {
        let i = self.slot_index(slot)?;
        self.filled[i].as_ref().map(|(ep, _)| *ep)
    }

    /// The profile filling a slot, if any.
    pub fn profile_for(&self, slot: &str) -> Option<&DeviceProfile> {
        let i = self.slot_index(slot)?;
        self.filled[i].as_ref().map(|(_, p)| p)
    }

    /// The slot an endpoint currently fills, if any.
    pub fn slot_of(&self, endpoint: EndpointId) -> Option<&str> {
        self.slots
            .iter()
            .zip(&self.filled)
            .find(|(_, f)| f.as_ref().is_some_and(|(ep, _)| *ep == endpoint))
            .map(|(s, _)| s.slot.as_str())
    }

    /// All slot names, in declaration order. Borrows — no per-call
    /// `String` clones; the supervisor walks this every liveness tick.
    pub fn slot_names(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|s| s.slot.as_str())
    }

    /// Slot name, endpoint and profile of every *filled* slot, in
    /// declaration order.
    pub fn associated(&self) -> impl Iterator<Item = (&str, EndpointId, &DeviceProfile)> {
        self.slots
            .iter()
            .zip(&self.filled)
            .filter_map(|(s, f)| f.as_ref().map(|(ep, p)| (s.slot.as_str(), *ep, p)))
    }

    /// Slots still waiting for a device.
    pub fn open_slots(&self) -> Vec<&str> {
        self.slots
            .iter()
            .zip(&self.filled)
            .filter(|(_, f)| f.is_none())
            .map(|(s, _)| s.slot.as_str())
            .collect()
    }

    /// Announcements that matched nothing (endpoint, profile summary).
    pub fn rejected(&self) -> &[(EndpointId, String)] {
        &self.rejected
    }

    /// Drops the association of `endpoint` (device disappeared).
    /// Returns the slot it vacated, if any.
    pub fn disassociate(&mut self, endpoint: EndpointId) -> Option<String> {
        let i =
            self.filled.iter().position(|f| f.as_ref().is_some_and(|(ep, _)| *ep == endpoint))?;
        self.filled[i] = None;
        Some(self.slots[i].slot.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_device::profile::{CommandKind, DeviceClass, LatencyClass, Requirement};
    use mcps_device::pump::PcaPump;
    use mcps_net::fabric::Fabric;
    use mcps_patient::vitals::VitalKind;
    use mcps_sim::time::SimDuration;

    fn slots() -> Vec<DeviceRequirementSet> {
        vec![
            DeviceRequirementSet::new(
                "oximeter",
                vec![Requirement::Stream {
                    kind: VitalKind::Spo2,
                    max_period: SimDuration::from_secs(2),
                    latency_class: LatencyClass::NearRealtime,
                }],
            ),
            DeviceRequirementSet::new(
                "pump",
                vec![
                    Requirement::Class(DeviceClass::Infusion),
                    Requirement::Command(CommandKind::GrantTicket),
                ],
            ),
        ]
    }

    fn endpoints(n: usize) -> Vec<EndpointId> {
        let mut f = Fabric::new();
        (0..n).map(|i| f.add_endpoint(&format!("e{i}"))).collect()
    }

    #[test]
    fn association_fills_matching_slots() {
        let mut m = DeviceManager::new(slots());
        let eps = endpoints(2);
        let oximeter = mcps_device::monitor::pulse_oximeter("SN-1");
        assert_eq!(
            m.on_announce(eps[0], oximeter.profile()),
            AssociationOutcome::Associated { slot: "oximeter".into() }
        );
        assert!(!m.fully_associated());
        assert_eq!(m.open_slots(), vec!["pump"]);
        let pump_profile = PcaPump::profile("SN-2", true);
        assert_eq!(
            m.on_announce(eps[1], &pump_profile),
            AssociationOutcome::Associated { slot: "pump".into() }
        );
        assert!(m.fully_associated());
        assert_eq!(m.endpoint_for("pump"), Some(eps[1]));
        assert!(m.profile_for("oximeter").is_some());
    }

    #[test]
    fn non_matching_device_rejected() {
        let mut m = DeviceManager::new(slots());
        let eps = endpoints(1);
        // A pump without ticket support satisfies neither slot.
        let legacy = PcaPump::profile("SN-3", false);
        assert_eq!(m.on_announce(eps[0], &legacy), AssociationOutcome::Rejected);
        assert_eq!(m.rejected().len(), 1);
    }

    #[test]
    fn duplicate_announce_ignored() {
        let mut m = DeviceManager::new(slots());
        let eps = endpoints(1);
        let oximeter = mcps_device::monitor::pulse_oximeter("SN-1");
        m.on_announce(eps[0], oximeter.profile());
        assert_eq!(m.on_announce(eps[0], oximeter.profile()), AssociationOutcome::Duplicate);
    }

    #[test]
    fn disassociate_reopens_slot() {
        let mut m = DeviceManager::new(slots());
        let eps = endpoints(1);
        let oximeter = mcps_device::monitor::pulse_oximeter("SN-1");
        m.on_announce(eps[0], oximeter.profile());
        assert_eq!(m.disassociate(eps[0]), Some("oximeter".into()));
        assert!(m.open_slots().contains(&"oximeter"));
        assert_eq!(m.disassociate(eps[0]), None);
    }
}
