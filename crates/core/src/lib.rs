//! # mcps-core — the Integrated Clinical Environment
//!
//! The paper's primary contribution, implemented: an on-demand medical
//! cyber-physical system in the ICE style. Devices announce capability
//! profiles, a device manager matches them against the slots a clinical
//! app requires, a supervisor hosts the app, and a network controller
//! imposes realistic QoS on everything that flows between them.
//!
//! Layers:
//!
//! * [`msg`] — the message plane ([`msg::IceMsg`], commands, payloads).
//! * [`netctl`] — the network controller actor over `mcps-net`.
//! * [`body`] — the patient's body as shared *physical* state, plus the
//!   patient actor (physiology advance, button presses).
//! * [`actors`] — network wrappers for pumps, monitors, ventilators and
//!   x-ray machines.
//! * [`manager`] — on-demand device association.
//! * [`app`] / [`apps`] — the clinical-app interface and the two
//!   flagship apps: the PCA safety interlock and the x-ray/ventilator
//!   coordinator.
//! * [`supervisor`] — the actor hosting an app.
//! * [`scenarios`] — complete runnable scenarios with scored outcomes.
//!
//! ## Example: run the paper's flagship closed-loop scenario
//!
//! ```
//! use mcps_core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
//! use mcps_patient::cohort::{CohortConfig, CohortGenerator};
//! use mcps_sim::time::SimDuration;
//!
//! let cohort = CohortGenerator::new(1, CohortConfig::default());
//! let mut config = PcaScenarioConfig::baseline(1, cohort.params(0));
//! config.duration = SimDuration::from_mins(10);
//! let outcome = run_pca_scenario(&config);
//! assert!(outcome.associated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
pub mod app;
pub mod apps;
pub mod body;
pub mod manager;
pub mod msg;
pub mod netctl;
pub mod scenarios;
pub mod supervisor;
pub mod vecmap;

pub use app::{AppCtx, ClinicalApp};
pub use apps::{PcaSafetyApp, WardMonitorApp, WorkflowStyle, XRayCoordinatorApp};
pub use body::{PatientActor, PatientBody};
pub use manager::{AssociationOutcome, DeviceManager};
pub use msg::{IceCommand, IceMsg, NetAddress, NetOp, NetPayload};
pub use netctl::NetworkController;
pub use supervisor::sans_io::{CheckpointState, CoreInput, CoreOutputs, SupervisorCore};
pub use supervisor::{Supervisor, SupervisorRole};
