//! A sorted-vector map for small, hot per-bed state.
//!
//! `BTreeMap` allocates pointer-chased nodes sized for hundreds of
//! entries; per-bed supervisor tables (`last_data`, `inflight`,
//! heartbeat acks) hold a handful. At campus scale — 10k live
//! [`SupervisorCore`](crate::supervisor::SupervisorCore)s — those nodes
//! dominate the cache footprint. [`VecMap`] stores entries in one
//! contiguous `Vec`, sorted by key: lookups are a binary search over a
//! few cache-resident pairs, iteration is a linear walk in key order
//! (identical to `BTreeMap` iteration order, which the replication
//! checkpoints rely on for determinism), and inserting an
//! already-largest key — the monotone command-id pattern of the
//! inflight table — is an O(1) push.

/// A map backed by a `Vec` of `(key, value)` pairs sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        VecMap { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn pos(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.pos(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.pos(key).ok().map(|i| &mut self.entries[i].1)
    }

    /// Inserts `key → value`, returning the previous value if the key
    /// was present. Keys larger than everything stored insert with a
    /// push, no search or shift.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.entries.last().is_none_or(|(k, _)| *k < key) {
            self.entries.push((key, value));
            return None;
        }
        match self.pos(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// The value for `key`, inserting `value` first if absent.
    pub fn get_or_insert(&mut self, key: K, value: V) -> &mut V {
        let i = match self.pos(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, value));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.pos(key).ok().map(|i| self.entries.remove(i).1)
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: VecMap<u64, &str> = VecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"three"));
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn iteration_is_key_sorted_like_btreemap() {
        use std::collections::BTreeMap;
        let keys = [9u64, 2, 7, 4, 0, 11, 3];
        let mut vm: VecMap<u64, u64> = VecMap::new();
        let mut bt: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            vm.insert(k, k * 10);
            bt.insert(k, k * 10);
        }
        let v: Vec<_> = vm.iter().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<_> = bt.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(v, b);
        assert_eq!(vm.keys().copied().collect::<Vec<_>>(), bt.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn monotone_keys_take_the_push_path() {
        let mut m: VecMap<u64, u64> = VecMap::new();
        for k in 0..100 {
            assert_eq!(m.insert(k, k), None);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn get_or_insert_matches_entry_semantics() {
        let mut m: VecMap<u32, u32> = VecMap::new();
        *m.get_or_insert(7, 1) += 10;
        *m.get_or_insert(7, 99) += 100;
        assert_eq!(m.get(&7), Some(&111));
        m.clear();
        assert!(m.is_empty());
    }
}
