//! Campus-scale simulation: thousands of beds across wards and floors.
//!
//! The throughput experiment (E12). A hospital campus is composed of
//! wards; each ward is one network segment (its own [`Fabric`]) shared
//! by every bed on the ward, mirroring real deployments where a floor
//! switch carries the floor's traffic and nothing else. Bed mixes are
//! heterogeneous:
//!
//! * **PCA beds** — the full closed loop from the multibed scenario
//!   (pump, 1 Hz oximeter + capnograph, [`PcaSafetyApp`] supervisor,
//!   1 s physiology). ICU wards carry many; general wards a few.
//! * **Monitor-only beds** — a spot-check oximeter at tens-of-seconds
//!   cadence feeding a [`WardMonitorApp`] supervisor, with physiology
//!   and supervision stepped at matching slow cadences. The vast
//!   majority of a campus, and the reason 10k concurrent beds fit in
//!   one machine's event budget.
//! * **Procedure rooms** — an x-ray/ventilator pair coordinated by an
//!   [`XRayCoordinatorApp`] (one per ward when enabled).
//!
//! Admissions are staggered over a configurable window from per-bed
//! seeds; a fraction of monitor beds is *discharged* (their monitor
//! goes dark via a scripted crash fault) in the last quarter of the
//! run, exercising disassociation at scale. Wards run as seed-isolated
//! shards through the costed dispatcher
//! ([`mcps_sim::shard::run_shards_costed_in`]): ICU wards cost several
//! times a general ward, which is exactly the imbalance sorted-by-cost
//! dispatch exists to absorb.

use mcps_control::interlock::InterlockConfig;
use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_device::monitor::{capnograph, pulse_oximeter, ChannelConfig, VitalsMonitor};
use mcps_device::pump::{PcaPump, PcaPumpConfig};
use mcps_device::ventilator::{Ventilator, VentilatorConfig};
use mcps_device::xray::{XRayConfig, XRayMachine};
use mcps_net::fabric::Fabric;
use mcps_net::qos::LinkQos;
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_patient::patient::VirtualPatient;
use mcps_patient::sensors::SensorSpec;
use mcps_patient::vitals::VitalKind;
use mcps_sim::kernel::Simulation;
use mcps_sim::shard::{run_shards_costed_in, ShardStats};
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::actors::{MonitorActor, PumpActor, VentilatorActor, XRayActor};
use crate::apps::{PcaSafetyApp, WardMonitorApp, WorkflowStyle, XRayCoordinatorApp};
use crate::body::{PatientActor, PatientBody};
use crate::msg::IceMsg;
use crate::netctl::{topics, NetworkController};
use crate::supervisor::Supervisor;

/// Configuration of the campus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of wards (each its own fabric segment and shard).
    pub wards: u32,
    /// Beds per ward.
    pub beds_per_ward: u32,
    /// Wards `0..icu_wards` are ICU-flavoured.
    pub icu_wards: u32,
    /// PCA closed loops per ICU ward (the rest are monitor-only).
    pub icu_pca_beds: u32,
    /// PCA closed loops per general ward.
    pub ward_pca_beds: u32,
    /// Whether each ward has an x-ray/ventilator procedure room.
    pub procedure_rooms: bool,
    /// Run length.
    pub duration: SimDuration,
    /// Segment QoS.
    pub qos: LinkQos,
    /// Patient cohort mix.
    pub cohort: CohortConfig,
    /// Spot-check sample period of monitor-only beds. Must stay below
    /// the supervisor's disassociation timeout (30 s) or every ward
    /// bed flaps in and out of degraded mode.
    pub monitor_sample_period: SimDuration,
    /// Physiology step of monitor-only beds.
    pub monitor_patient_step: SimDuration,
    /// Supervisor control-tick step of monitor-only beds.
    pub monitor_sup_step: SimDuration,
    /// Admissions are staggered over this window from t = 0.
    pub admission_window: SimDuration,
    /// Fraction of monitor-only beds discharged (monitor goes dark) in
    /// the last quarter of the run.
    pub discharge_fraction: f64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            seed: 0,
            wards: 4,
            beds_per_ward: 25,
            icu_wards: 1,
            icu_pca_beds: 8,
            ward_pca_beds: 1,
            procedure_rooms: true,
            duration: SimDuration::from_mins(10),
            qos: LinkQos::wired(),
            cohort: CohortConfig::default(),
            monitor_sample_period: SimDuration::from_secs(15),
            monitor_patient_step: SimDuration::from_secs(10),
            monitor_sup_step: SimDuration::from_secs(10),
            admission_window: SimDuration::from_secs(60),
            discharge_fraction: 0.05,
        }
    }
}

impl CampusConfig {
    /// Total beds on the campus.
    pub fn total_beds(&self) -> u32 {
        self.wards * self.beds_per_ward
    }
}

/// One ward's slice of the campus: everything a shard needs to build
/// its simulation without looking at any other ward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WardPlan {
    /// Ward index (global).
    pub ward: u32,
    /// Shard-isolated seed (splitmix of the master seed and the ward).
    pub seed: u64,
    /// PCA closed loops on this ward.
    pub pca_beds: u32,
    /// Monitor-only beds on this ward.
    pub monitor_beds: u32,
    /// Whether the ward has a procedure room.
    pub procedure_room: bool,
}

impl WardPlan {
    /// Estimated relative cost of simulating this ward, in events per
    /// simulated second. Only ratios matter to the dispatcher: a PCA
    /// bed ticks ~5 actors at ~1 Hz plus per-sample network hops; a
    /// monitor bed pays one hop per spot-check plus slow supervisor
    /// and physiology ticks; a procedure room is dominated by the
    /// 4 Hz ventilator.
    pub fn cost(&self, cfg: &CampusConfig) -> u64 {
        let pca = 12.0 * f64::from(self.pca_beds);
        let per_mon = 3.0 / cfg.monitor_sample_period.as_secs_f64().max(0.001)
            + 1.0 / cfg.monitor_sup_step.as_secs_f64().max(0.001)
            + 1.0 / cfg.monitor_patient_step.as_secs_f64().max(0.001);
        let monitor = per_mon * f64::from(self.monitor_beds);
        let proc = if self.procedure_room { 10.0 } else { 0.0 };
        // Scale to integers for the dispatcher; +1 keeps every ward
        // strictly positive.
        ((pca + monitor + proc) * 100.0) as u64 + 1
    }
}

/// Summary of one ward after the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WardOutcome {
    /// Ward index.
    pub ward: u32,
    /// Beds simulated (PCA + monitor-only).
    pub beds: u32,
    /// Beds whose supervisor fully associated at least once.
    pub admitted: u32,
    /// Beds still fully associated at the end of the run.
    pub associated_at_end: u32,
    /// Monitor beds discharged (monitor scripted dark).
    pub discharged: u32,
    /// Vitals accepted by ward supervisors.
    pub data_received: u64,
    /// Vitals refused (unassociated sender / pre-association noise).
    pub data_ignored: u64,
    /// Ward desaturation alarms (monitor-only beds).
    pub desat_alarms: u64,
    /// Interlock tickets granted (PCA beds).
    pub grants_issued: u64,
    /// X-ray exposure sequences completed (procedure room).
    pub xray_completed: u32,
    /// Kernel events processed by this ward's simulation.
    pub events: u64,
}

/// Splits the campus into per-ward shard plans with isolated seeds.
pub fn campus_ward_plans(config: &CampusConfig) -> Vec<WardPlan> {
    (0..config.wards)
        .map(|w| {
            let pca = if w < config.icu_wards { config.icu_pca_beds } else { config.ward_pca_beds };
            let pca = pca.min(config.beds_per_ward);
            WardPlan {
                ward: w,
                seed: splitmix(config.seed ^ (u64::from(w) << 1)),
                pca_beds: pca,
                monitor_beds: config.beds_per_ward - pca,
                procedure_room: config.procedure_rooms,
            }
        })
        .collect()
}

fn splitmix(seed: u64) -> u64 {
    let mut mix = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix = (mix ^ (mix >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    mix = (mix ^ (mix >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    mix ^ (mix >> 31)
}

/// A spot-check pulse oximeter: one SpO₂ channel at ward cadence.
fn spot_check_oximeter(serial: &str, period: SimDuration) -> VitalsMonitor {
    VitalsMonitor::new(
        "Acme",
        "SpotCheck-2",
        serial,
        period,
        vec![ChannelConfig {
            kind: VitalKind::Spo2,
            sensor: SensorSpec::default_for(VitalKind::Spo2),
            averaging: 1,
        }],
    )
}

/// Runs one ward on its own fabric segment and summarizes it.
pub fn run_campus_ward(config: &CampusConfig, plan: &WardPlan) -> WardOutcome {
    let mut sim: Simulation<IceMsg> = Simulation::new(plan.seed);
    sim.trace_mut().set_enabled(false);
    let cohort = CohortGenerator::new(plan.seed, config.cohort);
    let beds = plan.pca_beds + plan.monitor_beds;

    // Pre-size the segment: a PCA bed wires 4 endpoints and ~7 topics,
    // a monitor bed 2 endpoints and ~3 topics, the procedure room 3
    // endpoints; links are created lazily per (src, dst) pair, roughly
    // one per device→supervisor flow.
    let n_eps = 4 * plan.pca_beds as usize + 2 * plan.monitor_beds as usize + 3;
    let n_topics = 8 * plan.pca_beds as usize + 4 * plan.monitor_beds as usize + 4;
    let mut fabric = Fabric::with_capacity(n_eps, n_topics, n_eps * 2);
    fabric.set_default_qos(config.qos);

    struct BedRefs {
        sup_id: mcps_sim::actor::ActorId,
        discharged: bool,
    }
    let mut bed_refs: Vec<BedRefs> = Vec::with_capacity(beds as usize);

    // Endpoints first (fabric wiring), then actors.
    enum Wiring {
        Pca {
            scope: String,
            ep_ox: mcps_net::fabric::EndpointId,
            ep_cap: mcps_net::fabric::EndpointId,
            ep_pump: mcps_net::fabric::EndpointId,
            ep_sup: mcps_net::fabric::EndpointId,
        },
        Monitor {
            scope: String,
            ep_mon: mcps_net::fabric::EndpointId,
            ep_sup: mcps_net::fabric::EndpointId,
        },
    }
    let mut wiring = Vec::with_capacity(beds as usize);
    for bed in 0..beds {
        let scope = format!("w{}b{bed}", plan.ward);
        if bed < plan.pca_beds {
            let ep_ox = fabric.add_endpoint(&format!("{scope}/oximeter"));
            let ep_cap = fabric.add_endpoint(&format!("{scope}/capnograph"));
            let ep_pump = fabric.add_endpoint(&format!("{scope}/pump"));
            let ep_sup = fabric.add_endpoint(&format!("{scope}/supervisor"));
            fabric.subscribe(ep_sup, topics::announce_scoped(&scope));
            for kind in VitalKind::ALL {
                fabric.subscribe(ep_sup, topics::vitals_scoped(&scope, kind));
            }
            wiring.push(Wiring::Pca { scope, ep_ox, ep_cap, ep_pump, ep_sup });
        } else {
            let ep_mon = fabric.add_endpoint(&format!("{scope}/monitor"));
            let ep_sup = fabric.add_endpoint(&format!("{scope}/supervisor"));
            fabric.subscribe(ep_sup, topics::announce_scoped(&scope));
            fabric.subscribe(ep_sup, topics::vitals_scoped(&scope, VitalKind::Spo2));
            wiring.push(Wiring::Monitor { scope, ep_mon, ep_sup });
        }
    }
    let proc_eps = plan.procedure_room.then(|| {
        let ep_vent = fabric.add_endpoint("proc/ventilator");
        let ep_xray = fabric.add_endpoint("proc/xray");
        let ep_sup = fabric.add_endpoint("proc/supervisor");
        // The vent and x-ray announce unscoped; only this supervisor
        // listens there, so the room stays isolated from the beds.
        fabric.subscribe(ep_sup, topics::announce());
        (ep_vent, ep_xray, ep_sup)
    });

    let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
    let window_ms = config.admission_window.as_micros().div_ceil(1000).max(1);
    let dur_secs = config.duration.as_secs_f64();
    for (bed, wires) in wiring.into_iter().enumerate() {
        let bed_u = bed as u32;
        let bed_seed = splitmix(plan.seed ^ (0xBED0 + u64::from(bed_u)));
        // Staggered admission: this bed's actors all start here.
        let admit_ms = bed_seed % window_ms;
        let body = PatientBody::new(VirtualPatient::new(cohort.params(u64::from(bed_u))));
        match wires {
            Wiring::Pca { scope, ep_ox, ep_cap, ep_pump, ep_sup } => {
                let pump_cfg = PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() };
                let pump_id = sim.add_actor(
                    &format!("{scope}/pump"),
                    PumpActor::new(PcaPump::new(pump_cfg), body.clone(), nc_id, ep_pump)
                        .with_scope(&scope),
                );
                let ox_id = sim.add_actor(
                    &format!("{scope}/oximeter"),
                    MonitorActor::new(
                        pulse_oximeter(&format!("OX-{}-{bed}", plan.ward)),
                        body.clone(),
                        nc_id,
                        ep_ox,
                        FaultPlan::none(),
                    )
                    .with_scope(&scope),
                );
                let cap_id = sim.add_actor(
                    &format!("{scope}/capnograph"),
                    MonitorActor::new(
                        capnograph(&format!("CAP-{}-{bed}", plan.ward)),
                        body.clone(),
                        nc_id,
                        ep_cap,
                        FaultPlan::none(),
                    )
                    .with_scope(&scope),
                );
                let patient_id = sim.add_actor(
                    &format!("{scope}/patient"),
                    PatientActor::new(body.clone(), Some(pump_id), 0.0),
                );
                let sup_id = sim.add_actor(
                    &format!("{scope}/supervisor"),
                    Supervisor::new(
                        PcaSafetyApp::new(InterlockConfig::default()),
                        nc_id,
                        ep_sup,
                        SimDuration::from_secs(2),
                    ),
                );
                {
                    let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
                    nc.bind(ep_ox, ox_id);
                    nc.bind(ep_cap, cap_id);
                    nc.bind(ep_pump, pump_id);
                    nc.bind(ep_sup, sup_id);
                }
                for &(id, off) in &[
                    (pump_id, 100u64),
                    (ox_id, 200),
                    (cap_id, 300),
                    (patient_id, 0),
                    (sup_id, 500),
                ] {
                    sim.schedule(SimTime::from_millis(admit_ms + off), id, IceMsg::Tick);
                }
                bed_refs.push(BedRefs { sup_id, discharged: false });
            }
            Wiring::Monitor { scope, ep_mon, ep_sup } => {
                // Discharge lottery: a slice of monitor beds goes dark
                // at a per-bed time in the last quarter of the run.
                let lot = splitmix(bed_seed ^ 0xD15C);
                let discharged = (lot % 10_000) as f64 / 10_000.0 < config.discharge_fraction;
                let fault = if discharged {
                    let frac = 0.70 + 0.15 * ((lot >> 16) % 1000) as f64 / 1000.0;
                    FaultPlan::none().with_fault(
                        FaultKind::Crash,
                        SimTime::from_secs((dur_secs * frac) as u64),
                        None,
                    )
                } else {
                    FaultPlan::none()
                };
                let mon_id = sim.add_actor(
                    &format!("{scope}/monitor"),
                    MonitorActor::new(
                        spot_check_oximeter(
                            &format!("SC-{}-{bed}", plan.ward),
                            config.monitor_sample_period,
                        ),
                        body.clone(),
                        nc_id,
                        ep_mon,
                        fault,
                    )
                    .with_scope(&scope),
                );
                let patient_id = sim.add_actor(
                    &format!("{scope}/patient"),
                    PatientActor::new(body.clone(), None, 0.0)
                        .with_step(config.monitor_patient_step),
                );
                let sup_id = sim.add_actor(
                    &format!("{scope}/supervisor"),
                    Supervisor::new(
                        WardMonitorApp::new(),
                        nc_id,
                        ep_sup,
                        SimDuration::from_secs(5),
                    )
                    .with_step(config.monitor_sup_step),
                );
                {
                    let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
                    nc.bind(ep_mon, mon_id);
                    nc.bind(ep_sup, sup_id);
                }
                for &(id, off) in &[(mon_id, 200u64), (patient_id, 0), (sup_id, 500)] {
                    sim.schedule(SimTime::from_millis(admit_ms + off), id, IceMsg::Tick);
                }
                bed_refs.push(BedRefs { sup_id, discharged });
            }
        }
    }

    let proc_sup = proc_eps.map(|(ep_vent, ep_xray, ep_sup)| {
        let vent_id = sim.add_actor(
            "proc/ventilator",
            VentilatorActor::new(
                Ventilator::new(SimTime::ZERO, VentilatorConfig::default()),
                nc_id,
                ep_vent,
            ),
        );
        let xray_id = sim.add_actor(
            "proc/xray",
            XRayActor::new(XRayMachine::new(XRayConfig::default()), nc_id, ep_xray),
        );
        let exposures = (config.duration.as_secs_f64() / 120.0).floor().max(1.0) as u32;
        let sup_id = sim.add_actor(
            "proc/supervisor",
            Supervisor::new(
                XRayCoordinatorApp::new(
                    WorkflowStyle::Automated,
                    exposures,
                    SimDuration::from_secs(90),
                    SimDuration::from_secs(15),
                ),
                nc_id,
                ep_sup,
                SimDuration::from_secs(2),
            ),
        );
        {
            let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
            nc.bind(ep_vent, vent_id);
            nc.bind(ep_xray, xray_id);
            nc.bind(ep_sup, sup_id);
        }
        sim.schedule(SimTime::from_millis(50), vent_id, IceMsg::Tick);
        sim.schedule(SimTime::from_millis(60), xray_id, IceMsg::Tick);
        sim.schedule(SimTime::from_millis(500), sup_id, IceMsg::Tick);
        sup_id
    });

    sim.run_until(SimTime::ZERO + config.duration);

    let mut out = WardOutcome {
        ward: plan.ward,
        beds,
        admitted: 0,
        associated_at_end: 0,
        discharged: 0,
        data_received: 0,
        data_ignored: 0,
        desat_alarms: 0,
        grants_issued: 0,
        xray_completed: 0,
        events: sim.events_processed(),
    };
    for b in &bed_refs {
        let sup = sim.actor_as::<Supervisor>(b.sup_id).expect("supervisor");
        out.admitted += u32::from(sup.associated_at().is_some());
        out.associated_at_end += u32::from(sup.manager().fully_associated());
        out.discharged += u32::from(b.discharged);
        out.data_received += sup.data_received();
        out.data_ignored += sup.data_ignored();
        if let Some(app) = sup.app_as::<WardMonitorApp>() {
            out.desat_alarms += app.desat_alarms();
        }
        if let Some(app) = sup.app_as::<PcaSafetyApp>() {
            out.grants_issued += app.interlock().grants_issued();
        }
    }
    if let Some(sup_id) = proc_sup {
        let sup = sim.actor_as::<Supervisor>(sup_id).expect("proc supervisor");
        if let Some(app) = sup.app_as::<XRayCoordinatorApp>() {
            out.xray_completed = app.completed();
        }
    }
    out
}

/// Runs the whole campus as one costed shard batch (ICU wards are
/// several times the cost of general wards; the dispatcher hands the
/// expensive wards out first). `workers = 0` means one worker per
/// available core. Ward outcomes come back in ward order regardless of
/// dispatch order, and are byte-identical to running each plan serially
/// — each ward is an independent simulation with an isolated seed.
pub fn run_campus(config: &CampusConfig, workers: usize) -> (Vec<WardOutcome>, ShardStats) {
    let plans = campus_ward_plans(config);
    let costs: Vec<u64> = plans.iter().map(|p| p.cost(config)).collect();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        workers
    };
    run_shards_costed_in(plans, &costs, workers, || (), |(), plan| run_campus_ward(config, &plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampusConfig {
        CampusConfig {
            seed: 7,
            wards: 3,
            beds_per_ward: 6,
            icu_wards: 1,
            icu_pca_beds: 3,
            ward_pca_beds: 1,
            procedure_rooms: true,
            duration: SimDuration::from_mins(5),
            admission_window: SimDuration::from_secs(30),
            discharge_fraction: 0.2,
            ..CampusConfig::default()
        }
    }

    #[test]
    fn every_bed_admits_and_undischared_beds_stay_associated() {
        let (wards, _) = run_campus(&small(), 1);
        assert_eq!(wards.len(), 3);
        for w in &wards {
            assert_eq!(w.admitted, w.beds, "ward {}: {w:?}", w.ward);
            assert_eq!(w.associated_at_end, w.beds - w.discharged, "ward {}: {w:?}", w.ward);
            assert!(w.data_received > 0, "ward {}: {w:?}", w.ward);
            // Scoped topics: refused traffic is pre-association noise
            // only, not a flood of foreign data.
            assert!(w.data_ignored < 100 * u64::from(w.beds), "ward {}: {w:?}", w.ward);
        }
        // ICU ward 0 issues PCA tickets; the campus takes x-rays.
        assert!(wards[0].grants_issued > 0, "{:?}", wards[0]);
        assert!(wards.iter().any(|w| w.xray_completed > 0), "{wards:?}");
    }

    #[test]
    fn ward_plans_partition_and_isolate_seeds() {
        let cfg = small();
        let plans = campus_ward_plans(&cfg);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].pca_beds, 3);
        assert_eq!(plans[1].pca_beds, 1);
        for p in &plans {
            assert_eq!(p.pca_beds + p.monitor_beds, cfg.beds_per_ward);
        }
        for (i, a) in plans.iter().enumerate() {
            for b in plans.iter().skip(i + 1) {
                assert_ne!(a.seed, b.seed, "wards {} and {} share a seed", a.ward, b.ward);
            }
        }
        // ICU wards cost more than general wards — the imbalance the
        // costed dispatcher is for. (Without the flat procedure-room
        // term the ratio is the bed mix alone.)
        assert!(plans[0].cost(&cfg) > plans[1].cost(&cfg), "{plans:?}");
        let no_proc = CampusConfig { procedure_rooms: false, ..cfg };
        let bare = campus_ward_plans(&no_proc);
        assert!(bare[0].cost(&no_proc) > 2 * bare[1].cost(&no_proc), "{bare:?}");
    }

    #[test]
    fn parallel_campus_is_byte_identical_to_serial() {
        let cfg = small();
        let (par, stats) = run_campus(&cfg, 3);
        let serial: Vec<WardOutcome> =
            campus_ward_plans(&cfg).iter().map(|p| run_campus_ward(&cfg, p)).collect();
        assert_eq!(serde_json::to_string(&par).unwrap(), serde_json::to_string(&serial).unwrap());
        assert!(stats.balance() > 0.0 && stats.balance() <= 1.0);
    }
}
