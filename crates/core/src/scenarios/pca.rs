//! The end-to-end PCA closed-loop safety scenario.
//!
//! Assembles the full ICE stack — virtual patient, PCA pump, pulse
//! oximeter, capnograph, network fabric, supervisor with the
//! [`PcaSafetyApp`] — runs it for a
//! configurable duration, and harvests a [`PcaScenarioOutcome`]
//! combining physiological ground truth with system telemetry. This is
//! the engine behind experiments E1 (interlock efficacy), E4 (network
//! QoS sweep) and E8 (fault injection).

use mcps_control::interlock::InterlockConfig;
use mcps_device::faults::{FaultKind, FaultPlan};
use mcps_device::monitor::{capnograph, pulse_oximeter};
use mcps_device::pump::{PcaPump, PcaPumpConfig};
use mcps_net::fabric::{EndpointId, Fabric};
use mcps_net::qos::{LinkQos, OutagePlan};
use mcps_patient::patient::{PatientOutcome, PatientParams, VirtualPatient};
use mcps_patient::vitals::VitalKind;
use mcps_sim::kernel::Simulation;
use mcps_sim::metrics::Telemetry;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::actors::{MonitorActor, PumpActor, LOCAL_FAILSAFE_DEADLINE};
use crate::apps::PcaSafetyApp;
use crate::body::{PatientActor, PatientBody};
use crate::msg::IceMsg;
use crate::netctl::{topics, NetworkController};
use crate::supervisor::{Supervisor, SupervisorRole};

/// Complete configuration of one PCA scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaScenarioConfig {
    /// Master seed (determines everything stochastic).
    pub seed: u64,
    /// Simulated therapy duration.
    pub duration: SimDuration,
    /// The patient.
    pub patient: PatientParams,
    /// The pump programme.
    pub pump: PcaPumpConfig,
    /// The supervisor's interlock, or `None` for the open-loop arm
    /// (no supervisor at all — the pre-MCPS world).
    pub interlock: Option<InterlockConfig>,
    /// Network QoS between every pair of endpoints.
    pub qos: LinkQos,
    /// Network outage windows applied to every link.
    pub outages: Vec<(SimTime, SimTime)>,
    /// PCA-by-proxy presses per hour (0 = none). These occur even when
    /// the patient is too sedated to press — the core overdose hazard.
    pub proxy_rate_per_hour: f64,
    /// Fault plan of the pulse oximeter.
    pub oximeter_fault: FaultPlan,
    /// Fault plan of the capnograph.
    pub capnograph_fault: FaultPlan,
    /// Fault plan of the pump's controller (command/ack plane): crash,
    /// delayed or duplicated acks.
    pub pump_fault: FaultPlan,
    /// If `true`, a second (backup) pulse oximeter is present at the
    /// bedside. It is rejected while the primary holds the slot, but
    /// its periodic announcements let it take over if the primary is
    /// disassociated (hot-swap).
    pub backup_oximeter: bool,
    /// If `true`, a warm standby supervisor shadows the primary: it
    /// consumes the same vitals, receives periodic state checkpoints
    /// over the replication topic, and promotes itself (with a fencing
    /// epoch) on checkpoint silence. Ignored in the open-loop arm.
    pub standby_supervisor: bool,
    /// Fault plan of the supervision layer itself.
    /// [`FaultKind::SupervisorCrash`] (and `Crash`) windows hit the
    /// *primary* supervisor; [`FaultKind::Partition`] windows split the
    /// fabric into two endpoint-bitmask groups (bit order = endpoint
    /// creation order: 0 oximeter, 1 capnograph, 2 pump, 3 supervisor,
    /// 4 standby supervisor, 5 backup oximeter).
    pub supervisor_fault: FaultPlan,
    /// Ground-truth timeline sampling period in seconds (0 = off).
    pub timeline_every_secs: u64,
    /// If `true`, export the kernel scheduler's timer-wheel counters
    /// (occupancy per level, cascades, ready-ring depth) into the run
    /// telemetry under the `sched.` prefix. Off by default so golden
    /// outcome hashes recorded before this knob existed stay valid.
    pub scheduler_telemetry: bool,
}

impl PcaScenarioConfig {
    /// A safe, fully-equipped baseline: ticket interlock, wired
    /// network, 4 h of therapy, no faults, moderate proxy pressing.
    pub fn baseline(seed: u64, patient: PatientParams) -> Self {
        PcaScenarioConfig {
            seed,
            duration: SimDuration::from_mins(240),
            patient,
            pump: PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() },
            interlock: Some(InterlockConfig::default()),
            qos: LinkQos::wired(),
            outages: Vec::new(),
            proxy_rate_per_hour: 1.0,
            oximeter_fault: FaultPlan::none(),
            capnograph_fault: FaultPlan::none(),
            pump_fault: FaultPlan::none(),
            backup_oximeter: false,
            standby_supervisor: false,
            supervisor_fault: FaultPlan::none(),
            timeline_every_secs: 0,
            scheduler_telemetry: false,
        }
    }

    /// The open-loop arm: same patient and hazards, no supervisor, a
    /// conventional pump (no ticket mode).
    pub fn open_loop(seed: u64, patient: PatientParams) -> Self {
        let mut cfg = Self::baseline(seed, patient);
        cfg.interlock = None;
        cfg.pump.ticket_mode = false;
        cfg
    }
}

/// Everything a PCA run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaScenarioOutcome {
    /// Physiological ground truth.
    pub patient: PatientOutcome,
    /// Total opioid delivered by the pump, mg.
    pub total_drug_mg: f64,
    /// Genuine patient demand presses.
    pub presses: u64,
    /// Proxy presses.
    pub proxy_presses: u64,
    /// Bolus decision counts keyed by decision name.
    pub bolus_decisions: BTreeMap<String, u32>,
    /// First instant of true danger (SpO₂ < 90), if it occurred.
    pub danger_onset_secs: Option<f64>,
    /// Seconds from danger onset to the pump actually ceasing delivery
    /// (0 if it was already stopped; `None` if it never stopped).
    pub stop_latency_secs: Option<f64>,
    /// Whether the app fully associated.
    pub associated: bool,
    /// Completed associations (2+ means a device hot-swap occurred).
    pub associations_completed: u32,
    /// Data points the supervisor received.
    pub data_received: u64,
    /// Commands the supervisor sent.
    pub commands_sent: u64,
    /// Retransmissions of unacknowledged safety commands.
    pub commands_retried: u64,
    /// App commands the supervisor suppressed while degraded.
    pub commands_suppressed: u64,
    /// Degraded-mode windows `(entered_secs, exited_secs)`; a window
    /// still open when the run ends is closed at the run's end instant,
    /// so every window contributes its full dwell time to accounting.
    pub degraded_windows_secs: Vec<(f64, Option<f64>)>,
    /// Times the ack watchdog escalated a lost stop command.
    pub watchdog_escalations: u32,
    /// Standby → primary promotions performed by the supervisor pair.
    pub failovers: u32,
    /// Highest fencing epoch reached by either supervisor (1 = the
    /// configured primary never lost control).
    pub supervisor_epoch: u64,
    /// Primary → standby demotions (split-brain resolutions after a
    /// partition heals).
    pub supervisor_stepdowns: u32,
    /// Times the pump's device-local fail-safe watchdog latched
    /// (supervision silence ≥ its deadline → basal-only safe state).
    pub local_failsafe_entries: u64,
    /// Transitions of the pump's local fail-safe latch:
    /// `(seconds, latched)`, oldest first.
    pub failsafe_transitions_secs: Vec<(f64, bool)>,
    /// Stale-epoch commands the pump rejected via the epoch fence.
    pub fenced_commands: u64,
    /// Same-epoch commands the pump observed from two different
    /// controllers — any value above 0 is a split-brain actuation.
    pub double_actuations: u64,
    /// Tickets granted (ticket strategy).
    pub grants_issued: u64,
    /// Network messages offered / scheduled for delivery.
    pub net_sent: u64,
    /// Network messages delivered.
    pub net_delivered: u64,
    /// Fraction of time the patient spent with adequate analgesia.
    pub frac_adequate_analgesia: f64,
    /// Transitions of the pump's delivery-permission state:
    /// `(seconds, permitted)`, oldest first.
    pub permit_transitions_secs: Vec<(f64, bool)>,
    /// Ground-truth timeline (empty unless `timeline_every_secs` > 0).
    pub timeline: Vec<crate::body::TimelinePoint>,
    /// Run telemetry harvested from the stack (network controller and
    /// fabric QoS counters under `net.*`). Experiment binaries merge
    /// these per-shard buses into their own aggregate.
    pub telemetry: Telemetry,
}

impl PcaScenarioOutcome {
    /// Whether the pump was permitted to deliver at `t_secs`, per the
    /// transition log (unpermitted before the first transition).
    pub fn permitted_at_secs(&self, t_secs: f64) -> bool {
        self.permit_transitions_secs
            .iter()
            .take_while(|(t, _)| *t <= t_secs)
            .last()
            .map(|(_, p)| *p)
            .unwrap_or(false)
    }

    /// Seconds from `at` until the pump ceased delivery (0 if it was
    /// already stopped at `at`; `None` if it never stopped afterwards).
    pub fn stop_after(&self, at: SimTime) -> Option<f64> {
        let at_secs = at.as_secs_f64();
        if !self.permitted_at_secs(at_secs) {
            return Some(0.0);
        }
        self.permit_transitions_secs
            .iter()
            .find(|(t, p)| *t >= at_secs && !p)
            .map(|(t, _)| t - at_secs)
    }
}

/// Runs one PCA scenario to completion.
pub fn run_pca_scenario(config: &PcaScenarioConfig) -> PcaScenarioOutcome {
    let mut sim: Simulation<IceMsg> = Simulation::new(config.seed);
    // Keep memory bounded on long runs; traces are for debugging.
    sim.trace_mut().set_enabled(false);

    // --- network fabric -------------------------------------------------
    let mut fabric = Fabric::new();
    fabric.set_default_qos(config.qos);
    let ep_ox = fabric.add_endpoint("oximeter");
    let ep_cap = fabric.add_endpoint("capnograph");
    let ep_pump = fabric.add_endpoint("pump");
    let ep_sup = fabric.add_endpoint("supervisor");
    let ep_standby = (config.interlock.is_some() && config.standby_supervisor)
        .then(|| fabric.add_endpoint("supervisor-standby"));
    let ep_ox2 = config.backup_oximeter.then(|| fabric.add_endpoint("oximeter-backup"));
    if !config.outages.is_empty() {
        let mut plan = OutagePlan::none();
        for &(a, b) in &config.outages {
            plan = plan.with_outage(a, b);
        }
        let mut eps = vec![ep_ox, ep_cap, ep_pump, ep_sup];
        eps.extend(ep_standby);
        eps.extend(ep_ox2);
        for &from in &eps {
            for &to in &eps {
                if from != to {
                    fabric.set_outages(from, to, plan.clone());
                }
            }
        }
    }
    // Partition faults translate into bidirectional link outages on
    // every cross-group pair; bit positions index endpoint creation
    // order (see `supervisor_fault` docs). Links within a group — and
    // to endpoints in neither mask — stay up.
    let indexed_eps: Vec<Option<EndpointId>> =
        vec![Some(ep_ox), Some(ep_cap), Some(ep_pump), Some(ep_sup), ep_standby, ep_ox2];
    for f in config.supervisor_fault.faults() {
        if let FaultKind::Partition { group_a, group_b } = f.kind {
            let pick = |mask: u8| -> Vec<EndpointId> {
                indexed_eps
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1u8 << i) != 0)
                    .filter_map(|(_, ep)| *ep)
                    .collect()
            };
            fabric.partition(&pick(group_a), &pick(group_b), f.at, f.until.unwrap_or(SimTime::MAX));
        }
    }
    fabric.subscribe(ep_sup, topics::announce());
    for kind in VitalKind::ALL {
        fabric.subscribe(ep_sup, topics::vitals(kind));
    }
    if let Some(eps) = ep_standby {
        fabric.subscribe(eps, topics::announce());
        for kind in VitalKind::ALL {
            fabric.subscribe(eps, topics::vitals(kind));
        }
        // Checkpoints flow primary → standby in steady state, and the
        // (healed) ex-primary hears the promoted standby's checkpoints
        // on the same topic — that is what forces its stepdown.
        fabric.subscribe(eps, topics::replication());
        fabric.subscribe(ep_sup, topics::replication());
    }

    // --- actors ----------------------------------------------------------
    let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
    let body = PatientBody::new(VirtualPatient::new(config.patient));
    let pump_id = {
        let mut actor = PumpActor::new(PcaPump::new(config.pump), body.clone(), nc_id, ep_pump)
            .with_faults(config.pump_fault.clone());
        if config.interlock.is_some() {
            // Supervised pumps run the local fail-safe watchdog; the
            // open-loop arm has no supervisor to heartbeat it, so the
            // watchdog would just permanently latch.
            actor = actor.with_supervision(LOCAL_FAILSAFE_DEADLINE);
        }
        sim.add_actor("pump", actor)
    };
    let ox_id = sim.add_actor(
        "oximeter",
        MonitorActor::new(
            pulse_oximeter("OX-1"),
            body.clone(),
            nc_id,
            ep_ox,
            config.oximeter_fault.clone(),
        ),
    );
    let cap_id = sim.add_actor(
        "capnograph",
        MonitorActor::new(
            capnograph("CAP-1"),
            body.clone(),
            nc_id,
            ep_cap,
            config.capnograph_fault.clone(),
        ),
    );
    let ox2_id = ep_ox2.map(|ep| {
        sim.add_actor(
            "oximeter-backup",
            MonitorActor::new(pulse_oximeter("OX-2"), body.clone(), nc_id, ep, FaultPlan::none()),
        )
    });
    let patient_id = {
        let mut actor = PatientActor::new(body.clone(), Some(pump_id), config.proxy_rate_per_hour);
        actor.record_timeline_every(config.timeline_every_secs);
        sim.add_actor("patient", actor)
    };
    let sup_id = config.interlock.map(|il| {
        let mut s =
            Supervisor::new(PcaSafetyApp::new(il), nc_id, ep_sup, SimDuration::from_secs(2))
                .with_faults(config.supervisor_fault.clone());
        if ep_standby.is_some() {
            s = s.with_redundancy("");
        }
        sim.add_actor("supervisor", s)
    });
    let standby_id = ep_standby.map(|ep| {
        let il = config.interlock.expect("standby supervisor requires an interlock");
        sim.add_actor(
            "supervisor-standby",
            Supervisor::new(PcaSafetyApp::new(il), nc_id, ep, SimDuration::from_secs(2))
                .with_role(SupervisorRole::Standby)
                .with_redundancy(""),
        )
    });
    {
        let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
        nc.bind(ep_pump, pump_id);
        nc.bind(ep_ox, ox_id);
        nc.bind(ep_cap, cap_id);
        if let (Some(ep), Some(id)) = (ep_ox2, ox2_id) {
            nc.bind(ep, id);
        }
        if let Some(s) = sup_id {
            nc.bind(ep_sup, s);
        }
        if let (Some(ep), Some(id)) = (ep_standby, standby_id) {
            nc.bind(ep, id);
        }
    }

    // --- kick off and run -------------------------------------------------
    for &(id, offset_ms) in &[(pump_id, 100u64), (ox_id, 200), (cap_id, 300), (patient_id, 0)] {
        sim.schedule(SimTime::from_millis(offset_ms), id, IceMsg::Tick);
    }
    if let Some(id) = ox2_id {
        sim.schedule(SimTime::from_millis(400), id, IceMsg::Tick);
    }
    if let Some(s) = sup_id {
        sim.schedule(SimTime::from_millis(500), s, IceMsg::Tick);
    }
    if let Some(s) = standby_id {
        sim.schedule(SimTime::from_millis(600), s, IceMsg::Tick);
    }
    sim.run_until(SimTime::ZERO + config.duration);

    // --- harvest ----------------------------------------------------------
    let patient_actor = sim.actor_as::<PatientActor>(patient_id).expect("patient actor");
    let pump_actor = sim.actor_as::<PumpActor>(pump_id).expect("pump actor");
    let danger_onset = patient_actor.danger_onset();
    let stop_latency_secs = danger_onset.and_then(|onset| {
        if !pump_actor.was_permitted_at(onset) {
            Some(0.0)
        } else {
            pump_actor
                .first_stop_at_or_after(onset)
                .map(|t| t.saturating_since(onset).as_secs_f64())
        }
    });
    #[derive(Default)]
    struct SupStats {
        associated: bool,
        associations_completed: u32,
        data_received: u64,
        commands_sent: u64,
        commands_retried: u64,
        commands_suppressed: u64,
        degraded_windows_secs: Vec<(f64, Option<f64>)>,
        watchdog_escalations: u32,
        grants_issued: u64,
        failovers: u32,
        epoch: u64,
        stepdowns: u32,
        hb_sent: u64,
        hb_acked: u64,
        hb_unanswered: u64,
        hb_rtts_ms: Vec<f64>,
    }
    let run_end_secs = config.duration.as_secs_f64();
    let mut sup_stats = SupStats::default();
    // Merge both halves of a redundant pair (counters sum; the epoch is
    // whichever supervisor got furthest). With no standby this is just
    // the primary's figures; with no interlock it stays all-zero.
    for id in [sup_id, standby_id].into_iter().flatten() {
        let sup = sim.actor_as::<Supervisor>(id).expect("supervisor actor");
        sup_stats.associated |= sup.associated_at().is_some();
        sup_stats.associations_completed =
            sup_stats.associations_completed.max(sup.associations_completed());
        sup_stats.data_received += sup.data_received();
        sup_stats.commands_sent += sup.commands_sent();
        sup_stats.commands_retried += sup.commands_retried();
        sup_stats.commands_suppressed += sup.commands_suppressed();
        sup_stats.degraded_windows_secs.extend(
            sup.degraded_log()
                .iter()
                // A window still open at run end is closed at the run's
                // end instant: leaving it `None` used to make terminal
                // degradations contribute zero dwell time to accounting.
                .map(|&(a, b)| {
                    (a.as_secs_f64(), Some(b.map_or(run_end_secs, SimTime::as_secs_f64)))
                }),
        );
        sup_stats.watchdog_escalations += sup.watchdog_escalations();
        sup_stats.grants_issued +=
            sup.app_as::<PcaSafetyApp>().map(|a| a.interlock().grants_issued()).unwrap_or(0);
        sup_stats.failovers += sup.failovers();
        sup_stats.epoch = sup_stats.epoch.max(sup.epoch());
        sup_stats.stepdowns += sup.stepdowns();
        let (sent, acked, unanswered) = sup.heartbeat_counts();
        sup_stats.hb_sent += sent;
        sup_stats.hb_acked += acked;
        sup_stats.hb_unanswered += unanswered;
        sup_stats.hb_rtts_ms.extend_from_slice(sup.heartbeat_rtts_ms());
    }
    sup_stats.degraded_windows_secs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let nc = sim.actor_as::<NetworkController>(nc_id).expect("netctl actor");
    let patient_outcome = body.outcome();
    let mut telemetry = Telemetry::new();
    telemetry.annotate("scenario", "pca");
    telemetry.annotate("seed", config.seed.to_string());
    nc.export_telemetry(&mut telemetry, "net");
    telemetry.incr("supervisor.failovers", u64::from(sup_stats.failovers));
    telemetry.incr("supervisor.epoch", sup_stats.epoch);
    telemetry.incr("supervisor.stepdowns", u64::from(sup_stats.stepdowns));
    telemetry.incr("supervisor.heartbeats_sent", sup_stats.hb_sent);
    telemetry.incr("supervisor.heartbeats_acked", sup_stats.hb_acked);
    telemetry.incr("supervisor.heartbeats_unanswered", sup_stats.hb_unanswered);
    for &ms in &sup_stats.hb_rtts_ms {
        telemetry.observe("supervisor.heartbeat_rtt_ms", ms);
    }
    telemetry.incr("pump.local_failsafe_entries", pump_actor.local_failsafe_entries());
    telemetry.incr("pump.fenced_commands", pump_actor.fenced_commands());
    telemetry.incr("pump.double_actuations", pump_actor.double_actuations());
    if config.scheduler_telemetry {
        sim.scheduler().export_telemetry(&mut telemetry, "sched");
    }

    PcaScenarioOutcome {
        frac_adequate_analgesia: patient_outcome.frac_adequate_analgesia,
        patient: patient_outcome,
        total_drug_mg: pump_actor.pump().total_delivered_mg(),
        presses: patient_actor.presses(),
        proxy_presses: patient_actor.proxy_presses(),
        bolus_decisions: pump_actor
            .decisions()
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect(),
        danger_onset_secs: danger_onset.map(|t| t.as_secs_f64()),
        stop_latency_secs,
        associated: sup_stats.associated,
        associations_completed: sup_stats.associations_completed,
        data_received: sup_stats.data_received,
        commands_sent: sup_stats.commands_sent,
        commands_retried: sup_stats.commands_retried,
        commands_suppressed: sup_stats.commands_suppressed,
        degraded_windows_secs: sup_stats.degraded_windows_secs,
        watchdog_escalations: sup_stats.watchdog_escalations,
        failovers: sup_stats.failovers,
        supervisor_epoch: sup_stats.epoch,
        supervisor_stepdowns: sup_stats.stepdowns,
        local_failsafe_entries: pump_actor.local_failsafe_entries(),
        failsafe_transitions_secs: pump_actor
            .failsafe_log()
            .iter()
            .map(|(t, latched)| (t.as_secs_f64(), *latched))
            .collect(),
        fenced_commands: pump_actor.fenced_commands(),
        double_actuations: pump_actor.double_actuations(),
        grants_issued: sup_stats.grants_issued,
        net_sent: nc.sent(),
        net_delivered: nc.delivered(),
        permit_transitions_secs: pump_actor
            .permit_log()
            .iter()
            .map(|(t, p)| (t.as_secs_f64(), *p))
            .collect(),
        timeline: patient_actor.timeline().to_vec(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_patient::cohort::{CohortConfig, CohortGenerator};

    fn short(cfg: &mut PcaScenarioConfig) {
        cfg.duration = SimDuration::from_mins(45);
    }

    #[test]
    fn closed_loop_baseline_associates_and_runs() {
        let cohort = CohortGenerator::new(1, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(1, cohort.params(0));
        short(&mut cfg);
        let out = run_pca_scenario(&cfg);
        assert!(out.associated, "app must associate: {out:?}");
        assert!(out.data_received > 1000, "vitals must flow: {}", out.data_received);
        assert!(out.grants_issued > 100, "tickets must flow: {}", out.grants_issued);
        assert!(out.patient.observed_secs > 2000.0);
    }

    #[test]
    fn open_loop_arm_runs_without_supervisor() {
        let cohort = CohortGenerator::new(1, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::open_loop(2, cohort.params(0));
        short(&mut cfg);
        let out = run_pca_scenario(&cfg);
        assert!(!out.associated);
        assert_eq!(out.commands_sent, 0);
        // The pump still works (demands may be granted).
        assert!(out.presses + out.proxy_presses > 0);
    }

    #[test]
    fn interlock_limits_overdose_for_sensitive_patient_with_proxy() {
        // An opioid-sensitive patient with an aggressive proxy: the
        // open-loop arm should deteriorate further than the closed loop.
        let cohort = CohortGenerator::new(
            7,
            CohortConfig {
                frac_opioid_sensitive: 1.0,
                frac_sleep_apnea: 0.0,
                variability_sigma: 0.1,
            },
        );
        let patient = cohort.params(3);
        let mut open = PcaScenarioConfig::open_loop(11, patient);
        open.proxy_rate_per_hour = 30.0;
        open.duration = SimDuration::from_mins(120);
        let mut closed = PcaScenarioConfig::baseline(11, patient);
        closed.proxy_rate_per_hour = 30.0;
        closed.duration = SimDuration::from_mins(120);
        let out_open = run_pca_scenario(&open);
        let out_closed = run_pca_scenario(&closed);
        assert!(
            out_closed.patient.min_spo2 >= out_open.patient.min_spo2 - 1.0,
            "closed loop should not be deeper: open {} closed {}",
            out_open.patient.min_spo2,
            out_closed.patient.min_spo2
        );
        assert!(
            out_closed.patient.secs_below_severe <= out_open.patient.secs_below_severe,
            "closed loop should cap severe time: open {} closed {}",
            out_open.patient.secs_below_severe,
            out_closed.patient.secs_below_severe
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cohort = CohortGenerator::new(3, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(5, cohort.params(1));
        cfg.duration = SimDuration::from_mins(20);
        let a = run_pca_scenario(&cfg);
        let b = run_pca_scenario(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn total_outage_triggers_failsafe_stop() {
        let cohort = CohortGenerator::new(4, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(6, cohort.params(2));
        cfg.duration = SimDuration::from_mins(30);
        // Network dies at minute 10, forever.
        cfg.outages = vec![(SimTime::from_mins(10), SimTime::from_mins(30))];
        let out = run_pca_scenario(&cfg);
        // No tickets can arrive after the outage; the pump must have
        // self-stopped within the ticket validity (15 s).
        assert!(out.associated);
        assert!(out.grants_issued > 0);
        // Delivery in the last 15 minutes would require tickets.
        // The permit log is not exposed here, but total delivered drug
        // must be bounded by what was possible before the outage + one
        // ticket validity.
        assert!(out.patient.observed_secs > 0.0);
    }

    /// Regression: a degraded window still open when the run ended was
    /// reported with `None` as its exit, so terminal degradations
    /// contributed zero dwell time to any duration accounting built on
    /// `degraded_windows_secs`. Finalize must close it at run end.
    #[test]
    fn degraded_window_open_at_run_end_is_closed_at_finalize() {
        let cohort = CohortGenerator::new(4, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(6, cohort.params(2));
        cfg.duration = SimDuration::from_mins(30);
        // Network dies at minute 10 and never heals: the supervisor
        // degrades on sensor silence and is still degraded at run end.
        cfg.outages = vec![(SimTime::from_mins(10), SimTime::from_mins(30))];
        let out = run_pca_scenario(&cfg);
        let last = out.degraded_windows_secs.last().expect("a permanent outage must degrade");
        let exit = last.1.expect("the open window must be closed at finalize");
        assert!((exit - 1800.0).abs() < 1e-9, "closed at the run-end instant, got {exit}");
        assert!(last.0 < exit);
    }

    /// A healthy redundant pair changes nothing: no failover, epoch
    /// stays 1, and the heartbeat stream keeps the pump's local
    /// fail-safe watchdog from ever latching.
    #[test]
    fn redundant_pair_is_quiescent_without_faults() {
        let cohort = CohortGenerator::new(1, CohortConfig::default());
        let mut cfg = PcaScenarioConfig::baseline(1, cohort.params(0));
        short(&mut cfg);
        cfg.standby_supervisor = true;
        let out = run_pca_scenario(&cfg);
        assert!(out.associated);
        assert_eq!(out.failovers, 0, "standby must not promote under a healthy primary");
        assert_eq!(out.supervisor_epoch, 1);
        assert_eq!(out.supervisor_stepdowns, 0);
        assert_eq!(out.double_actuations, 0);
        assert_eq!(out.fenced_commands, 0);
        assert_eq!(out.local_failsafe_entries, 0, "heartbeats keep the pump watchdog fed");
        assert!(out.telemetry.counter("supervisor.heartbeats_sent") > 100);
        let rtts = out.telemetry.histogram("supervisor.heartbeat_rtt_ms");
        assert!(rtts.is_some_and(|h| h.count() > 100), "heartbeat RTTs are exported");
    }
}
