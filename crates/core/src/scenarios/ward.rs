//! The monitored-ward alarm scenario.
//!
//! Experiment E2: a ward of monitored post-operative patients on PCA
//! therapy, artifact-rich sensors, and two alarm algorithms watching
//! the same measurement streams. Ground truth comes from the noise-free
//! patient state, so sensitivity and false-alarm rate can be computed
//! exactly.

use mcps_alarms::fatigue::{operational_score_labeled, NurseConfig, OperationalScore};
use mcps_alarms::fusion::FusionAlarm;
use mcps_alarms::stats::{score_alarms, AlarmScore, Episode, EpisodeDetector};
use mcps_alarms::threshold::ThresholdAlarm;
use mcps_device::monitor::{capnograph, pulse_oximeter};
use mcps_device::nibp::{NibpConfig, NibpMonitor};
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_patient::vitals::VitalKind;
use mcps_sim::rng::RngFactory;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ward configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WardConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of monitored beds.
    pub patients: u32,
    /// Observation length per patient.
    pub duration: SimDuration,
    /// Cohort mix.
    pub cohort: CohortConfig,
    /// Mean therapeutic boluses per hour pushed by each patient
    /// (drives realistic opioid exposure, occasionally excessive).
    pub bolus_rate_per_hour: f64,
    /// Bolus size, mg.
    pub bolus_mg: f64,
    /// Alarm-to-episode matching tolerance, seconds.
    pub tolerance_secs: f64,
    /// Whether each bed has a cycling NIBP cuff on the same limb as
    /// the SpO₂ probe (blinding it for ~40 s every 5 min — a scheduled
    /// benign artifact the alarm algorithms must ride through).
    pub nibp_cuff: bool,
}

impl Default for WardConfig {
    fn default() -> Self {
        WardConfig {
            seed: 0,
            patients: 16,
            duration: SimDuration::from_mins(8 * 60),
            cohort: CohortConfig::default(),
            bolus_rate_per_hour: 4.0,
            bolus_mg: 1.2,
            tolerance_secs: 120.0,
            nibp_cuff: false,
        }
    }
}

/// Scores of both algorithms over the same ward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WardOutcome {
    /// Conventional threshold alarms.
    pub threshold: AlarmScore,
    /// Fusion (smart) alarms.
    pub fusion: AlarmScore,
    /// Ground-truth episodes across the ward.
    pub episodes: u32,
    /// Operational outcome of the threshold stream at the central
    /// monitoring station (one nurse model over the pooled ward).
    pub threshold_operational: OperationalScore,
    /// Operational outcome of the fusion stream.
    pub fusion_operational: OperationalScore,
}

/// Runs the ward and scores both alarm algorithms.
pub fn run_ward_scenario(config: &WardConfig) -> WardOutcome {
    let cohort = CohortGenerator::new(config.seed, config.cohort);
    let factory = RngFactory::new(config.seed ^ 0xA1A2_A3A4);
    let mut threshold_total = AlarmScore::default();
    let mut fusion_total = AlarmScore::default();
    let mut episodes_total = 0u32;
    let mut threshold_labeled: Vec<(f64, bool)> = Vec::new();
    let mut fusion_labeled: Vec<(f64, bool)> = Vec::new();

    for bed in 0..config.patients {
        let mut patient = cohort.patient(u64::from(bed));
        let mut rng = factory.stream(&format!("bed-{bed}"));
        let mut oximeter = pulse_oximeter(&format!("OX-{bed}"));
        let mut capno = capnograph(&format!("CAP-{bed}"));
        let mut nibp = config.nibp_cuff.then(|| {
            NibpMonitor::new(SimTime::from_secs(60 + u64::from(bed) * 17), NibpConfig::default())
        });
        let mut threshold = ThresholdAlarm::pca_default();
        let mut fusion = FusionAlarm::pca_default();
        let mut detector = EpisodeDetector::clinical_default();
        let mut episodes: Vec<Episode> = Vec::new();
        let mut threshold_onsets: Vec<f64> = Vec::new();
        let mut fusion_onsets: Vec<f64> = Vec::new();
        let mut latest: BTreeMap<VitalKind, f64> = BTreeMap::new();

        let secs = config.duration.as_micros() / 1_000_000;
        let bolus_p = config.bolus_rate_per_hour / 3600.0;
        for s in 0..secs {
            let now = SimTime::from_secs(s);
            // Therapy: pain-driven demands, served directly (the ward
            // scenario studies alarms, not interlocks).
            if patient.perceived_pain() > 3.0 && mcps_sim::rng::bernoulli(&mut rng, bolus_p) {
                patient.give_bolus(config.bolus_mg);
            }
            patient.advance(1.0, &mut rng);
            let truth = patient.vitals();
            if let Some(ep) = detector.observe(s as f64, 1.0, &truth) {
                episodes.push(ep);
            }
            // Sensors measure; algorithms see only measurements.
            let mut oximeter_blinded = false;
            if let Some(n) = nibp.as_mut() {
                if let Some(reading) = n.poll(now, &truth, &mut rng) {
                    latest.insert(VitalKind::BpSystolic, reading.systolic);
                    latest.insert(VitalKind::BpDiastolic, reading.diastolic);
                }
                oximeter_blinded = n.blinds_oximeter(now);
            }
            if !oximeter_blinded {
                for m in oximeter.sample(now, &truth, &mut rng) {
                    latest.insert(m.kind, m.value);
                }
            }
            for m in capno.sample(now, &truth, &mut rng) {
                latest.insert(m.kind, m.value);
            }
            for e in threshold.observe(now, &latest) {
                if e.phase == mcps_alarms::event::AlarmPhase::Onset {
                    threshold_onsets.push(s as f64);
                }
            }
            for e in fusion.observe(now, &latest) {
                if e.phase == mcps_alarms::event::AlarmPhase::Onset {
                    fusion_onsets.push(s as f64);
                }
            }
        }
        if let Some(ep) = detector.finish(secs as f64) {
            episodes.push(ep);
        }
        let hours = config.duration.as_secs_f64() / 3600.0;
        threshold_total.merge(&score_alarms(
            &threshold_onsets,
            &episodes,
            config.tolerance_secs,
            hours,
        ));
        fusion_total.merge(&score_alarms(&fusion_onsets, &episodes, config.tolerance_secs, hours));
        episodes_total += episodes.len() as u32;
        // Label each alarm against its own bed's episodes before the
        // streams are pooled at the central station.
        let near = |t: f64| {
            episodes.iter().any(|e| {
                t >= e.start_secs - config.tolerance_secs && t <= e.end_secs + config.tolerance_secs
            })
        };
        threshold_labeled.extend(threshold_onsets.iter().map(|&t| (t, near(t))));
        fusion_labeled.extend(fusion_onsets.iter().map(|&t| (t, near(t))));
    }

    // One nurse watches each pooled stream (a central monitoring
    // station): fatigue converts false-alarm burden into missed and
    // delayed responses to true alarms.
    threshold_labeled.sort_by(|a, b| a.0.total_cmp(&b.0));
    fusion_labeled.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut nurse_rng = factory.stream("ward-nurse");
    let threshold_operational =
        operational_score_labeled(&threshold_labeled, NurseConfig::default(), &mut nurse_rng);
    let mut nurse_rng = factory.stream("ward-nurse"); // same stream: fair comparison
    let fusion_operational =
        operational_score_labeled(&fusion_labeled, NurseConfig::default(), &mut nurse_rng);

    WardOutcome {
        threshold: threshold_total,
        fusion: fusion_total,
        episodes: episodes_total,
        threshold_operational,
        fusion_operational,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ward(seed: u64) -> WardConfig {
        WardConfig {
            seed,
            patients: 6,
            duration: SimDuration::from_mins(120),
            ..WardConfig::default()
        }
    }

    #[test]
    fn fusion_cuts_false_alarms_at_comparable_sensitivity() {
        let out = run_ward_scenario(&small_ward(42));
        assert!(
            out.threshold.false_alarm_rate_per_hour() > 0.0,
            "threshold alarms should produce false alarms on artifact-rich data: {out:?}"
        );
        assert!(
            out.fusion.false_alarm_rate_per_hour()
                < 0.5 * out.threshold.false_alarm_rate_per_hour(),
            "fusion should cut FAR at least 2x: {out:?}"
        );
        // Sensitivity must not collapse.
        if out.episodes > 0 {
            assert!(
                out.fusion.sensitivity() >= out.threshold.sensitivity() - 0.25,
                "fusion must stay sensitive: {out:?}"
            );
        }
    }

    #[test]
    fn ward_is_deterministic() {
        let a = run_ward_scenario(&small_ward(7));
        let b = run_ward_scenario(&small_ward(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_ward_scenario(&small_ward(1));
        let b = run_ward_scenario(&small_ward(2));
        assert_ne!(a, b);
    }

    #[test]
    fn fatigue_model_favors_the_quieter_stream() {
        let out = run_ward_scenario(&WardConfig {
            seed: 9,
            patients: 10,
            duration: SimDuration::from_mins(4 * 60),
            ..WardConfig::default()
        });
        // The quieter fusion stream must never miss MORE true alarms
        // than the noisy threshold stream, and its responses are faster.
        assert!(
            out.fusion_operational.true_unanswered <= out.threshold_operational.true_unanswered,
            "{out:?}"
        );
        if out.threshold_operational.false_answered > 20 {
            assert!(
                out.fusion_operational.mean_delay_secs < out.threshold_operational.mean_delay_secs,
                "{out:?}"
            );
        }
    }

    #[test]
    fn nibp_cuff_does_not_break_fusion_advantage() {
        let mut cfg = small_ward(42);
        cfg.nibp_cuff = true;
        let out = run_ward_scenario(&cfg);
        // The periodic blinding must not flood either algorithm with
        // false alarms, and fusion must keep its advantage.
        assert!(
            out.fusion.false_alarm_rate_per_hour()
                < 0.5 * out.threshold.false_alarm_rate_per_hour().max(0.2),
            "{out:?}"
        );
        if out.episodes > 0 {
            assert!(out.fusion.sensitivity() >= out.threshold.sensitivity() - 0.25);
        }
    }
}
