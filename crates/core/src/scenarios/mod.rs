//! Executable clinical scenarios — the experiment engines.
//!
//! * [`pca`] — the PCA closed-loop safety scenario (E1, E4, E8).
//! * [`xray`] — x-ray/ventilator coordination (E3).
//! * [`ward`] — the monitored ward alarm study (E2).
//! * [`multibed`] — N complete closed loops on one shared fabric
//!   (topic-scope isolation).
//! * [`campus`] — thousands of beds across wards/floors, one fabric
//!   segment per ward, costed shard dispatch (E12 throughput).

pub mod campus;
pub mod multibed;
pub mod pca;
pub mod ward;
pub mod xray;
