//! A multi-bed ward on a **shared** network fabric.
//!
//! Real wards do not run one network per bed: every device and every
//! supervisor shares the hospital fabric. Correct isolation therefore
//! rests on topic namespacing — each bed's devices publish under the
//! bed's scope and each bed's supervisor subscribes only to it. This
//! scenario assembles N complete PCA closed loops (patient, pump,
//! oximeter, capnograph, supervisor) in a single simulation over one
//! fabric and verifies there is no cross-bed interference: bed A's
//! overdose must stop bed A's pump and nobody else's.

use mcps_control::interlock::InterlockConfig;
use mcps_device::monitor::{capnograph, pulse_oximeter};
use mcps_device::pump::{PcaPump, PcaPumpConfig};
use mcps_net::fabric::Fabric;
use mcps_net::qos::LinkQos;
use mcps_patient::cohort::{CohortConfig, CohortGenerator};
use mcps_patient::patient::{PatientOutcome, VirtualPatient};
use mcps_patient::vitals::VitalKind;
use mcps_sim::kernel::Simulation;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::actors::{MonitorActor, PumpActor};
use crate::apps::PcaSafetyApp;
use crate::body::{PatientActor, PatientBody};
use crate::msg::IceMsg;
use crate::netctl::{topics, NetworkController};
use crate::supervisor::Supervisor;

/// Configuration of the shared-fabric ward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBedConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of beds (each a complete closed loop).
    pub beds: u32,
    /// Run length.
    pub duration: SimDuration,
    /// Shared-fabric QoS.
    pub qos: LinkQos,
    /// Cohort mix.
    pub cohort: CohortConfig,
    /// Proxy-press rate applied to **bed 0 only** (the isolation
    /// experiment: one bed in danger, the rest healthy).
    pub bed0_proxy_rate_per_hour: f64,
}

impl Default for MultiBedConfig {
    fn default() -> Self {
        MultiBedConfig {
            seed: 0,
            beds: 4,
            duration: SimDuration::from_mins(60),
            qos: LinkQos::wired(),
            cohort: CohortConfig::default(),
            bed0_proxy_rate_per_hour: 0.0,
        }
    }
}

/// Outcome of one bed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BedOutcome {
    /// Bed index.
    pub bed: u32,
    /// Whether the bed's app fully associated.
    pub associated: bool,
    /// Vitals received by the bed's supervisor.
    pub data_received: u64,
    /// Vitals the supervisor refused (wrong bed or unassociated).
    pub data_ignored: u64,
    /// Tickets the bed's interlock issued.
    pub grants_issued: u64,
    /// Whether delivery was permitted at the end of the run.
    pub permitted_at_end: bool,
    /// Ground-truth outcome of the bed's patient.
    pub patient: PatientOutcome,
    /// Total drug delivered, mg.
    pub total_drug_mg: f64,
}

/// Runs the shared-fabric ward.
pub fn run_multibed_scenario(config: &MultiBedConfig) -> Vec<BedOutcome> {
    let mut sim: Simulation<IceMsg> = Simulation::new(config.seed);
    sim.trace_mut().set_enabled(false);
    let cohort = CohortGenerator::new(config.seed, config.cohort);

    let mut fabric = Fabric::new();
    fabric.set_default_qos(config.qos);

    struct Bed {
        body: PatientBody,
        pump_id: mcps_sim::actor::ActorId,
        patient_id: mcps_sim::actor::ActorId,
        sup_id: mcps_sim::actor::ActorId,
    }

    // Endpoints first (fabric wiring), then actors.
    let mut endpoint_sets = Vec::new();
    for bed in 0..config.beds {
        let scope = format!("bed{bed}");
        let ep_ox = fabric.add_endpoint(&format!("{scope}/oximeter"));
        let ep_cap = fabric.add_endpoint(&format!("{scope}/capnograph"));
        let ep_pump = fabric.add_endpoint(&format!("{scope}/pump"));
        let ep_sup = fabric.add_endpoint(&format!("{scope}/supervisor"));
        fabric.subscribe(ep_sup, topics::announce_scoped(&scope));
        for kind in VitalKind::ALL {
            fabric.subscribe(ep_sup, topics::vitals_scoped(&scope, kind));
        }
        endpoint_sets.push((scope, ep_ox, ep_cap, ep_pump, ep_sup));
    }

    let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
    let mut beds = Vec::new();
    for (bed, (scope, ep_ox, ep_cap, ep_pump, ep_sup)) in endpoint_sets.into_iter().enumerate() {
        let bed_u = bed as u32;
        let body = PatientBody::new(VirtualPatient::new(cohort.params(u64::from(bed_u))));
        let pump_cfg = PcaPumpConfig { ticket_mode: true, ..PcaPumpConfig::default() };
        let pump_id = sim.add_actor(
            &format!("{scope}/pump"),
            PumpActor::new(PcaPump::new(pump_cfg), body.clone(), nc_id, ep_pump).with_scope(&scope),
        );
        let ox_id = sim.add_actor(
            &format!("{scope}/oximeter"),
            MonitorActor::new(
                pulse_oximeter(&format!("OX-{bed}")),
                body.clone(),
                nc_id,
                ep_ox,
                mcps_device::faults::FaultPlan::none(),
            )
            .with_scope(&scope),
        );
        let cap_id = sim.add_actor(
            &format!("{scope}/capnograph"),
            MonitorActor::new(
                capnograph(&format!("CAP-{bed}")),
                body.clone(),
                nc_id,
                ep_cap,
                mcps_device::faults::FaultPlan::none(),
            )
            .with_scope(&scope),
        );
        let proxy = if bed_u == 0 { config.bed0_proxy_rate_per_hour } else { 0.0 };
        let patient_id = sim.add_actor(
            &format!("{scope}/patient"),
            PatientActor::new(body.clone(), Some(pump_id), proxy),
        );
        let sup_id = sim.add_actor(
            &format!("{scope}/supervisor"),
            Supervisor::new(
                PcaSafetyApp::new(InterlockConfig::default()),
                nc_id,
                ep_sup,
                SimDuration::from_secs(2),
            ),
        );
        {
            let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
            nc.bind(ep_ox, ox_id);
            nc.bind(ep_cap, cap_id);
            nc.bind(ep_pump, pump_id);
            nc.bind(ep_sup, sup_id);
        }
        for &(id, off) in
            &[(pump_id, 100u64), (ox_id, 200), (cap_id, 300), (patient_id, 0), (sup_id, 500)]
        {
            sim.schedule(SimTime::from_millis(off + bed as u64 * 7), id, IceMsg::Tick);
        }
        beds.push(Bed { body, pump_id, patient_id, sup_id });
    }

    sim.run_until(SimTime::ZERO + config.duration);

    beds.iter()
        .enumerate()
        .map(|(i, b)| {
            let sup = sim.actor_as::<Supervisor>(b.sup_id).expect("supervisor");
            let pump = sim.actor_as::<PumpActor>(b.pump_id).expect("pump");
            let _ = sim.actor_as::<PatientActor>(b.patient_id);
            let end = config.duration.as_secs_f64() - 1.0;
            BedOutcome {
                bed: i as u32,
                associated: sup.associated_at().is_some(),
                data_received: sup.data_received(),
                data_ignored: sup.data_ignored(),
                grants_issued: sup
                    .app_as::<PcaSafetyApp>()
                    .map(|a| a.interlock().grants_issued())
                    .unwrap_or(0),
                permitted_at_end: pump
                    .was_permitted_at(SimTime::ZERO + SimDuration::from_secs_f64(end)),
                patient: b.body.outcome(),
                total_drug_mg: pump.pump().total_delivered_mg(),
            }
        })
        .collect()
}

/// Splits a ward into per-shard configurations for
/// [`run_multibed_sharded`].
///
/// Each entry is `(bed_offset, config)`: the shard simulates
/// `config.beds` beds on its **own** fabric, and its outcomes are
/// renumbered by `bed_offset` when merged. Seeds are isolated per
/// shard (splitmix-style mix of the master seed and the shard index)
/// so no RNG stream is shared across shards — the first of the three
/// determinism rules `run_shards` relies on. The bed-0 proxy hazard
/// stays with the shard that owns global bed 0.
pub fn multibed_shard_configs(config: &MultiBedConfig, shards: u32) -> Vec<(u32, MultiBedConfig)> {
    let shards = shards.clamp(1, config.beds.max(1));
    let base = config.beds / shards;
    let extra = config.beds % shards;
    let mut parts = Vec::with_capacity(shards as usize);
    let mut offset = 0u32;
    for s in 0..shards {
        let beds = base + u32::from(s < extra);
        if beds == 0 {
            continue;
        }
        let mut mix = (config.seed ^ (u64::from(s) << 1)).wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix = (mix ^ (mix >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mix ^= mix >> 27;
        parts.push((
            offset,
            MultiBedConfig {
                seed: mix,
                beds,
                bed0_proxy_rate_per_hour: if offset == 0 {
                    config.bed0_proxy_rate_per_hour
                } else {
                    0.0
                },
                ..config.clone()
            },
        ));
        offset += beds;
    }
    parts
}

/// Runs the ward as seed-isolated shards in parallel, one independent
/// fabric per shard, and merges outcomes in global bed order.
///
/// This is the throughput variant of [`run_multibed_scenario`]: the
/// shared-fabric run proves cross-bed isolation (no bed observes
/// another bed's traffic), which is exactly the property that makes
/// splitting beds across independent fabrics faithful. Output is
/// byte-identical to running the same shard configurations serially —
/// see the `sharded_ward_matches_serial_shards` test.
pub fn run_multibed_sharded(config: &MultiBedConfig, shards: u32) -> Vec<BedOutcome> {
    let parts = multibed_shard_configs(config, shards);
    mcps_sim::shard::run_shards(parts, |(offset, cfg)| {
        let mut beds = run_multibed_scenario(&cfg);
        for b in &mut beds {
            b.bed += offset;
        }
        beds
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bed_associates_on_the_shared_fabric() {
        let out = run_multibed_scenario(&MultiBedConfig {
            seed: 1,
            beds: 4,
            duration: SimDuration::from_mins(20),
            ..MultiBedConfig::default()
        });
        assert_eq!(out.len(), 4);
        for b in &out {
            assert!(b.associated, "bed {} failed to associate: {b:?}", b.bed);
            assert!(b.data_received > 1000, "bed {}: {}", b.bed, b.data_received);
            assert!(b.grants_issued > 100, "bed {}: {}", b.bed, b.grants_issued);
        }
    }

    #[test]
    fn no_cross_bed_interference_during_overdose() {
        // Bed 0 is opioid-sensitive with an aggressive proxy; the other
        // beds are untouched. Only bed 0's pump may be stopped.
        let cohort = CohortConfig {
            frac_opioid_sensitive: 1.0,
            frac_sleep_apnea: 0.0,
            variability_sigma: 0.15,
        };
        let out = run_multibed_scenario(&MultiBedConfig {
            seed: 9,
            beds: 3,
            duration: SimDuration::from_mins(90),
            cohort,
            bed0_proxy_rate_per_hour: 60.0,
            ..MultiBedConfig::default()
        });
        // Bed 0 deteriorates and its interlock intervenes (not permitted
        // at the end, or at least its patient saw real depression).
        let bed0 = &out[0];
        assert!(
            bed0.patient.resp_depression_events > 0 || bed0.patient.hypox_events > 0,
            "bed 0 should deteriorate: {bed0:?}"
        );
        // The healthy beds keep their permission and never see another
        // bed's data.
        for b in &out[1..] {
            assert!(b.permitted_at_end, "bed {} must stay permitted: {b:?}", b.bed);
            assert_eq!(b.patient.hypox_events, 0, "bed {} must stay healthy", b.bed);
        }
    }

    #[test]
    fn supervisors_never_accept_foreign_data() {
        // With per-bed scopes, a supervisor's data_ignored counts only
        // its own pre-association messages — not a flood of foreign
        // traffic. If scoping broke, ignored counts would explode (3
        // beds x 4 streams x duration).
        let out = run_multibed_scenario(&MultiBedConfig {
            seed: 3,
            beds: 3,
            duration: SimDuration::from_mins(20),
            ..MultiBedConfig::default()
        });
        for b in &out {
            assert!(
                b.data_ignored < 200,
                "bed {}: {} ignored messages suggests cross-bed leakage",
                b.bed,
                b.data_ignored
            );
        }
    }

    #[test]
    fn deterministic() {
        let cfg = MultiBedConfig {
            seed: 5,
            beds: 2,
            duration: SimDuration::from_mins(15),
            ..MultiBedConfig::default()
        };
        assert_eq!(run_multibed_scenario(&cfg), run_multibed_scenario(&cfg));
    }

    #[test]
    fn shard_configs_partition_beds_and_isolate_seeds() {
        let cfg = MultiBedConfig {
            seed: 11,
            beds: 5,
            bed0_proxy_rate_per_hour: 12.0,
            ..MultiBedConfig::default()
        };
        let parts = multibed_shard_configs(&cfg, 3);
        assert_eq!(parts.iter().map(|(_, c)| c.beds).sum::<u32>(), 5);
        let offsets: Vec<u32> = parts.iter().map(|(o, _)| *o).collect();
        assert_eq!(offsets, [0, 2, 4]);
        // Seeds differ pairwise (isolation), and only the shard that
        // owns global bed 0 carries the proxy hazard.
        for (i, (oi, ci)) in parts.iter().enumerate() {
            assert_eq!(ci.bed0_proxy_rate_per_hour > 0.0, *oi == 0);
            for (oj, cj) in parts.iter().skip(i + 1) {
                assert_ne!(ci.seed, cj.seed, "shards at offsets {oi} and {oj} share a seed");
            }
        }
        // More shards than beds degrades to one bed per shard.
        assert_eq!(multibed_shard_configs(&cfg, 99).len(), 5);
    }

    #[test]
    fn sharded_ward_matches_serial_shards() {
        // The parallel run must be **byte-identical** (same serialized
        // JSON) to executing the identical shard configurations one
        // after another on this thread.
        let cfg = MultiBedConfig {
            seed: 21,
            beds: 4,
            duration: SimDuration::from_mins(10),
            bed0_proxy_rate_per_hour: 20.0,
            ..MultiBedConfig::default()
        };
        let parallel = run_multibed_sharded(&cfg, 4);
        let serial: Vec<BedOutcome> = multibed_shard_configs(&cfg, 4)
            .into_iter()
            .flat_map(|(offset, c)| {
                let mut beds = run_multibed_scenario(&c);
                for b in &mut beds {
                    b.bed += offset;
                }
                beds
            })
            .collect();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
        assert_eq!(parallel.len(), 4);
        assert_eq!(parallel.iter().map(|b| b.bed).collect::<Vec<_>>(), [0, 1, 2, 3]);
    }
}
