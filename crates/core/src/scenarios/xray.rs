//! The x-ray / ventilator synchronization scenario.
//!
//! The paper's second clinical-interoperability example: to take a
//! sharp chest x-ray of a ventilated patient, ventilation must be
//! paused (chest still) exactly around the exposure, then resumed
//! promptly. Manual coordination — radiographer asks, nurse pauses,
//! tech shoots — is slow and error-prone; ICE coordination automates
//! the sequence. Experiment E3 compares the two.

use mcps_net::fabric::Fabric;
use mcps_net::qos::LinkQos;
use mcps_sim::kernel::Simulation;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::actors::{VentilatorActor, XRayActor};
use crate::apps::{WorkflowStyle, XRayCoordinatorApp};
use crate::msg::IceMsg;
use crate::netctl::{topics, NetworkController};
use crate::supervisor::Supervisor;
use mcps_device::ventilator::{Ventilator, VentilatorConfig};
use mcps_device::xray::{XRayConfig, XRayMachine};

/// Configuration of one coordination run.
#[derive(Debug, Clone, PartialEq)]
pub struct XRayScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Coordination style (automated vs manual baseline).
    pub style: WorkflowStyle,
    /// Number of exposures to attempt.
    pub exposures: u32,
    /// Interval between exposure sequences.
    pub interval: SimDuration,
    /// Pause duration requested per exposure.
    pub pause_duration: SimDuration,
    /// Network QoS.
    pub qos: LinkQos,
    /// Ventilator settings.
    pub ventilator: VentilatorConfig,
}

impl XRayScenarioConfig {
    /// A 20-exposure automated run on a wired network.
    pub fn automated(seed: u64) -> Self {
        XRayScenarioConfig {
            seed,
            style: WorkflowStyle::Automated,
            exposures: 20,
            interval: SimDuration::from_secs(90),
            pause_duration: SimDuration::from_secs(15),
            qos: LinkQos::wired(),
            ventilator: VentilatorConfig::default(),
        }
    }

    /// The manual baseline with the given median human step delay.
    pub fn manual(seed: u64, median_step_delay_secs: f64) -> Self {
        XRayScenarioConfig {
            style: WorkflowStyle::Manual { median_step_delay_secs },
            ..Self::automated(seed)
        }
    }
}

/// Scored outcome of a coordination run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XRayScenarioOutcome {
    /// Exposure sequences started.
    pub requested: u32,
    /// Sequences that completed (exposure fired).
    pub completed: u32,
    /// Sequences aborted on timeout.
    pub aborted: u32,
    /// Exposures whose entire shutter window was motion-free.
    pub blur_free: u32,
    /// Exposures taken while the chest was moving (retake needed).
    pub blurred: u32,
    /// Ventilator auto-resumes (pause budget exhausted — the human or
    /// app failed to resume in time).
    pub auto_resumes: u32,
    /// Mean pause length actually experienced by the patient, seconds.
    pub mean_pause_secs: f64,
}

impl XRayScenarioOutcome {
    /// Fraction of requested exposures that produced a sharp image.
    pub fn blur_free_rate(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            f64::from(self.blur_free) / f64::from(self.requested)
        }
    }
}

/// Runs one coordination scenario.
pub fn run_xray_scenario(config: &XRayScenarioConfig) -> XRayScenarioOutcome {
    let mut sim: Simulation<IceMsg> = Simulation::new(config.seed);
    sim.trace_mut().set_enabled(false);

    let mut fabric = Fabric::new();
    fabric.set_default_qos(config.qos);
    let ep_vent = fabric.add_endpoint("ventilator");
    let ep_xray = fabric.add_endpoint("xray");
    let ep_sup = fabric.add_endpoint("supervisor");
    fabric.subscribe(ep_sup, topics::announce());

    let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
    let vent_id = sim.add_actor(
        "ventilator",
        VentilatorActor::new(Ventilator::new(SimTime::ZERO, config.ventilator), nc_id, ep_vent),
    );
    let xray_id = sim
        .add_actor("xray", XRayActor::new(XRayMachine::new(XRayConfig::default()), nc_id, ep_xray));
    let app = XRayCoordinatorApp::new(
        config.style,
        config.exposures,
        config.interval,
        config.pause_duration,
    );
    let sup_id =
        sim.add_actor("supervisor", Supervisor::new(app, nc_id, ep_sup, SimDuration::from_secs(2)));
    {
        let nc = sim.actor_as_mut::<NetworkController>(nc_id).unwrap();
        nc.bind(ep_vent, vent_id);
        nc.bind(ep_xray, xray_id);
        nc.bind(ep_sup, sup_id);
    }
    sim.schedule(SimTime::from_millis(50), vent_id, IceMsg::Tick);
    sim.schedule(SimTime::from_millis(60), xray_id, IceMsg::Tick);
    sim.schedule(SimTime::from_millis(500), sup_id, IceMsg::Tick);

    // Generous horizon: every sequence plus slack.
    let horizon =
        SimTime::ZERO + config.interval * u64::from(config.exposures) + SimDuration::from_mins(10);
    sim.run_until(horizon);

    let sup = sim.actor_as::<Supervisor>(sup_id).expect("supervisor");
    let app = sup.app_as::<XRayCoordinatorApp>().expect("app");
    let vent = sim.actor_as::<VentilatorActor>(vent_id).expect("ventilator").ventilator();
    let xray = sim.actor_as::<XRayActor>(xray_id).expect("xray").xray();

    let mut blur_free = 0;
    let mut blurred = 0;
    for e in xray.exposures() {
        if vent.was_motion_free_during(e.start, e.end) {
            blur_free += 1;
        } else {
            blurred += 1;
        }
    }
    let pauses = vent.pause_log();
    let mean_pause_secs = if pauses.is_empty() {
        0.0
    } else {
        pauses.iter().map(|(a, b)| (*b - *a).as_secs_f64()).sum::<f64>() / pauses.len() as f64
    };

    XRayScenarioOutcome {
        requested: app.requested(),
        completed: app.completed(),
        aborted: app.aborted(),
        blur_free,
        blurred,
        auto_resumes: vent.auto_resume_count(),
        mean_pause_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automated_coordination_is_nearly_perfect() {
        let out = run_xray_scenario(&XRayScenarioConfig::automated(1));
        assert_eq!(out.requested, 20, "{out:?}");
        assert!(out.blur_free >= 19, "automated should be sharp: {out:?}");
        assert_eq!(out.auto_resumes, 0, "app must resume before the budget: {out:?}");
    }

    #[test]
    fn slow_manual_workflow_degrades() {
        let out = run_xray_scenario(&XRayScenarioConfig::manual(2, 8.0));
        assert_eq!(out.requested, 20);
        assert!(
            out.blur_free_rate() < 0.9,
            "slow humans should miss pause windows sometimes: {out:?}"
        );
    }

    #[test]
    fn manual_degradation_grows_with_delay() {
        let fast = run_xray_scenario(&XRayScenarioConfig::manual(3, 2.0));
        let slow = run_xray_scenario(&XRayScenarioConfig::manual(3, 12.0));
        assert!(slow.blur_free_rate() <= fast.blur_free_rate(), "fast {fast:?} vs slow {slow:?}");
    }

    #[test]
    fn heavy_loss_degrades_gracefully_not_catastrophically() {
        // Commands/acks may vanish: sequences can abort on timeout,
        // but every requested pause is still bounded by the device and
        // the run terminates with consistent accounting.
        let mut cfg = XRayScenarioConfig::automated(4);
        cfg.qos = mcps_net::qos::LinkQos::wifi().with_loss(0.35);
        let out = run_xray_scenario(&cfg);
        // Sequences stall on lost commands/acks and time out, so fewer
        // fit the horizon — but accounting stays consistent and every
        // sequence ends one way or the other.
        assert!(out.requested > 0 && out.requested <= 20, "{out:?}");
        assert!(out.completed + out.aborted <= out.requested, "{out:?}");
        assert!(out.aborted > 0, "35% loss should abort some sequences: {out:?}");
        // Device-enforced bound: no pause longer than max_pause; the
        // ventilator auto-resumes when the app's resume is lost.
        assert!(out.mean_pause_secs <= 20.0 + 1e-9, "{out:?}");
    }

    #[test]
    fn deterministic() {
        let a = run_xray_scenario(&XRayScenarioConfig::manual(9, 6.0));
        let b = run_xray_scenario(&XRayScenarioConfig::manual(9, 6.0));
        assert_eq!(a, b);
    }
}
