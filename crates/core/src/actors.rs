//! Actor wrappers that put devices on the ICE network.
//!
//! Each wrapper owns a pure device state machine from `mcps-device`,
//! drives it with self-scheduled ticks, and connects it to the network
//! controller: monitors publish vitals to topics, the pump consumes
//! supervisor commands, and all devices announce their capability
//! profile at power-on so the device manager can associate them.

use mcps_device::faults::FaultPlan;
use mcps_device::monitor::VitalsMonitor;
use mcps_device::pump::{BolusDecision, PcaPump};
use mcps_device::ventilator::Ventilator;
use mcps_device::xray::XRayMachine;
use mcps_net::fabric::{EndpointId, Topic};
use mcps_patient::vitals::VitalKind;
use mcps_sim::actor::{Actor, ActorId};
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

use std::collections::VecDeque;

use crate::body::PatientBody;
use crate::msg::{IceCommand, IceMsg, NetAddress, NetOp, NetPayload};
use crate::netctl::topics;

/// How often devices repeat their capability announcement. Announces
/// are idempotent (the device manager ignores duplicates) and may be
/// lost, so devices re-offer themselves periodically — the on-demand
/// equivalent of a discovery beacon.
const ANNOUNCE_PERIOD: SimDuration = SimDuration::from_secs(10);

/// Fast announce cadence for a supervised pump whose supervisor has
/// gone silent (opt-in via [`PumpActor::with_fast_reannounce`]). A
/// restarted supervisor learns routes only from announces, and over a
/// lossy link any single announce may be corrupted in flight — at the
/// leisurely [`ANNOUNCE_PERIOD`] each loss costs ten more seconds of
/// unsupervised danger time. Retrying at the heartbeat cadence keeps
/// worst-case re-association well inside the 30 s danger→stop budget.
const ANNOUNCE_RETRY: SimDuration = SimDuration::from_secs(2);

/// Supervisory silence that switches an opted-in pump to the
/// [`ANNOUNCE_RETRY`] cadence: a bit over two missed heartbeats, long
/// before the [`LOCAL_FAILSAFE_DEADLINE`] watchdog fires.
const ANNOUNCE_RETRY_SILENCE: SimDuration = SimDuration::from_secs(5);

/// How many recently applied command ids the pump remembers for
/// idempotence. Supervisor retries reuse the original command id, so a
/// small window is enough: in-flight ids are bounded by the retry
/// horizon, not the run length.
const APPLIED_ID_WINDOW: usize = 64;

/// Default supervision deadline of the device-local fail-safe watchdog:
/// a pump that hears neither a heartbeat nor a command for this long
/// suspends bolus delivery autonomously. Three missed 5 s heartbeats —
/// short enough that an unsupervised pump cannot keep granting boluses
/// for a dangerous stretch. A *worst-case* clean failover overshoots
/// this by one second (promotion fires after ~11 s of checkpoint
/// silence, and the last pre-crash heartbeat can predate that silence
/// by a full period — see
/// [`mcps_safety::timing::WORST_CLEAN_FAILOVER_SECS`]), so a transient
/// latch during failover is by design and is released by the promoted
/// supervisor's first acked heartbeat. Shared with the verified
/// failover model via
/// [`mcps_safety::timing::LOCAL_FAILSAFE_DEADLINE_SECS`].
pub const LOCAL_FAILSAFE_DEADLINE: SimDuration =
    SimDuration::from_secs(mcps_safety::timing::LOCAL_FAILSAFE_DEADLINE_SECS as u64);

/// Sliding window of recently applied commands, keyed by
/// `(epoch, id)` so a post-failover command can never be confused with
/// a pre-failover one even if the two supervisors' id counters collide.
/// Holds the last [`APPLIED_ID_WINDOW`] first-application records;
/// entries are unique because the caller only records on first
/// application.
#[derive(Debug, Default)]
struct CommandDedup {
    applied: VecDeque<(u64, u64, SimTime)>,
}

impl CommandDedup {
    /// When the command was first applied, if it is still in the window.
    fn seen(&self, epoch: u64, id: u64) -> Option<SimTime> {
        self.applied.iter().find(|&&(e, i, _)| e == epoch && i == id).map(|&(.., at)| at)
    }

    /// Records a first application, evicting the oldest entry when the
    /// window is full.
    fn record(&mut self, epoch: u64, id: u64, at: SimTime) {
        if self.applied.len() == APPLIED_ID_WINDOW {
            self.applied.pop_front();
        }
        self.applied.push_back((epoch, id, at));
    }
}

fn announce(
    ctx: &mut Context<'_, IceMsg>,
    netctl: ActorId,
    endpoint: EndpointId,
    scope: &str,
    profile: mcps_device::profile::DeviceProfile,
) {
    ctx.send(
        netctl,
        IceMsg::Net(NetOp::Send {
            from: endpoint,
            to: NetAddress::Topic(topics::announce_scoped(scope)),
            payload: NetPayload::Announce { profile, endpoint },
        }),
    );
}

/// The PCA pump on the network.
#[derive(Debug)]
pub struct PumpActor {
    pump: PcaPump,
    body: PatientBody,
    netctl: ActorId,
    endpoint: EndpointId,
    step: SimDuration,
    scope: String,
    fault: FaultPlan,
    /// Recently applied `(epoch, id)` pairs with their application
    /// instant — retried commands (same epoch and id) are acked again
    /// but not re-applied, so a retry can never, say, extend a ticket's
    /// validity window.
    dedup: CommandDedup,
    duplicate_commands: u64,
    last_announce: Option<SimTime>,
    /// Retry announces fast while unsupervised (serve-mode clients
    /// opt in; scripted scenarios keep the fixed cadence).
    fast_reannounce: bool,
    was_permitted: bool,
    /// Transitions of the delivery-permission state: `(instant, permitted)`.
    permit_log: Vec<(SimTime, bool)>,
    decisions: BTreeMap<&'static str, u32>,
    /// Fail-safe watchdog deadline (`None` = watchdog disabled, e.g.
    /// the open-loop arm, which runs without a supervising interlock).
    supervision: Option<SimDuration>,
    /// Last instant supervisory traffic (heartbeat or command) was
    /// accepted; seeded at the first tick so a pump powered on before
    /// its supervisor does not latch instantly.
    last_supervision: Option<SimTime>,
    /// Whether the local fail-safe latch is engaged.
    local_failsafe: bool,
    local_failsafe_entries: u64,
    /// Latch transitions: `(instant, engaged)`.
    failsafe_log: Vec<(SimTime, bool)>,
    /// Highest supervisor epoch observed; lower-epoch commands are
    /// fenced (dropped without an ack).
    max_epoch_seen: u64,
    fenced_commands: u64,
    /// First controller endpoint accepted per epoch — a second distinct
    /// sender in the same epoch is a split-brain double actuation.
    epoch_senders: BTreeMap<u64, EndpointId>,
    double_actuations: u64,
}

impl PumpActor {
    /// Wraps a pump attached to `body`, reachable via `endpoint`.
    pub fn new(pump: PcaPump, body: PatientBody, netctl: ActorId, endpoint: EndpointId) -> Self {
        PumpActor {
            pump,
            body,
            netctl,
            endpoint,
            step: SimDuration::from_secs(1),
            scope: String::new(),
            fault: FaultPlan::none(),
            dedup: CommandDedup::default(),
            duplicate_commands: 0,
            last_announce: None,
            fast_reannounce: false,
            was_permitted: false,
            permit_log: Vec::new(),
            decisions: BTreeMap::new(),
            supervision: None,
            last_supervision: None,
            local_failsafe: false,
            local_failsafe_entries: 0,
            failsafe_log: Vec::new(),
            max_epoch_seen: 0,
            fenced_commands: 0,
            epoch_senders: BTreeMap::new(),
            double_actuations: 0,
        }
    }

    /// Arms the device-local fail-safe watchdog: if no heartbeat or
    /// command is accepted for `deadline`, the pump suspends bolus
    /// delivery (basal-only safe state) until an explicit `ResumePump`.
    pub fn with_supervision(mut self, deadline: SimDuration) -> Self {
        self.supervision = Some(deadline);
        self
    }

    /// Announce at the fast [`ANNOUNCE_RETRY`] cadence whenever the
    /// supervision watchdog has been silent past
    /// [`ANNOUNCE_RETRY_SILENCE`] — so a supervisor restart (or one
    /// corrupted announce on a lossy link) costs a retry interval of
    /// re-association time, not a full announce period. Requires
    /// [`Self::with_supervision`]; without a watchdog there is no
    /// silence signal and the cadence never changes.
    pub fn with_fast_reannounce(mut self) -> Self {
        self.fast_reannounce = true;
        self
    }

    /// Sets the topic scope (bed id) this pump announces under.
    pub fn with_scope(mut self, scope: &str) -> Self {
        self.scope = scope.to_owned();
        self
    }

    /// Attaches a fault schedule to the pump's *controller* (command
    /// and ack plane). A crashed controller stops announcing, ignores
    /// commands and sends no acks, while the infusion head keeps its
    /// last program — deliberately the pessimistic case for the
    /// no-overdose invariant (a ticket-mode pump still fails safe when
    /// its ticket expires; a command-mode pump relies on the interlock
    /// having stopped it *before* the crash).
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Commands received whose id was already applied (supervisor
    /// retries absorbed by idempotence).
    pub fn duplicate_commands(&self) -> u64 {
        self.duplicate_commands
    }

    /// Whether the local fail-safe latch is currently engaged.
    pub fn local_failsafe(&self) -> bool {
        self.local_failsafe
    }

    /// Times the fail-safe watchdog fired (supervision silence past the
    /// deadline).
    pub fn local_failsafe_entries(&self) -> u64 {
        self.local_failsafe_entries
    }

    /// Fail-safe latch transitions: `(instant, engaged)`, oldest first.
    pub fn failsafe_log(&self) -> &[(SimTime, bool)] {
        &self.failsafe_log
    }

    /// Stale-epoch commands rejected by the fence.
    pub fn fenced_commands(&self) -> u64 {
        self.fenced_commands
    }

    /// Accepted commands from a *second* distinct controller within one
    /// epoch — must stay zero if the epoch fence is split-brain safe.
    pub fn double_actuations(&self) -> u64 {
        self.double_actuations
    }

    /// Highest supervisor epoch this pump has accepted a command from.
    pub fn max_epoch_seen(&self) -> u64 {
        self.max_epoch_seen
    }

    /// The wrapped pump.
    pub fn pump(&self) -> &PcaPump {
        &self.pump
    }

    /// Bolus decision counts, keyed by decision name.
    pub fn decisions(&self) -> &BTreeMap<&'static str, u32> {
        &self.decisions
    }

    /// Transitions of the delivery-permission state, oldest first.
    pub fn permit_log(&self) -> &[(SimTime, bool)] {
        &self.permit_log
    }

    /// Whether delivery was permitted at `at`, per the transition log
    /// (pumps start unpermitted in ticket mode, permitted otherwise;
    /// the log's first entry reflects the first observed state).
    pub fn was_permitted_at(&self, at: SimTime) -> bool {
        self.permit_log
            .iter()
            .take_while(|(t, _)| *t <= at)
            .last()
            .map(|(_, p)| *p)
            .unwrap_or(false)
    }

    /// First instant at or after `at` at which delivery became
    /// disallowed — used to measure interlock response latency.
    pub fn first_stop_at_or_after(&self, at: SimTime) -> Option<SimTime> {
        self.permit_log.iter().find(|(t, p)| *t >= at && !p).map(|(t, _)| *t)
    }

    fn record_decision(&mut self, d: BolusDecision) {
        let key = match d {
            BolusDecision::Started => "started",
            BolusDecision::LockedOut => "locked-out",
            BolusDecision::HourlyLimit => "hourly-limit",
            BolusDecision::Stopped => "stopped",
            BolusDecision::NoTicket => "no-ticket",
            BolusDecision::Suspended => "suspended",
        };
        *self.decisions.entry(key).or_insert(0) += 1;
    }
}

impl Actor<IceMsg> for PumpActor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        match msg {
            IceMsg::Tick => {
                let silent = self.fast_reannounce
                    && self.supervision.is_some()
                    && self
                        .last_supervision
                        .is_none_or(|t| now.saturating_since(t) >= ANNOUNCE_RETRY_SILENCE);
                let cadence = if silent { ANNOUNCE_RETRY } else { ANNOUNCE_PERIOD };
                if !self.fault.is_crashed(now)
                    && self.last_announce.is_none_or(|t| now.saturating_since(t) >= cadence)
                {
                    self.last_announce = Some(now);
                    announce(
                        ctx,
                        self.netctl,
                        self.endpoint,
                        &self.scope,
                        PcaPump::profile("PUMP-1", self.pump.config().ticket_mode),
                    );
                }
                let delivered = self.pump.delivered_since_last(now);
                if delivered > 0.0 {
                    self.body.infuse(delivered);
                }
                let permitted = self.pump.is_permitted(now);
                if self.was_permitted != permitted {
                    self.permit_log.push((now, permitted));
                    ctx.trace(
                        "pump",
                        if permitted { "delivery allowed" } else { "delivery disallowed" },
                    );
                }
                self.was_permitted = permitted;
                // Device-local fail-safe watchdog: silence on the
                // command channel past the deadline suspends boluses
                // until an explicit post-recovery resume. A crashed
                // controller cannot run its own watchdog.
                if let Some(deadline) = self.supervision {
                    if !self.fault.is_crashed(now) {
                        let last = *self.last_supervision.get_or_insert(now);
                        if !self.local_failsafe && now.saturating_since(last) >= deadline {
                            self.local_failsafe = true;
                            self.local_failsafe_entries += 1;
                            self.failsafe_log.push((now, true));
                            self.pump.suspend_bolus(now);
                            ctx.trace(
                                "pump",
                                "local fail-safe: supervision lost, boluses suspended",
                            );
                        }
                    }
                }
                ctx.schedule_self(self.step, IceMsg::Tick);
            }
            IceMsg::PressButton => {
                let d = self.pump.request_bolus(now);
                self.record_decision(d);
                ctx.trace_with("pump", || format!("bolus request: {d:?}"));
            }
            IceMsg::Net(NetOp::Deliver {
                from,
                payload: NetPayload::Command { id, epoch, command: cmd },
            }) => {
                if self.fault.is_crashed(now) {
                    ctx.trace("pump", "command dropped: controller crashed");
                    return;
                }
                // Epoch fence: a command from a superseded supervisor
                // is dropped without an ack — after a failover the
                // partitioned ex-primary must not actuate anything.
                if epoch < self.max_epoch_seen {
                    self.fenced_commands += 1;
                    let max_seen = self.max_epoch_seen;
                    ctx.trace_with("pump", || {
                        format!("fenced stale command id {id} (epoch {epoch} < {max_seen})")
                    });
                    return;
                }
                self.max_epoch_seen = epoch;
                // Split-brain audit: within one epoch exactly one
                // controller may command this pump.
                match self.epoch_senders.get(&epoch) {
                    Some(&prev) if prev != from => {
                        self.double_actuations += 1;
                        ctx.trace_with("pump", || format!("double actuation in epoch {epoch}"));
                    }
                    None => {
                        self.epoch_senders.insert(epoch, from);
                    }
                    _ => {}
                }
                // Any accepted supervisory traffic feeds the watchdog.
                self.last_supervision = Some(now);
                let applied_at = if cmd == IceCommand::Heartbeat {
                    // Pure liveness probe: ack immediately, skip the
                    // dedup window (heartbeats are never retried and
                    // would churn real command ids out of it).
                    now
                } else {
                    match self.dedup.seen(epoch, id) {
                        Some(at) => {
                            // Idempotence: a retried command is
                            // acknowledged (the first ack was evidently
                            // lost) but not re-applied.
                            self.duplicate_commands += 1;
                            ctx.trace_with("pump", || {
                                format!("duplicate command id {id} absorbed")
                            });
                            at
                        }
                        None => {
                            match cmd {
                                IceCommand::StopPump => {
                                    self.pump.stop(now, mcps_device::pump::StopReason::Command);
                                    ctx.trace("pump", "stop command applied");
                                }
                                IceCommand::ResumePump => {
                                    self.pump.resume(now);
                                    if self.local_failsafe {
                                        self.local_failsafe = false;
                                        self.failsafe_log.push((now, false));
                                        ctx.trace("pump", "local fail-safe released by resume");
                                    }
                                    ctx.trace("pump", "resume command applied");
                                }
                                IceCommand::GrantTicket { validity } => {
                                    self.pump.grant_ticket(now, validity);
                                }
                                _ => return, // not a pump command
                            }
                            self.dedup.record(epoch, id, now);
                            now
                        }
                    }
                };
                let ack = IceMsg::Net(NetOp::Send {
                    from: self.endpoint,
                    to: NetAddress::Endpoint(from),
                    payload: NetPayload::Ack { id, command: cmd, applied_at },
                });
                let copies = if self.fault.ack_duplicated(now) { 2 } else { 1 };
                for _ in 0..copies {
                    match self.fault.ack_delay(now) {
                        Some(delay) => ctx.schedule_at(now + delay, self.netctl, ack.clone()),
                        None => ctx.send(self.netctl, ack.clone()),
                    }
                }
            }
            _ => {}
        }
    }
}

/// A monitoring device (pulse oximeter, capnograph, …) on the network.
#[derive(Debug)]
pub struct MonitorActor {
    monitor: VitalsMonitor,
    body: PatientBody,
    netctl: ActorId,
    endpoint: EndpointId,
    fault: FaultPlan,
    scope: String,
    /// Pre-built per-kind vitals topics for the current scope, so the
    /// hot publish path clones an `Arc<str>` instead of formatting a
    /// fresh topic name per sample.
    vitals_topics: Vec<(VitalKind, Topic)>,
    next_announce: Option<SimTime>,
    last_values: BTreeMap<VitalKind, f64>,
    published: u64,
}

/// One vitals topic per kind under `scope`.
fn vitals_topics_for(scope: &str) -> Vec<(VitalKind, Topic)> {
    VitalKind::ALL.iter().map(|&k| (k, topics::vitals_scoped(scope, k))).collect()
}

impl MonitorActor {
    /// Wraps a monitor sampling `body`, publishing via `endpoint`.
    pub fn new(
        monitor: VitalsMonitor,
        body: PatientBody,
        netctl: ActorId,
        endpoint: EndpointId,
        fault: FaultPlan,
    ) -> Self {
        MonitorActor {
            monitor,
            body,
            netctl,
            endpoint,
            fault,
            scope: String::new(),
            vitals_topics: vitals_topics_for(""),
            next_announce: None,
            last_values: BTreeMap::new(),
            published: 0,
        }
    }

    /// Sets the topic scope (bed id) this monitor publishes under.
    pub fn with_scope(mut self, scope: &str) -> Self {
        self.scope = scope.to_owned();
        self.vitals_topics = vitals_topics_for(scope);
        self
    }

    /// Data points published so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    fn publish(&mut self, ctx: &mut Context<'_, IceMsg>, kind: VitalKind, value: f64, at: SimTime) {
        self.published += 1;
        let topic = self
            .vitals_topics
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| t.clone())
            .unwrap_or_else(|| topics::vitals_scoped(&self.scope, kind));
        ctx.send(
            self.netctl,
            IceMsg::Net(NetOp::Send {
                from: self.endpoint,
                to: NetAddress::Topic(topic),
                payload: NetPayload::Data { kind, value, sampled_at: at },
            }),
        );
    }
}

impl Actor<IceMsg> for MonitorActor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        if msg != IceMsg::Tick {
            return;
        }
        let now = ctx.now();
        // A crashed device does not even announce; silent/stuck devices
        // keep their network stack alive.
        if !self.fault.is_crashed(now) && self.next_announce.is_none_or(|t| now >= t) {
            self.next_announce = Some(now + ANNOUNCE_PERIOD);
            let profile = self.monitor.profile().clone();
            announce(ctx, self.netctl, self.endpoint, &self.scope, profile);
        }
        let period = self.monitor.sample_period();
        if self.fault.is_data_suppressed(now) {
            // Crashed or silent: nothing goes out (the freshness
            // monitors upstream are what must catch this).
            ctx.schedule_self(period, IceMsg::Tick);
            return;
        }
        if self.fault.is_stuck(now) {
            // Stuck-at fault: keep re-publishing the last values with
            // fresh timestamps — the insidious case.
            for (kind, value) in self.last_values.clone() {
                self.publish(ctx, kind, value, now);
            }
            ctx.schedule_self(period, IceMsg::Tick);
            return;
        }
        let truth = self.body.vitals();
        // Calibration drift adds a linear bias on top of the monitor's
        // own noise model; zero unless a drift fault is active.
        let bias = self.fault.value_bias(now);
        let measurements = self.monitor.sample(now, &truth, ctx.rng());
        for m in measurements {
            let value = m.value + bias;
            self.last_values.insert(m.kind, value);
            self.publish(ctx, m.kind, value, m.at);
        }
        ctx.schedule_self(period, IceMsg::Tick);
    }
}

/// The ventilator on the network.
#[derive(Debug)]
pub struct VentilatorActor {
    vent: Ventilator,
    netctl: ActorId,
    endpoint: EndpointId,
    next_announce: Option<SimTime>,
}

impl VentilatorActor {
    /// Wraps a ventilator reachable via `endpoint`.
    pub fn new(vent: Ventilator, netctl: ActorId, endpoint: EndpointId) -> Self {
        VentilatorActor { vent, netctl, endpoint, next_announce: None }
    }

    /// The wrapped ventilator.
    pub fn ventilator(&self) -> &Ventilator {
        &self.vent
    }

    /// Mutable access (scenario scoring).
    pub fn ventilator_mut(&mut self) -> &mut Ventilator {
        &mut self.vent
    }
}

impl Actor<IceMsg> for VentilatorActor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        match msg {
            IceMsg::Tick => {
                if self.next_announce.is_none_or(|t| now >= t) {
                    self.next_announce = Some(now + ANNOUNCE_PERIOD);
                    announce(ctx, self.netctl, self.endpoint, "", Ventilator::profile("VENT-1"));
                }
                self.vent.poll(now);
                ctx.schedule_self(SimDuration::from_millis(250), IceMsg::Tick);
            }
            IceMsg::Net(NetOp::Deliver {
                from,
                payload: NetPayload::Command { id, epoch: _, command: cmd },
            }) => {
                match cmd {
                    IceCommand::PauseVentilation { duration } => {
                        let out = self.vent.pause(now, duration);
                        ctx.trace_with("vent", || format!("pause -> {out:?}"));
                    }
                    IceCommand::ResumeVentilation => {
                        self.vent.resume(now);
                        ctx.trace("vent", "resumed");
                    }
                    IceCommand::Heartbeat => {} // liveness probe: ack only
                    _ => return,
                }
                ctx.send(
                    self.netctl,
                    IceMsg::Net(NetOp::Send {
                        from: self.endpoint,
                        to: NetAddress::Endpoint(from),
                        payload: NetPayload::Ack { id, command: cmd, applied_at: now },
                    }),
                );
            }
            _ => {}
        }
    }
}

/// The x-ray machine on the network.
#[derive(Debug)]
pub struct XRayActor {
    xray: XRayMachine,
    netctl: ActorId,
    endpoint: EndpointId,
    next_announce: Option<SimTime>,
}

impl XRayActor {
    /// Wraps an x-ray machine reachable via `endpoint`.
    pub fn new(xray: XRayMachine, netctl: ActorId, endpoint: EndpointId) -> Self {
        XRayActor { xray, netctl, endpoint, next_announce: None }
    }

    /// The wrapped machine.
    pub fn xray(&self) -> &XRayMachine {
        &self.xray
    }
}

impl Actor<IceMsg> for XRayActor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        let now = ctx.now();
        match msg {
            IceMsg::Tick => {
                if self.next_announce.is_none_or(|t| now >= t) {
                    self.next_announce = Some(now + ANNOUNCE_PERIOD);
                    announce(ctx, self.netctl, self.endpoint, "", XRayMachine::profile("XR-1"));
                }
                ctx.schedule_self(ANNOUNCE_PERIOD, IceMsg::Tick);
            }
            IceMsg::Net(NetOp::Deliver {
                from,
                payload: NetPayload::Command { id, epoch: _, command: cmd },
            }) => {
                match cmd {
                    IceCommand::ArmExposure => {
                        self.xray.arm();
                        ctx.trace("xray", "armed");
                    }
                    IceCommand::Expose => match self.xray.expose(now) {
                        Some(e) => {
                            ctx.trace_with("xray", || format!("exposure {} .. {}", e.start, e.end));
                        }
                        None => ctx.trace("xray", "expose refused (not armed)"),
                    },
                    IceCommand::Heartbeat => {} // liveness probe: ack only
                    _ => return,
                }
                ctx.send(
                    self.netctl,
                    IceMsg::Net(NetOp::Send {
                        from: self.endpoint,
                        to: NetAddress::Endpoint(from),
                        payload: NetPayload::Ack { id, command: cmd, applied_at: now },
                    }),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::PatientBody;

    use crate::netctl::NetworkController;
    use mcps_device::monitor::pulse_oximeter;
    use mcps_device::pump::{PcaPumpConfig, PumpState};
    use mcps_device::ventilator::VentilatorConfig;
    use mcps_device::xray::XRayConfig;
    use mcps_net::fabric::Fabric;
    use mcps_net::qos::LinkQos;
    use mcps_patient::patient::{PatientParams, VirtualPatient};
    use mcps_sim::kernel::Simulation;

    /// Records network deliveries addressed to it.
    #[derive(Debug, Default)]
    struct Sink {
        announces: u32,
        data: u32,
        acks: u32,
    }

    impl Actor<IceMsg> for Sink {
        fn handle(&mut self, msg: IceMsg, _ctx: &mut Context<'_, IceMsg>) {
            if let IceMsg::Net(NetOp::Deliver { payload, .. }) = msg {
                match payload {
                    NetPayload::Announce { .. } => self.announces += 1,
                    NetPayload::Data { .. } => self.data += 1,
                    NetPayload::Ack { .. } => self.acks += 1,
                    NetPayload::Command { .. } | NetPayload::Checkpoint { .. } => {}
                }
            }
        }
    }

    struct Rig {
        sim: Simulation<IceMsg>,
        nc_id: ActorId,
        sink_id: ActorId,
        dev_ep: EndpointId,
        sup_ep: EndpointId,
        body: PatientBody,
    }

    fn rig() -> Rig {
        let mut fabric = Fabric::new();
        fabric.set_default_qos(LinkQos::ideal());
        let dev_ep = fabric.add_endpoint("device");
        let sup_ep = fabric.add_endpoint("supervisor");
        fabric.subscribe(sup_ep, crate::netctl::topics::announce());
        for kind in mcps_patient::vitals::VitalKind::ALL {
            fabric.subscribe(sup_ep, crate::netctl::topics::vitals(kind));
        }
        let mut sim: Simulation<IceMsg> = Simulation::new(9);
        let nc_id = sim.add_actor("netctl", NetworkController::new(fabric));
        let sink_id = sim.add_actor("sink", Sink::default());
        sim.actor_as_mut::<NetworkController>(nc_id).unwrap().bind(sup_ep, sink_id);
        let body = PatientBody::new(VirtualPatient::new(PatientParams::default()));
        Rig { sim, nc_id, sink_id, dev_ep, sup_ep, body }
    }

    #[test]
    fn monitor_actor_announces_and_publishes() {
        let mut r = rig();
        let m = MonitorActor::new(
            pulse_oximeter("T-1"),
            r.body.clone(),
            r.nc_id,
            r.dev_ep,
            FaultPlan::none(),
        );
        let m_id = r.sim.add_actor("oximeter", m);
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, m_id);
        r.sim.schedule(SimTime::ZERO, m_id, IceMsg::Tick);
        r.sim.run_until(SimTime::from_secs(30));
        let sink = r.sim.actor_as::<Sink>(r.sink_id).unwrap();
        // Re-announces every 10 s: t=0,10,20,30 ⇒ up to 4.
        assert!((3..=4).contains(&sink.announces), "announces {}", sink.announces);
        assert!(sink.data > 40, "expected ~2 channels x 30 samples, got {}", sink.data);
        assert!(r.sim.actor_as::<MonitorActor>(m_id).unwrap().published() > 40);
    }

    #[test]
    fn crashed_monitor_stays_silent() {
        let mut r = rig();
        let m = MonitorActor::new(
            pulse_oximeter("T-2"),
            r.body.clone(),
            r.nc_id,
            r.dev_ep,
            FaultPlan::none().with_fault(
                mcps_device::faults::FaultKind::Crash,
                SimTime::ZERO,
                None,
            ),
        );
        let m_id = r.sim.add_actor("oximeter", m);
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, m_id);
        r.sim.schedule(SimTime::ZERO, m_id, IceMsg::Tick);
        r.sim.run_until(SimTime::from_secs(20));
        let sink = r.sim.actor_as::<Sink>(r.sink_id).unwrap();
        assert_eq!(sink.data, 0);
        assert_eq!(sink.announces, 0, "a crashed device does not even announce");
    }

    #[test]
    fn pump_actor_applies_commands_and_acks() {
        let mut r = rig();
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor("pump", PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep));
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, p_id);
        r.sim.schedule(SimTime::ZERO, p_id, IceMsg::Tick);
        // Deliver a stop command "from" the supervisor endpoint.
        r.sim.schedule(
            SimTime::from_secs(5),
            p_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command { id: 1, epoch: 1, command: IceCommand::StopPump },
            }),
        );
        r.sim.run_until(SimTime::from_secs(10));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(pa.pump().state(), PumpState::Stopped(mcps_device::pump::StopReason::Command));
        let sink = r.sim.actor_as::<Sink>(r.sink_id).unwrap();
        assert_eq!(sink.acks, 1, "stop must be acknowledged");
        // Permission transition was logged.
        assert!(pa.first_stop_at_or_after(SimTime::ZERO).is_some());
    }

    #[test]
    fn pump_actor_counts_button_decisions_and_infuses_body() {
        let mut r = rig();
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor("pump", PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep));
        r.sim.schedule(SimTime::ZERO, p_id, IceMsg::Tick);
        r.sim.schedule(SimTime::from_secs(2), p_id, IceMsg::PressButton);
        r.sim.schedule(SimTime::from_secs(3), p_id, IceMsg::PressButton); // inside lockout
        r.sim.run_until(SimTime::from_mins(2));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(pa.decisions().get("started"), Some(&1));
        assert_eq!(pa.decisions().get("locked-out"), Some(&1));
        // The 1 mg bolus ended up in the patient's body.
        assert!((r.body.total_drug_mg() - 1.0).abs() < 1e-9, "{}", r.body.total_drug_mg());
    }

    /// A retried GrantTicket (same command id) must be re-acked but not
    /// re-applied: the ticket's expiry is set by the first application
    /// and a duplicate must not extend the delivery window.
    #[test]
    fn pump_actor_dedups_command_ids() {
        let mut r = rig();
        let pump = PcaPump::new(PcaPumpConfig { ticket_mode: true, ..Default::default() });
        let p_id = r.sim.add_actor("pump", PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep));
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, p_id);
        let grant = |id| {
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command {
                    id,
                    epoch: 1,
                    command: IceCommand::GrantTicket { validity: SimDuration::from_secs(15) },
                },
            })
        };
        r.sim.schedule(SimTime::from_secs(1), p_id, grant(7));
        r.sim.schedule(SimTime::from_secs(10), p_id, grant(7)); // retry of the same send
        r.sim.run_until(SimTime::from_secs(12));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(pa.duplicate_commands(), 1);
        // Ticket still expires 15 s after the *first* application.
        assert!(pa.pump().is_permitted(SimTime::from_secs(15)));
        assert!(!pa.pump().is_permitted(SimTime::from_secs(17)), "retry must not extend ticket");
        // But the retry is re-acked so the supervisor's watchdog settles.
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 2);
    }

    #[test]
    fn pump_ack_faults_delay_and_duplicate() {
        let mut r = rig();
        let fault = FaultPlan::none()
            .with_fault(
                mcps_device::faults::FaultKind::DelayedAck { delay_ms: 3000 },
                SimTime::ZERO,
                Some(SimTime::from_secs(20)),
            )
            .with_fault(mcps_device::faults::FaultKind::DuplicateAck, SimTime::from_secs(20), None);
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor(
            "pump",
            PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep).with_faults(fault),
        );
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, p_id);
        let cmd = |id, command, t| {
            (
                SimTime::from_secs(t),
                IceMsg::Net(NetOp::Deliver {
                    from: r.sup_ep,
                    payload: NetPayload::Command { id, epoch: 1, command },
                }),
            )
        };
        let (t1, m1) = cmd(1, IceCommand::StopPump, 5);
        let (t2, m2) = cmd(2, IceCommand::ResumePump, 25);
        r.sim.schedule(t1, p_id, m1);
        r.sim.schedule(t2, p_id, m2);
        // Just after the stop, the delayed ack (due t=8) is not out yet.
        r.sim.run_until(SimTime::from_secs(6));
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 0, "ack held back");
        r.sim.run_until(SimTime::from_secs(30));
        // 1 delayed ack for the stop + 2 duplicated acks for the resume.
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 3);
    }

    #[test]
    fn crashed_pump_controller_ignores_commands() {
        let mut r = rig();
        let fault = FaultPlan::none().with_fault(
            mcps_device::faults::FaultKind::Crash,
            SimTime::from_secs(3),
            None,
        );
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor(
            "pump",
            PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep).with_faults(fault),
        );
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, p_id);
        r.sim.schedule(SimTime::ZERO, p_id, IceMsg::Tick);
        r.sim.schedule(
            SimTime::from_secs(5),
            p_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command { id: 1, epoch: 1, command: IceCommand::StopPump },
            }),
        );
        r.sim.run_until(SimTime::from_secs(15));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(pa.pump().state(), PumpState::Running, "crashed controller applies nothing");
        let sink = r.sim.actor_as::<Sink>(r.sink_id).unwrap();
        assert_eq!(sink.acks, 0, "no acks from a crashed controller");
        // Only the pre-crash announce window (t=0) made it out.
        assert_eq!(sink.announces, 1);
    }

    #[test]
    fn drifting_monitor_biases_published_values() {
        let mut r = rig();
        let fault = FaultPlan::none().with_fault(
            mcps_device::faults::FaultKind::Drift { bias_milli_per_sec: -100 },
            SimTime::ZERO,
            None,
        );
        let m = MonitorActor::new(pulse_oximeter("T-3"), r.body.clone(), r.nc_id, r.dev_ep, fault);
        let m_id = r.sim.add_actor("oximeter", m);
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, m_id);

        #[derive(Debug, Default)]
        struct Spo2Sink {
            last: Option<(SimTime, f64)>,
        }
        impl Actor<IceMsg> for Spo2Sink {
            fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
                if let IceMsg::Net(NetOp::Deliver {
                    payload: NetPayload::Data { kind: VitalKind::Spo2, value, .. },
                    ..
                }) = msg
                {
                    self.last = Some((ctx.now(), value));
                }
            }
        }
        let sink2 = r.sim.add_actor("spo2sink", Spo2Sink::default());
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.sup_ep, sink2);
        r.sim.schedule(SimTime::ZERO, m_id, IceMsg::Tick);
        r.sim.run_until(SimTime::from_secs(120));
        let (_, v) = r.sim.actor_as::<Spo2Sink>(sink2).unwrap().last.expect("samples published");
        // After ~2 min at -0.1/s the bias (~-12) dwarfs sensor noise, so
        // the published SpO2 must sit far below any healthy reading.
        assert!(v < 90.0, "drift bias not applied: SpO2 {v}");
    }

    #[test]
    fn ventilator_actor_handles_pause_cycle() {
        let mut r = rig();
        let v = Ventilator::new(SimTime::ZERO, VentilatorConfig::default());
        let v_id = r.sim.add_actor("vent", VentilatorActor::new(v, r.nc_id, r.dev_ep));
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, v_id);
        r.sim.schedule(SimTime::ZERO, v_id, IceMsg::Tick);
        r.sim.schedule(
            SimTime::from_secs(5),
            v_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command {
                    id: 1,
                    epoch: 1,
                    command: IceCommand::PauseVentilation { duration: SimDuration::from_secs(8) },
                },
            }),
        );
        r.sim.schedule(
            SimTime::from_secs(9),
            v_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command {
                    id: 2,
                    epoch: 1,
                    command: IceCommand::ResumeVentilation,
                },
            }),
        );
        r.sim.run_until(SimTime::from_secs(20));
        let va = r.sim.actor_as::<VentilatorActor>(v_id).unwrap();
        assert_eq!(va.ventilator().pause_log(), &[(SimTime::from_secs(5), SimTime::from_secs(9))]);
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 2);
    }

    /// Silence past the supervision deadline latches the fail-safe:
    /// boluses are suspended until an explicit `ResumePump`, which both
    /// releases the latch and refreshes the watchdog.
    #[test]
    fn pump_watchdog_latches_on_silence_and_resume_releases() {
        let mut r = rig();
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor(
            "pump",
            PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep)
                .with_supervision(SimDuration::from_secs(15)),
        );
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, p_id);
        r.sim.schedule(SimTime::ZERO, p_id, IceMsg::Tick);
        // A heartbeat at t=10 defers the latch to ~t=25.
        r.sim.schedule(
            SimTime::from_secs(10),
            p_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command { id: 1, epoch: 1, command: IceCommand::Heartbeat },
            }),
        );
        r.sim.schedule(SimTime::from_secs(20), p_id, IceMsg::PressButton);
        r.sim.schedule(SimTime::from_secs(40), p_id, IceMsg::PressButton);
        r.sim.schedule(
            SimTime::from_secs(50),
            p_id,
            IceMsg::Net(NetOp::Deliver {
                from: r.sup_ep,
                payload: NetPayload::Command { id: 2, epoch: 1, command: IceCommand::ResumePump },
            }),
        );
        r.sim.schedule(SimTime::from_secs(55), p_id, IceMsg::PressButton);
        r.sim.run_until(SimTime::from_secs(60));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(pa.local_failsafe_entries(), 1);
        assert!(!pa.local_failsafe(), "resume released the latch");
        assert_eq!(pa.decisions().get("started"), Some(&1), "t=20 bolus pre-dates the latch");
        assert_eq!(pa.decisions().get("suspended"), Some(&1), "t=40 bolus denied by fail-safe");
        // The t=55 press is denied by the ordinary lockout interval,
        // not the fail-safe — proof the resume released the latch
        // (suspension outranks lockout, so a held latch would say
        // "suspended" here).
        assert_eq!(pa.decisions().get("locked-out"), Some(&1), "t=55 denial is lockout");
        let latch = pa.failsafe_log().first().expect("latch transition logged");
        assert!(
            latch.0 >= SimTime::from_secs(25) && latch.0 <= SimTime::from_secs(27),
            "{latch:?}"
        );
        // The heartbeat was acked (plus the resume's ack).
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 2);
    }

    /// Stale-epoch commands are dropped without application or ack, and
    /// two distinct controllers in one epoch register a double
    /// actuation.
    #[test]
    fn pump_epoch_fence_rejects_stale_and_flags_double_actuation() {
        let mut r = rig();
        let standby_ep = {
            let nc = r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap();
            nc.fabric_mut().add_endpoint("standby")
        };
        let pump = PcaPump::new(PcaPumpConfig::default());
        let p_id = r.sim.add_actor("pump", PumpActor::new(pump, r.body.clone(), r.nc_id, r.dev_ep));
        {
            let nc = r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap();
            nc.bind(r.dev_ep, p_id);
            // Acks route back to their sender: the standby's ack must
            // land in the same sink as the primary's.
            nc.bind(standby_ep, r.sink_id);
        }
        let cmd = |from, id, epoch, command, t| {
            (
                SimTime::from_secs(t),
                IceMsg::Net(NetOp::Deliver {
                    from,
                    payload: NetPayload::Command { id, epoch, command },
                }),
            )
        };
        // Promoted standby stops the pump in epoch 2 …
        let (t1, m1) = cmd(standby_ep, 1, 2, IceCommand::StopPump, 5);
        // … then the partitioned ex-primary's stale resume (epoch 1)
        // must be fenced, not applied.
        let (t2, m2) = cmd(r.sup_ep, 9, 1, IceCommand::ResumePump, 6);
        // A same-epoch command from a second controller is a double
        // actuation (applied — the fence can't tell which is right —
        // but audited).
        let (t3, m3) = cmd(r.sup_ep, 10, 2, IceCommand::Heartbeat, 7);
        for (t, m) in [(t1, m1), (t2, m2), (t3, m3)] {
            r.sim.schedule(t, p_id, m);
        }
        r.sim.run_until(SimTime::from_secs(10));
        let pa = r.sim.actor_as::<PumpActor>(p_id).unwrap();
        assert_eq!(
            pa.pump().state(),
            PumpState::Stopped(mcps_device::pump::StopReason::Command),
            "stale resume must not restart the pump"
        );
        assert_eq!(pa.fenced_commands(), 1);
        assert_eq!(pa.max_epoch_seen(), 2);
        assert_eq!(pa.double_actuations(), 1);
        // Acks: stop + heartbeat; the fenced command got none.
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 2);
    }

    proptest::proptest! {
        /// The 64-entry dedup window agrees with a naive oracle built
        /// from the full record history: `seen` returns exactly the
        /// most recent record among the last 64, and never invents an
        /// entry (no false accepts after wraparound).
        #[test]
        fn command_dedup_window_matches_unbounded_oracle(
            ops in proptest::collection::vec((0u64..2, 0u64..200), 1..300),
        ) {
            let mut dedup = CommandDedup::default();
            // Mirror of every `record` call, unbounded.
            let mut history: Vec<(u64, u64, SimTime)> = Vec::new();
            for (step, &(epoch, id)) in ops.iter().enumerate() {
                let now = SimTime::from_secs(step as u64);
                // The actor's loop: record only on first sight.
                if dedup.seen(epoch, id).is_none() {
                    dedup.record(epoch, id, now);
                    history.push((epoch, id, now));
                }
                // The window must equal the last 64 record events of
                // the unbounded history, nothing else.
                let tail = &history[history.len().saturating_sub(APPLIED_ID_WINDOW)..];
                proptest::prop_assert_eq!(
                    dedup.applied.iter().copied().collect::<Vec<_>>(),
                    tail.to_vec(),
                    "window diverged from oracle tail at step {}",
                    step
                );
                // Spot-probe this step's key: its answer must be the
                // tail's most recent matching record (idempotent re-ack
                // with the *original* application instant), and a key
                // outside the tail must not be invented.
                let expect = tail
                    .iter()
                    .rev()
                    .find(|&&(e, i, _)| e == epoch && i == id)
                    .map(|&(.., at)| at);
                proptest::prop_assert_eq!(dedup.seen(epoch, id), expect);
                proptest::prop_assert_eq!(dedup.seen(epoch + 7, id), None, "no false accepts");
            }
        }
    }

    #[test]
    fn xray_actor_arms_and_exposes() {
        let mut r = rig();
        let x = XRayMachine::new(XRayConfig::default());
        let x_id = r.sim.add_actor("xray", XRayActor::new(x, r.nc_id, r.dev_ep));
        r.sim.actor_as_mut::<NetworkController>(r.nc_id).unwrap().bind(r.dev_ep, x_id);
        r.sim.schedule(SimTime::ZERO, x_id, IceMsg::Tick);
        for (t, id, cmd) in [(2u64, 1, IceCommand::ArmExposure), (3, 2, IceCommand::Expose)] {
            r.sim.schedule(
                SimTime::from_secs(t),
                x_id,
                IceMsg::Net(NetOp::Deliver {
                    from: r.sup_ep,
                    payload: NetPayload::Command { id, epoch: 1, command: cmd },
                }),
            );
        }
        r.sim.run_until(SimTime::from_secs(10));
        let xa = r.sim.actor_as::<XRayActor>(x_id).unwrap();
        assert_eq!(xa.xray().exposures().len(), 1);
        assert_eq!(r.sim.actor_as::<Sink>(r.sink_id).unwrap().acks, 2);
    }
}
