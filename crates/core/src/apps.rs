//! Concrete clinical apps: the paper's two flagship scenarios.

use mcps_control::interlock::{InterlockAction, InterlockConfig, InterlockStrategy, PcaInterlock};
use mcps_device::profile::{
    CommandKind, DeviceClass, DeviceRequirementSet, LatencyClass, Requirement,
};
use mcps_patient::vitals::VitalKind;
use mcps_sim::rng::log_normal;
use mcps_sim::time::{SimDuration, SimTime};

use crate::app::{AppCtx, ClinicalApp};
use crate::msg::IceCommand;

/// A ward-floor spot-check monitoring app: one oximeter slot sampled
/// at general-care cadence (tens of seconds, not 1 Hz), no commands,
/// no interlock — it watches SpO₂ and counts desaturation alarms.
///
/// This is the cheap bed of the campus scenario: general-care wards
/// are overwhelmingly monitor-only, and their event budget is what
/// makes 10k concurrent beds tractable.
#[derive(Debug, Default)]
pub struct WardMonitorApp {
    observations: u64,
    desat_alarms: u64,
    /// Latched while SpO₂ is below threshold so one sustained desat
    /// counts once, not once per sample.
    in_desat: bool,
    last_spo2: Option<f64>,
}

/// SpO₂ below this raises a ward desaturation alarm.
const WARD_DESAT_THRESHOLD: f64 = 90.0;

impl WardMonitorApp {
    /// Creates the app.
    pub fn new() -> Self {
        WardMonitorApp::default()
    }

    /// Data points observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Distinct desaturation episodes alarmed.
    pub fn desat_alarms(&self) -> u64 {
        self.desat_alarms
    }

    /// The most recent SpO₂ reading, if any.
    pub fn last_spo2(&self) -> Option<f64> {
        self.last_spo2
    }
}

impl ClinicalApp for WardMonitorApp {
    fn requirements(&self) -> Vec<DeviceRequirementSet> {
        vec![DeviceRequirementSet::new(
            "monitor",
            vec![Requirement::Stream {
                kind: VitalKind::Spo2,
                // Spot-check cadence: anything at or under 30 s keeps
                // the supervisor's disassociation timeout satisfied.
                max_period: SimDuration::from_secs(30),
                latency_class: LatencyClass::BestEffort,
            }],
        )]
    }

    fn on_data(&mut self, ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _at: SimTime) {
        self.observations += 1;
        if kind != VitalKind::Spo2 {
            return;
        }
        self.last_spo2 = Some(value);
        if value < WARD_DESAT_THRESHOLD {
            if !self.in_desat {
                self.in_desat = true;
                self.desat_alarms += 1;
                ctx.note_with(|| format!("ward desat alarm: SpO2 {value:.1}"));
            }
        } else {
            self.in_desat = false;
        }
    }

    fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
}

/// The PCA safety-interlock app: watches SpO₂/RR (and whatever else is
/// published), revokes the pump's permission on respiratory depression
/// or data staleness.
#[derive(Debug)]
pub struct PcaSafetyApp {
    interlock: PcaInterlock,
}

impl PcaSafetyApp {
    /// Creates the app around an interlock configuration.
    pub fn new(config: InterlockConfig) -> Self {
        PcaSafetyApp { interlock: PcaInterlock::new(config) }
    }

    /// The hosted interlock (for post-run inspection).
    pub fn interlock(&self) -> &PcaInterlock {
        &self.interlock
    }

    fn pump_requirements(&self) -> Vec<Requirement> {
        let mut reqs = vec![Requirement::Class(DeviceClass::Infusion)];
        match self.interlock.config().strategy {
            InterlockStrategy::Command => {
                reqs.push(Requirement::Command(CommandKind::Stop));
                reqs.push(Requirement::Command(CommandKind::Resume));
            }
            InterlockStrategy::Ticket { .. } => {
                reqs.push(Requirement::Command(CommandKind::GrantTicket));
            }
        }
        reqs
    }
}

impl ClinicalApp for PcaSafetyApp {
    fn requirements(&self) -> Vec<DeviceRequirementSet> {
        vec![
            DeviceRequirementSet::new(
                "oximeter",
                vec![Requirement::Stream {
                    kind: VitalKind::Spo2,
                    max_period: SimDuration::from_secs(2),
                    latency_class: LatencyClass::NearRealtime,
                }],
            ),
            DeviceRequirementSet::new(
                "capnograph",
                vec![Requirement::Stream {
                    kind: VitalKind::RespRate,
                    max_period: SimDuration::from_secs(2),
                    latency_class: LatencyClass::NearRealtime,
                }],
            ),
            DeviceRequirementSet::new("pump", self.pump_requirements()),
        ]
    }

    fn on_associated(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.note("PCA safety app armed");
    }

    fn on_data(&mut self, ctx: &mut AppCtx<'_>, kind: VitalKind, value: f64, _sampled_at: SimTime) {
        // Freshness is judged by *arrival* time: data delayed in the
        // network is exactly as dangerous as data never sent.
        self.interlock.on_measurement(ctx.now(), kind, value);
    }

    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if !ctx.fully_associated() {
            return;
        }
        for action in self.interlock.on_tick(ctx.now()) {
            let cmd = match action {
                InterlockAction::StopPump => {
                    ctx.note("interlock: STOP pump");
                    IceCommand::StopPump
                }
                InterlockAction::ResumePump => {
                    ctx.note("interlock: resume pump");
                    IceCommand::ResumePump
                }
                InterlockAction::GrantTicket { validity } => IceCommand::GrantTicket { validity },
            };
            ctx.command("pump", cmd);
        }
    }
}

/// Workflow style for the x-ray coordination app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkflowStyle {
    /// ICE-coordinated: steps proceed as fast as acks arrive.
    Automated,
    /// Manual baseline: a human performs each step after a log-normally
    /// distributed reaction delay with the given median (seconds).
    Manual {
        /// Median human step delay, seconds.
        median_step_delay_secs: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum XrState {
    Idle,
    WaitPauseAck,
    ArmWhenReady { at: SimTime },
    WaitArmAck,
    ExposeWhenReady { at: SimTime },
    WaitExposeAck,
    ResumeWhenReady { at: SimTime },
}

/// Coordinates ventilator pauses with x-ray exposures: pause → arm →
/// expose → resume, one exposure per `interval`.
#[derive(Debug)]
pub struct XRayCoordinatorApp {
    style: WorkflowStyle,
    total_exposures: u32,
    interval: SimDuration,
    pause_duration: SimDuration,
    step_timeout: SimDuration,
    state: XrState,
    state_since: SimTime,
    next_request_at: SimTime,
    requested: u32,
    completed: u32,
    aborted: u32,
}

impl XRayCoordinatorApp {
    /// Creates the coordinator: `total_exposures` exposures, one per
    /// `interval`, each inside a requested pause of `pause_duration`.
    pub fn new(
        style: WorkflowStyle,
        total_exposures: u32,
        interval: SimDuration,
        pause_duration: SimDuration,
    ) -> Self {
        XRayCoordinatorApp {
            style,
            total_exposures,
            interval,
            pause_duration,
            step_timeout: SimDuration::from_secs(60),
            state: XrState::Idle,
            state_since: SimTime::ZERO,
            next_request_at: SimTime::ZERO,
            requested: 0,
            completed: 0,
            aborted: 0,
        }
    }

    /// Exposure sequences started.
    pub fn requested(&self) -> u32 {
        self.requested
    }

    /// Exposure sequences completed (expose command acknowledged).
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// Sequences aborted on step timeout.
    pub fn aborted(&self) -> u32 {
        self.aborted
    }

    fn human_delay(&self, ctx: &mut AppCtx<'_>) -> SimDuration {
        match self.style {
            WorkflowStyle::Automated => SimDuration::ZERO,
            WorkflowStyle::Manual { median_step_delay_secs } => {
                let mu = median_step_delay_secs.max(0.1).ln();
                SimDuration::from_secs_f64(log_normal(ctx.rng(), mu, 0.5))
            }
        }
    }

    fn goto(&mut self, now: SimTime, state: XrState) {
        self.state = state;
        self.state_since = now;
    }
}

impl ClinicalApp for XRayCoordinatorApp {
    fn requirements(&self) -> Vec<DeviceRequirementSet> {
        vec![
            DeviceRequirementSet::new(
                "ventilator",
                vec![
                    Requirement::Class(DeviceClass::Ventilation),
                    Requirement::Command(CommandKind::PauseVentilation),
                    Requirement::Command(CommandKind::ResumeVentilation),
                ],
            ),
            DeviceRequirementSet::new(
                "xray",
                vec![
                    Requirement::Class(DeviceClass::Imaging),
                    Requirement::Command(CommandKind::ArmExposure),
                    Requirement::Command(CommandKind::Expose),
                ],
            ),
        ]
    }

    fn on_data(&mut self, _ctx: &mut AppCtx<'_>, _kind: VitalKind, _value: f64, _at: SimTime) {}

    fn on_ack(&mut self, ctx: &mut AppCtx<'_>, command: IceCommand, _applied_at: SimTime) {
        let now = ctx.now();
        match (self.state, command) {
            (XrState::WaitPauseAck, IceCommand::PauseVentilation { .. }) => {
                let delay = self.human_delay(ctx);
                self.goto(now, XrState::ArmWhenReady { at: now + delay });
            }
            (XrState::WaitArmAck, IceCommand::ArmExposure) => {
                let delay = self.human_delay(ctx);
                self.goto(now, XrState::ExposeWhenReady { at: now + delay });
            }
            (XrState::WaitExposeAck, IceCommand::Expose) => {
                // Hold the pause briefly past the shutter window so the
                // resume command cannot land mid-exposure.
                self.goto(now, XrState::ResumeWhenReady { at: now + SimDuration::from_secs(3) });
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if !ctx.fully_associated() {
            return;
        }
        let now = ctx.now();
        // Step timeout: abort the sequence, resume ventilation.
        if self.state != XrState::Idle && now.saturating_since(self.state_since) > self.step_timeout
        {
            self.aborted += 1;
            ctx.note("sequence aborted on timeout");
            ctx.command("ventilator", IceCommand::ResumeVentilation);
            self.next_request_at = now + self.interval;
            self.goto(now, XrState::Idle);
            return;
        }
        match self.state {
            XrState::Idle
                if self.requested < self.total_exposures && now >= self.next_request_at =>
            {
                self.requested += 1;
                ctx.command(
                    "ventilator",
                    IceCommand::PauseVentilation { duration: self.pause_duration },
                );
                self.goto(now, XrState::WaitPauseAck);
            }
            XrState::ArmWhenReady { at } if now >= at => {
                ctx.command("xray", IceCommand::ArmExposure);
                self.goto(now, XrState::WaitArmAck);
            }
            XrState::ExposeWhenReady { at } if now >= at => {
                ctx.command("xray", IceCommand::Expose);
                self.goto(now, XrState::WaitExposeAck);
            }
            XrState::ResumeWhenReady { at } if now >= at => {
                ctx.command("ventilator", IceCommand::ResumeVentilation);
                self.completed += 1;
                ctx.note_with(|| format!("exposure sequence {} complete", self.completed));
                self.next_request_at = now + self.interval;
                self.goto(now, XrState::Idle);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::DeviceManager;
    use mcps_sim::rng::RngFactory;

    /// Drives an app through one callback with a fully-associated
    /// manager, returning the commands it issued.
    fn drive<A: ClinicalApp>(
        app: &mut A,
        manager: &DeviceManager,
        now_secs: u64,
        f: impl FnOnce(&mut A, &mut AppCtx<'_>),
    ) -> Vec<(String, IceCommand)> {
        let mut rng = RngFactory::new(1).stream("apps-test");
        let mut ctx = AppCtx::new(SimTime::from_secs(now_secs), manager, &mut rng);
        f(app, &mut ctx);
        ctx.into_parts().0
    }

    fn associated_manager(app: &impl ClinicalApp) -> DeviceManager {
        let mut fabric = mcps_net::fabric::Fabric::new();
        let mut m = DeviceManager::new(app.requirements());
        // Fill every slot with a synthetic all-capable device.
        let profile = {
            let mut b = mcps_device::profile::DeviceProfile::builder(
                "Test",
                "Omni",
                "SN",
                DeviceClass::Infusion,
            );
            for k in mcps_patient::vitals::VitalKind::ALL {
                b = b.stream(k, SimDuration::from_millis(500), LatencyClass::Realtime);
            }
            for c in [
                CommandKind::Stop,
                CommandKind::Resume,
                CommandKind::GrantTicket,
                CommandKind::PauseVentilation,
                CommandKind::ResumeVentilation,
                CommandKind::ArmExposure,
                CommandKind::Expose,
            ] {
                b = b.command(c);
            }
            b.build()
        };
        // One device per slot; class requirements differ, so craft per slot.
        let slot_names: Vec<String> = m.slot_names().map(str::to_owned).collect();
        for slot in slot_names {
            let ep = fabric.add_endpoint(&format!("ep-{slot}"));
            let mut p = profile.clone();
            p.class = match slot.as_str() {
                "pump" => DeviceClass::Infusion,
                "ventilator" => DeviceClass::Ventilation,
                "xray" => DeviceClass::Imaging,
                _ => DeviceClass::Monitor,
            };
            let outcome = m.on_announce(ep, &p);
            assert!(
                matches!(outcome, crate::manager::AssociationOutcome::Associated { .. }),
                "slot {slot}: {outcome:?}"
            );
        }
        assert!(m.fully_associated());
        m
    }

    #[test]
    fn pca_app_grants_tickets_on_healthy_fresh_data() {
        let mut app = PcaSafetyApp::new(InterlockConfig::default());
        let manager = associated_manager(&app);
        let mut grants = 0;
        for s in 0..30 {
            drive(&mut app, &manager, s, |a, ctx| {
                a.on_data(ctx, VitalKind::Spo2, 97.0, ctx.now());
                a.on_data(ctx, VitalKind::RespRate, 14.0, ctx.now());
            });
            let cmds = drive(&mut app, &manager, s, |a, ctx| a.on_tick(ctx));
            grants += cmds
                .iter()
                .filter(|(slot, c)| slot == "pump" && matches!(c, IceCommand::GrantTicket { .. }))
                .count();
        }
        assert!((5..=7).contains(&grants), "expected ~6 grants in 30s, got {grants}");
    }

    #[test]
    fn pca_app_withholds_when_unassociated() {
        let mut app = PcaSafetyApp::new(InterlockConfig::default());
        let manager = DeviceManager::new(app.requirements()); // nothing associated
        for s in 0..10 {
            let cmds = drive(&mut app, &manager, s, |a, ctx| a.on_tick(ctx));
            assert!(cmds.is_empty(), "no commands before association");
        }
    }

    #[test]
    fn xray_app_runs_one_full_sequence() {
        let mut app = XRayCoordinatorApp::new(
            WorkflowStyle::Automated,
            1,
            SimDuration::from_mins(2),
            SimDuration::from_secs(15),
        );
        let manager = associated_manager(&app);
        // Tick 0: requests the pause.
        let cmds = drive(&mut app, &manager, 0, |a, ctx| a.on_tick(ctx));
        assert!(
            matches!(cmds.as_slice(), [(s, IceCommand::PauseVentilation { .. })] if s == "ventilator")
        );
        // Ack the pause: app schedules the arm.
        drive(&mut app, &manager, 1, |a, ctx| {
            a.on_ack(
                ctx,
                IceCommand::PauseVentilation { duration: SimDuration::from_secs(15) },
                ctx.now(),
            )
        });
        let cmds = drive(&mut app, &manager, 2, |a, ctx| a.on_tick(ctx));
        assert!(
            matches!(cmds.as_slice(), [(s, IceCommand::ArmExposure)] if s == "xray"),
            "{cmds:?}"
        );
        drive(&mut app, &manager, 3, |a, ctx| a.on_ack(ctx, IceCommand::ArmExposure, ctx.now()));
        let cmds = drive(&mut app, &manager, 4, |a, ctx| a.on_tick(ctx));
        assert!(matches!(cmds.as_slice(), [(s, IceCommand::Expose)] if s == "xray"), "{cmds:?}");
        drive(&mut app, &manager, 5, |a, ctx| a.on_ack(ctx, IceCommand::Expose, ctx.now()));
        // Resume comes after the post-exposure hold (3 s).
        let cmds = drive(&mut app, &manager, 9, |a, ctx| a.on_tick(ctx));
        assert!(
            matches!(cmds.as_slice(), [(s, IceCommand::ResumeVentilation)] if s == "ventilator"),
            "{cmds:?}"
        );
        assert_eq!(app.completed(), 1);
        assert_eq!(app.aborted(), 0);
    }

    #[test]
    fn xray_app_aborts_on_step_timeout() {
        let mut app = XRayCoordinatorApp::new(
            WorkflowStyle::Automated,
            1,
            SimDuration::from_mins(2),
            SimDuration::from_secs(15),
        );
        let manager = associated_manager(&app);
        drive(&mut app, &manager, 0, |a, ctx| a.on_tick(ctx)); // pause requested
                                                               // No ack ever arrives: at +61 s the app must abort and resume.
        let cmds = drive(&mut app, &manager, 61, |a, ctx| a.on_tick(ctx));
        assert!(
            matches!(cmds.as_slice(), [(s, IceCommand::ResumeVentilation)] if s == "ventilator"),
            "{cmds:?}"
        );
        assert_eq!(app.aborted(), 1);
        assert_eq!(app.completed(), 0);
    }

    #[test]
    fn pca_app_requirements_follow_strategy() {
        let ticket = PcaSafetyApp::new(InterlockConfig::default());
        let reqs = ticket.requirements();
        assert_eq!(reqs.len(), 3);
        let pump_slot = reqs.iter().find(|r| r.slot == "pump").unwrap();
        assert!(pump_slot.requirements.contains(&Requirement::Command(CommandKind::GrantTicket)));

        let command = PcaSafetyApp::new(InterlockConfig {
            strategy: InterlockStrategy::Command,
            ..InterlockConfig::default()
        });
        let reqs = command.requirements();
        let pump_slot = reqs.iter().find(|r| r.slot == "pump").unwrap();
        assert!(pump_slot.requirements.contains(&Requirement::Command(CommandKind::Stop)));
    }

    #[test]
    fn xray_app_counts_start_at_zero() {
        let app = XRayCoordinatorApp::new(
            WorkflowStyle::Automated,
            5,
            SimDuration::from_mins(2),
            SimDuration::from_secs(15),
        );
        assert_eq!((app.requested(), app.completed(), app.aborted()), (0, 0, 0));
        assert_eq!(app.requirements().len(), 2);
    }
}
