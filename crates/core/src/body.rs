//! The patient's body as shared physical state.
//!
//! Network messages are mediated by the fabric, but *physical*
//! couplings — drug flowing through a catheter, a sensor clipped to a
//! finger — are not network traffic. They are modelled as shared access
//! to one [`PatientBody`] cell: the patient actor advances physiology,
//! the pump actor infuses into it, monitor actors sample it. The
//! simulation is single-threaded, so `Rc<RefCell<_>>` is sound here.

use mcps_patient::patient::{PatientOutcome, VirtualPatient};
use mcps_patient::vitals::VitalsFrame;
use mcps_sim::actor::Actor;
use mcps_sim::kernel::Context;
use mcps_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

use crate::msg::IceMsg;

/// Shared handle to the patient's physiology.
#[derive(Debug, Clone)]
pub struct PatientBody {
    inner: Rc<RefCell<VirtualPatient>>,
}

impl PatientBody {
    /// Wraps a virtual patient for shared physical access.
    pub fn new(patient: VirtualPatient) -> Self {
        PatientBody { inner: Rc::new(RefCell::new(patient)) }
    }

    /// Current true vitals.
    pub fn vitals(&self) -> VitalsFrame {
        self.inner.borrow().vitals()
    }

    /// Infuses `mg` of drug (catheter path).
    pub fn infuse(&self, mg: f64) {
        self.inner.borrow_mut().give_bolus(mg);
    }

    /// Current effect-site concentration, mg/L.
    pub fn effect_site_conc(&self) -> f64 {
        self.inner.borrow().effect_site_conc()
    }

    /// Whether the patient is too sedated to press the button.
    pub fn is_unconscious(&self) -> bool {
        self.inner.borrow().is_unconscious()
    }

    /// Current perceived pain (0–10).
    pub fn perceived_pain(&self) -> f64 {
        self.inner.borrow().perceived_pain()
    }

    /// Total drug administered, mg.
    pub fn total_drug_mg(&self) -> f64 {
        self.inner.borrow().total_drug_mg()
    }

    /// Ground-truth outcome so far.
    pub fn outcome(&self) -> PatientOutcome {
        self.inner.borrow().outcome()
    }

    /// Direct access for advanced uses (kept crate-private to preserve
    /// the physical-interface discipline).
    pub(crate) fn with_mut<R>(&self, f: impl FnOnce(&mut VirtualPatient) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// One sampled point of the ground-truth timeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimelinePoint {
    /// Simulation time, seconds.
    pub t_secs: f64,
    /// True SpO₂, %.
    pub spo2: f64,
    /// True effect-site concentration, mg/L.
    pub effect_site: f64,
    /// Perceived pain, 0–10.
    pub pain: f64,
    /// Cumulative drug administered so far, mg — the campaign
    /// scorecard's no-overdose invariant reads delivery directly off
    /// the timeline.
    pub total_drug_mg: f64,
}

/// The actor that advances the patient's physiology in real time and
/// issues demand-button presses (genuine and, if configured, by-proxy).
#[derive(Debug)]
pub struct PatientActor {
    body: PatientBody,
    pump: Option<mcps_sim::actor::ActorId>,
    step: SimDuration,
    /// Proxy presses per hour (PCA-by-proxy hazard); occur regardless
    /// of the patient's consciousness.
    proxy_rate_per_hour: f64,
    presses: u64,
    proxy_presses: u64,
    /// First instant at which true danger (deep ventilatory
    /// depression) existed — the ground-truth reference for interlock
    /// latency measurements.
    danger_onset: Option<SimTime>,
    /// Records the ground-truth timeline every `timeline_every` ticks
    /// when set (0 = off).
    timeline_every: u64,
    tick_count: u64,
    timeline: Vec<TimelinePoint>,
}

impl PatientActor {
    /// Creates the actor; `pump` is the pump actor to press, if any.
    pub fn new(
        body: PatientBody,
        pump: Option<mcps_sim::actor::ActorId>,
        proxy_rate_per_hour: f64,
    ) -> Self {
        PatientActor {
            body,
            pump,
            step: SimDuration::from_secs(1),
            proxy_rate_per_hour,
            presses: 0,
            proxy_presses: 0,
            danger_onset: None,
            timeline_every: 0,
            tick_count: 0,
            timeline: Vec::new(),
        }
    }

    /// Sets the physiology step (default 1 s). Campus monitor-only beds
    /// advance their bodies at the spot-check cadence instead of 1 Hz;
    /// the model integrates over the actual elapsed `dt`, so a slower
    /// step trades temporal resolution for event-budget headroom.
    pub fn with_step(mut self, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "patient step must be positive");
        self.step = step;
        self
    }

    /// Enables ground-truth timeline recording every `every` seconds.
    pub fn record_timeline_every(&mut self, every: u64) {
        self.timeline_every = every;
    }

    /// The recorded timeline (empty unless recording was enabled).
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// Genuine demand presses so far.
    pub fn presses(&self) -> u64 {
        self.presses
    }

    /// Proxy presses so far.
    pub fn proxy_presses(&self) -> u64 {
        self.proxy_presses
    }

    /// First instant of true physiological danger, if any occurred.
    pub fn danger_onset(&self) -> Option<SimTime> {
        self.danger_onset
    }

    /// Shared body handle.
    pub fn body(&self) -> &PatientBody {
        &self.body
    }
}

impl Actor<IceMsg> for PatientActor {
    fn handle(&mut self, msg: IceMsg, ctx: &mut Context<'_, IceMsg>) {
        if msg != IceMsg::Tick {
            return;
        }
        let dt = self.step.as_secs_f64();
        self.body.with_mut(|p| p.advance(dt, ctx.rng()));
        self.tick_count += 1;
        if self.timeline_every > 0 && self.tick_count.is_multiple_of(self.timeline_every) {
            let v = self.body.vitals();
            self.timeline.push(TimelinePoint {
                t_secs: ctx.now().as_secs_f64(),
                spo2: v.spo2,
                effect_site: self.body.effect_site_conc(),
                pain: self.body.perceived_pain(),
                total_drug_mg: self.body.total_drug_mg(),
            });
        }
        // Ground-truth danger marker: true SpO2 below 90.
        if self.danger_onset.is_none() && self.body.vitals().spo2 < 90.0 {
            self.danger_onset = Some(ctx.now());
            ctx.trace("truth", "danger onset: true SpO2 < 90");
        }
        if let Some(pump) = self.pump {
            let genuine = self.body.with_mut(|p| p.wants_bolus(dt, ctx.rng()));
            if genuine {
                self.presses += 1;
                ctx.trace("button", "patient press");
                ctx.send(pump, IceMsg::PressButton);
            }
            if self.proxy_rate_per_hour > 0.0 {
                let p = self.proxy_rate_per_hour * dt / 3600.0;
                if mcps_sim::rng::bernoulli(ctx.rng(), p) {
                    self.proxy_presses += 1;
                    ctx.trace("button", "PROXY press");
                    ctx.send(pump, IceMsg::PressButton);
                }
            }
        }
        ctx.schedule_self(self.step, IceMsg::Tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_patient::patient::PatientParams;
    use mcps_sim::kernel::Simulation;

    #[test]
    fn body_shares_state() {
        let body = PatientBody::new(VirtualPatient::new(PatientParams::default()));
        let clone = body.clone();
        body.infuse(2.0);
        assert!((clone.total_drug_mg() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn patient_actor_advances_physiology() {
        let body = PatientBody::new(VirtualPatient::new(PatientParams::default()));
        let mut sim: Simulation<IceMsg> = Simulation::new(1);
        let id = sim.add_actor("patient", PatientActor::new(body.clone(), None, 0.0));
        sim.schedule(SimTime::ZERO, id, IceMsg::Tick);
        sim.run_until(SimTime::from_secs(120));
        let elapsed = body.with_mut(|p| p.elapsed_secs());
        assert!((elapsed - 121.0).abs() < 2.0, "elapsed {elapsed}");
    }

    #[test]
    fn danger_onset_recorded_on_overdose() {
        let body = PatientBody::new(VirtualPatient::new(PatientParams::default()));
        body.infuse(15.0);
        let mut sim: Simulation<IceMsg> = Simulation::new(1);
        let id = sim.add_actor("patient", PatientActor::new(body.clone(), None, 0.0));
        sim.schedule(SimTime::ZERO, id, IceMsg::Tick);
        sim.run_until(SimTime::from_mins(30));
        let onset = sim.actor_as::<PatientActor>(id).unwrap().danger_onset();
        assert!(onset.is_some(), "overdose must produce a danger onset");
        assert!(onset.unwrap() > SimTime::from_secs(30), "desaturation takes time");
    }
}
