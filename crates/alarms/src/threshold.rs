//! Conventional single-parameter threshold alarms.
//!
//! The baseline the paper's smart-alarm agenda is measured against:
//! each vital is compared against fixed limits and alarms after a short
//! persistence. Simple, certifiable — and notoriously false-alarm prone
//! because a single artifactual signal suffices to annunciate.

use crate::event::{AlarmEvent, AlarmPhase, AlarmPriority};
use mcps_patient::vitals::VitalKind;
use mcps_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One limit rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRule {
    /// Stable rule name (also the event source), e.g. `"spo2-low"`.
    pub name: String,
    /// Vital this rule watches.
    pub kind: VitalKind,
    /// Alarm when value < `low` (if set).
    pub low: Option<f64>,
    /// Alarm when value > `high` (if set).
    pub high: Option<f64>,
    /// Consecutive breaching samples required before annunciation.
    pub persistence: u32,
    /// Priority of the annunciation.
    pub priority: AlarmPriority,
}

impl ThresholdRule {
    fn breached(&self, v: f64) -> bool {
        self.low.is_some_and(|lo| v < lo) || self.high.is_some_and(|hi| v > hi)
    }
}

/// A bank of threshold rules with per-rule persistence state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAlarm {
    rules: Vec<ThresholdRule>,
    runs: Vec<u32>,
    active: Vec<bool>,
}

impl ThresholdAlarm {
    /// Creates a bank from rules.
    ///
    /// # Panics
    ///
    /// Panics if two rules share a name or a rule has no limit.
    pub fn new(rules: Vec<ThresholdRule>) -> Self {
        for (i, r) in rules.iter().enumerate() {
            assert!(
                r.low.is_some() || r.high.is_some(),
                "rule {} needs at least one limit",
                r.name
            );
            assert!(
                !rules[i + 1..].iter().any(|o| o.name == r.name),
                "duplicate rule name {}",
                r.name
            );
        }
        let n = rules.len();
        ThresholdAlarm { rules, runs: vec![0; n], active: vec![false; n] }
    }

    /// The standard PCA-ward rule set: SpO₂ < 90, RR < 8, HR outside
    /// [45, 130], EtCO₂ outside [12, 55]; 3-sample persistence.
    pub fn pca_default() -> Self {
        let rule = |name: &str, kind, low, high, priority| ThresholdRule {
            name: name.to_owned(),
            kind,
            low,
            high,
            persistence: 3,
            priority,
        };
        ThresholdAlarm::new(vec![
            rule("spo2-low", VitalKind::Spo2, Some(90.0), None, AlarmPriority::High),
            rule("rr-low", VitalKind::RespRate, Some(8.0), None, AlarmPriority::High),
            rule("hr-range", VitalKind::HeartRate, Some(45.0), Some(130.0), AlarmPriority::Medium),
            rule("etco2-range", VitalKind::Etco2, Some(12.0), Some(55.0), AlarmPriority::Medium),
        ])
    }

    /// The rules.
    pub fn rules(&self) -> &[ThresholdRule] {
        &self.rules
    }

    /// Whether any rule is currently annunciating.
    pub fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }

    /// Whether the named rule is currently annunciating.
    pub fn is_active(&self, name: &str) -> bool {
        self.rules.iter().position(|r| r.name == name).map(|i| self.active[i]).unwrap_or(false)
    }

    /// Feeds one batch of measurements (a map from vital to latest
    /// value) observed at `now`; returns onset/clear events.
    pub fn observe(&mut self, now: SimTime, values: &BTreeMap<VitalKind, f64>) -> Vec<AlarmEvent> {
        let mut events = Vec::new();
        for (i, r) in self.rules.iter().enumerate() {
            let Some(&v) = values.get(&r.kind) else {
                // Missing signal: persistence resets, active alarms hold
                // (a detached probe must not silently clear an alarm).
                self.runs[i] = 0;
                continue;
            };
            if r.breached(v) {
                self.runs[i] = self.runs[i].saturating_add(1);
                if !self.active[i] && self.runs[i] >= r.persistence {
                    self.active[i] = true;
                    events.push(AlarmEvent {
                        at: now,
                        source: r.name.clone(),
                        priority: r.priority,
                        phase: AlarmPhase::Onset,
                        detail: format!("{} = {v:.1} outside limits", r.kind),
                    });
                }
            } else {
                self.runs[i] = 0;
                if self.active[i] {
                    self.active[i] = false;
                    events.push(AlarmEvent {
                        at: now,
                        source: r.name.clone(),
                        priority: r.priority,
                        phase: AlarmPhase::Cleared,
                        detail: format!("{} = {v:.1} back in range", r.kind),
                    });
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(spo2: f64, rr: f64) -> BTreeMap<VitalKind, f64> {
        let mut m = BTreeMap::new();
        m.insert(VitalKind::Spo2, spo2);
        m.insert(VitalKind::RespRate, rr);
        m.insert(VitalKind::HeartRate, 75.0);
        m.insert(VitalKind::Etco2, 38.0);
        m
    }

    #[test]
    fn persistence_gates_onset() {
        let mut a = ThresholdAlarm::pca_default();
        let mut events = Vec::new();
        for i in 0..3 {
            events.extend(a.observe(SimTime::from_secs(i), &values(85.0, 14.0)));
        }
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].source, "spo2-low");
        assert_eq!(events[0].phase, AlarmPhase::Onset);
        assert!(a.is_active("spo2-low"));
    }

    #[test]
    fn brief_dip_does_not_alarm() {
        let mut a = ThresholdAlarm::pca_default();
        let mut events = Vec::new();
        events.extend(a.observe(SimTime::from_secs(0), &values(85.0, 14.0)));
        events.extend(a.observe(SimTime::from_secs(1), &values(85.0, 14.0)));
        events.extend(a.observe(SimTime::from_secs(2), &values(97.0, 14.0)));
        assert!(events.is_empty(), "{events:?}");
        assert!(!a.any_active());
    }

    #[test]
    fn clear_event_on_recovery() {
        let mut a = ThresholdAlarm::pca_default();
        for i in 0..3 {
            a.observe(SimTime::from_secs(i), &values(85.0, 14.0));
        }
        let events = a.observe(SimTime::from_secs(3), &values(97.0, 14.0));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, AlarmPhase::Cleared);
        assert!(!a.any_active());
    }

    #[test]
    fn missing_signal_holds_active_alarm() {
        let mut a = ThresholdAlarm::pca_default();
        for i in 0..3 {
            a.observe(SimTime::from_secs(i), &values(85.0, 14.0));
        }
        assert!(a.is_active("spo2-low"));
        // Probe falls off: no SpO2 key at all.
        let mut m = BTreeMap::new();
        m.insert(VitalKind::RespRate, 14.0);
        let events = a.observe(SimTime::from_secs(3), &m);
        assert!(events.is_empty());
        assert!(a.is_active("spo2-low"), "alarm must not clear on missing data");
    }

    #[test]
    fn two_rules_fire_independently() {
        let mut a = ThresholdAlarm::pca_default();
        let mut all = Vec::new();
        for i in 0..3 {
            all.extend(a.observe(SimTime::from_secs(i), &values(85.0, 5.0)));
        }
        let sources: Vec<_> = all.iter().map(|e| e.source.as_str()).collect();
        assert!(sources.contains(&"spo2-low") && sources.contains(&"rr-low"));
    }

    #[test]
    #[should_panic(expected = "needs at least one limit")]
    fn rule_without_limits_rejected() {
        let _ = ThresholdAlarm::new(vec![ThresholdRule {
            name: "void".into(),
            kind: VitalKind::Spo2,
            low: None,
            high: None,
            persistence: 1,
            priority: AlarmPriority::Low,
        }]);
    }
}
