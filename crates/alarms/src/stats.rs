//! Alarm performance scoring against physiological ground truth.
//!
//! Experiments score an alarm algorithm by comparing its annunciations
//! with ground-truth adverse episodes derived from the *true* (noise-
//! free) patient state: an alarm near a real episode is a true alarm;
//! anything else is a false alarm; an episode with no alarm is missed.

use mcps_patient::vitals::VitalsFrame;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A ground-truth adverse episode, in seconds of simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Episode start, seconds.
    pub start_secs: f64,
    /// Episode end, seconds.
    pub end_secs: f64,
}

/// Detects ground-truth alarm-worthy episodes from true vitals:
/// sustained hypoxaemia (SpO₂ below a bound) or sustained respiratory
/// depression (RR below a bound).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeDetector {
    spo2_bound: f64,
    rr_bound: f64,
    dwell_secs: f64,
    run_secs: f64,
    run_start: f64,
    in_episode: bool,
    episode_start: f64,
}

impl EpisodeDetector {
    /// Creates a detector: an episode begins once SpO₂ < `spo2_bound`
    /// **or** RR < `rr_bound` persists for `dwell_secs`.
    pub fn new(spo2_bound: f64, rr_bound: f64, dwell_secs: f64) -> Self {
        EpisodeDetector {
            spo2_bound,
            rr_bound,
            dwell_secs,
            run_secs: 0.0,
            run_start: 0.0,
            in_episode: false,
            episode_start: 0.0,
        }
    }

    /// The default clinical definition (SpO₂ < 90 or RR < 8 for 30 s).
    pub fn clinical_default() -> Self {
        EpisodeDetector::new(90.0, 8.0, 30.0)
    }

    /// Feeds one step of true vitals at `t_secs`; returns a completed
    /// episode when one *ends*.
    pub fn observe(&mut self, t_secs: f64, dt_secs: f64, truth: &VitalsFrame) -> Option<Episode> {
        let bad = truth.spo2 < self.spo2_bound || truth.resp_rate < self.rr_bound;
        if bad {
            if self.run_secs == 0.0 {
                self.run_start = t_secs;
            }
            self.run_secs += dt_secs;
            if !self.in_episode && self.run_secs >= self.dwell_secs {
                self.in_episode = true;
                self.episode_start = self.run_start;
            }
            None
        } else {
            self.run_secs = 0.0;
            if self.in_episode {
                self.in_episode = false;
                return Some(Episode { start_secs: self.episode_start, end_secs: t_secs });
            }
            None
        }
    }

    /// Closes any episode still open at the end of observation.
    pub fn finish(&mut self, t_secs: f64) -> Option<Episode> {
        if self.in_episode {
            self.in_episode = false;
            Some(Episode { start_secs: self.episode_start, end_secs: t_secs })
        } else {
            None
        }
    }

    /// Whether an episode is ongoing.
    pub fn in_episode(&self) -> bool {
        self.in_episode
    }
}

/// The scored performance of one alarm algorithm over one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AlarmScore {
    /// Alarms coinciding with a true episode.
    pub true_alarms: u32,
    /// Alarms with no nearby episode.
    pub false_alarms: u32,
    /// Episodes that received at least one alarm.
    pub detected_episodes: u32,
    /// Episodes that received none.
    pub missed_episodes: u32,
    /// Total observation, hours.
    pub observed_hours: f64,
}

impl AlarmScore {
    /// Detected / all episodes (1.0 when there were none).
    pub fn sensitivity(&self) -> f64 {
        let total = self.detected_episodes + self.missed_episodes;
        if total == 0 {
            1.0
        } else {
            f64::from(self.detected_episodes) / f64::from(total)
        }
    }

    /// False alarms per observed hour.
    pub fn false_alarm_rate_per_hour(&self) -> f64 {
        if self.observed_hours <= 0.0 {
            0.0
        } else {
            f64::from(self.false_alarms) / self.observed_hours
        }
    }

    /// True alarms / all alarms (1.0 when silent).
    pub fn precision(&self) -> f64 {
        let total = self.true_alarms + self.false_alarms;
        if total == 0 {
            1.0
        } else {
            f64::from(self.true_alarms) / f64::from(total)
        }
    }

    /// Merges another run's score into this one.
    pub fn merge(&mut self, other: &AlarmScore) {
        self.true_alarms += other.true_alarms;
        self.false_alarms += other.false_alarms;
        self.detected_episodes += other.detected_episodes;
        self.missed_episodes += other.missed_episodes;
        self.observed_hours += other.observed_hours;
    }

    /// Writes the score into a [`Telemetry`] bus under `prefix`
    /// (`{prefix}.true_alarms`, `{prefix}.sensitivity`, …), making the
    /// bus the single sink experiment binaries aggregate from.
    pub fn export_into(&self, bus: &mut mcps_sim::metrics::Telemetry, prefix: &str) {
        bus.incr(&format!("{prefix}.true_alarms"), u64::from(self.true_alarms));
        bus.incr(&format!("{prefix}.false_alarms"), u64::from(self.false_alarms));
        bus.incr(&format!("{prefix}.detected_episodes"), u64::from(self.detected_episodes));
        bus.incr(&format!("{prefix}.missed_episodes"), u64::from(self.missed_episodes));
        bus.observe(&format!("{prefix}.observed_hours"), self.observed_hours);
        bus.observe(&format!("{prefix}.sensitivity"), self.sensitivity());
        bus.observe(&format!("{prefix}.far_per_hour"), self.false_alarm_rate_per_hour());
        bus.observe(&format!("{prefix}.precision"), self.precision());
    }
}

impl fmt::Display for AlarmScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sens={:.2} FAR={:.2}/h prec={:.2} (TA={} FA={} det={} miss={})",
            self.sensitivity(),
            self.false_alarm_rate_per_hour(),
            self.precision(),
            self.true_alarms,
            self.false_alarms,
            self.detected_episodes,
            self.missed_episodes
        )
    }
}

/// Scores alarm onset times against episodes. An alarm is *true* when
/// it falls within `[start − tolerance, end + tolerance]` of some
/// episode; an episode is *detected* when some alarm does.
pub fn score_alarms(
    alarm_onsets_secs: &[f64],
    episodes: &[Episode],
    tolerance_secs: f64,
    observed_hours: f64,
) -> AlarmScore {
    let near = |alarm: f64, ep: &Episode| {
        alarm >= ep.start_secs - tolerance_secs && alarm <= ep.end_secs + tolerance_secs
    };
    let mut score = AlarmScore { observed_hours, ..AlarmScore::default() };
    for &a in alarm_onsets_secs {
        if episodes.iter().any(|e| near(a, e)) {
            score.true_alarms += 1;
        } else {
            score.false_alarms += 1;
        }
    }
    for e in episodes {
        if alarm_onsets_secs.iter().any(|&a| near(a, e)) {
            score.detected_episodes += 1;
        } else {
            score.missed_episodes += 1;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(spo2: f64, rr: f64) -> VitalsFrame {
        VitalsFrame {
            spo2,
            heart_rate: 70.0,
            resp_rate: rr,
            etco2: 38.0,
            bp_systolic: 120.0,
            bp_diastolic: 80.0,
            minute_ventilation: 6.0,
        }
    }

    #[test]
    fn detector_requires_dwell() {
        let mut d = EpisodeDetector::clinical_default();
        // 20 s dip: below dwell.
        for i in 0..20 {
            assert!(d.observe(i as f64, 1.0, &frame(85.0, 14.0)).is_none());
        }
        assert!(!d.in_episode());
        let done = d.observe(20.0, 1.0, &frame(97.0, 14.0));
        assert!(done.is_none());
    }

    #[test]
    fn detector_reports_episode_with_true_onset() {
        let mut d = EpisodeDetector::clinical_default();
        for i in 0..50 {
            d.observe(100.0 + i as f64, 1.0, &frame(85.0, 14.0));
        }
        assert!(d.in_episode());
        let ep = d.observe(150.0, 1.0, &frame(97.0, 14.0)).unwrap();
        assert!((ep.start_secs - 100.0).abs() < 1.5, "onset at dip start, got {}", ep.start_secs);
        assert!((ep.end_secs - 150.0).abs() < 1e-9);
    }

    #[test]
    fn rr_depression_also_counts() {
        let mut d = EpisodeDetector::clinical_default();
        for i in 0..40 {
            d.observe(i as f64, 1.0, &frame(97.0, 5.0));
        }
        assert!(d.in_episode());
    }

    #[test]
    fn finish_closes_open_episode() {
        let mut d = EpisodeDetector::clinical_default();
        for i in 0..40 {
            d.observe(i as f64, 1.0, &frame(85.0, 14.0));
        }
        let ep = d.finish(40.0).unwrap();
        assert!(ep.end_secs == 40.0 && ep.start_secs < 1.5);
        assert!(d.finish(41.0).is_none());
    }

    #[test]
    fn scoring_classifies_alarms() {
        let episodes = [Episode { start_secs: 100.0, end_secs: 200.0 }];
        let alarms = [90.0, 150.0, 500.0];
        let s = score_alarms(&alarms, &episodes, 30.0, 1.0);
        assert_eq!(s.true_alarms, 2); // 90 within tolerance, 150 inside
        assert_eq!(s.false_alarms, 1); // 500 far away
        assert_eq!(s.detected_episodes, 1);
        assert_eq!(s.missed_episodes, 0);
        assert!((s.sensitivity() - 1.0).abs() < 1e-12);
        assert!((s.false_alarm_rate_per_hour() - 1.0).abs() < 1e-12);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_episode_counted() {
        let episodes = [Episode { start_secs: 100.0, end_secs: 200.0 }];
        let s = score_alarms(&[], &episodes, 30.0, 2.0);
        assert_eq!(s.missed_episodes, 1);
        assert_eq!(s.sensitivity(), 0.0);
        assert_eq!(s.precision(), 1.0, "no alarms = vacuous precision");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AlarmScore {
            true_alarms: 1,
            false_alarms: 2,
            detected_episodes: 1,
            missed_episodes: 0,
            observed_hours: 1.0,
        };
        let b = AlarmScore {
            true_alarms: 3,
            false_alarms: 0,
            detected_episodes: 2,
            missed_episodes: 1,
            observed_hours: 2.0,
        };
        a.merge(&b);
        assert_eq!(a.true_alarms, 4);
        assert_eq!(a.observed_hours, 3.0);
        assert!((a.sensitivity() - 0.75).abs() < 1e-12);
    }
}
