//! Alarm event vocabulary.

use mcps_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Clinical priority of an alarm (IEC 60601-1-8 flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlarmPriority {
    /// Advisory.
    Low,
    /// Prompt response required.
    Medium,
    /// Immediate response required.
    High,
}

impl fmt::Display for AlarmPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlarmPriority::Low => "low",
            AlarmPriority::Medium => "medium",
            AlarmPriority::High => "HIGH",
        };
        f.write_str(s)
    }
}

/// Whether an event begins or ends an alarm condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlarmPhase {
    /// The condition just became active.
    Onset,
    /// The condition just cleared.
    Cleared,
}

/// One alarm annunciation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmEvent {
    /// When the event occurred.
    pub at: SimTime,
    /// Which detector produced it, e.g. `"spo2-low"` or `"fusion"`.
    pub source: String,
    /// Priority at onset.
    pub priority: AlarmPriority,
    /// Onset or clearance.
    pub phase: AlarmPhase,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for AlarmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            AlarmPhase::Onset => "ONSET",
            AlarmPhase::Cleared => "clear",
        };
        write!(f, "[{}] {} {} ({}): {}", self.at, phase, self.source, self.priority, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(AlarmPriority::Low < AlarmPriority::Medium);
        assert!(AlarmPriority::Medium < AlarmPriority::High);
    }

    #[test]
    fn display_contains_fields() {
        let e = AlarmEvent {
            at: SimTime::from_secs(5),
            source: "spo2-low".into(),
            priority: AlarmPriority::High,
            phase: AlarmPhase::Onset,
            detail: "SpO2 87.0 < 90.0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("spo2-low") && s.contains("ONSET") && s.contains("HIGH"));
    }
}
