//! Alarm fatigue: the operational consequence of false alarms.
//!
//! The clinical harm of a high false-alarm rate is not the noise — it
//! is that true alarms stop being answered. [`NurseModel`] captures the
//! well-documented desensitization effect: the probability of a prompt
//! response decays with the recent alarm burden, and response latency
//! grows with it. Feeding both algorithms' alarm streams through the
//! same nurse model converts a false-alarm-rate difference into a
//! *missed-true-alarm* difference — the number that matters.

use mcps_sim::rng::{bernoulli, log_normal};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the nurse desensitization model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NurseConfig {
    /// Response probability at zero recent burden.
    pub base_response: f64,
    /// Response probability floor under extreme burden.
    pub floor_response: f64,
    /// Recent alarm burden (alarms in the sliding hour) at which
    /// responsiveness has decayed halfway to the floor.
    pub half_burden_per_hour: f64,
    /// Median response delay at zero burden, seconds.
    pub base_delay_secs: f64,
    /// Each recent alarm adds this fraction to the delay median.
    pub delay_growth_per_alarm: f64,
}

impl Default for NurseConfig {
    fn default() -> Self {
        NurseConfig {
            base_response: 0.97,
            floor_response: 0.25,
            half_burden_per_hour: 10.0,
            base_delay_secs: 45.0,
            delay_growth_per_alarm: 0.08,
        }
    }
}

/// One nurse's reaction to one alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NurseResponse {
    /// Whether the alarm was answered at all.
    pub responded: bool,
    /// Delay from annunciation to bedside, seconds (meaningful only if
    /// `responded`).
    pub delay_secs: f64,
}

/// The stateful nurse model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NurseModel {
    config: NurseConfig,
    recent: VecDeque<f64>,
}

impl NurseModel {
    /// Creates a rested nurse.
    pub fn new(config: NurseConfig) -> Self {
        NurseModel { config, recent: VecDeque::new() }
    }

    /// Current burden: alarms in the last hour before `t_secs`.
    pub fn burden(&self, t_secs: f64) -> usize {
        self.recent.iter().filter(|&&a| t_secs - a <= 3600.0).count()
    }

    /// Current response probability at `t_secs`.
    pub fn response_probability(&self, t_secs: f64) -> f64 {
        let c = &self.config;
        let burden = self.burden(t_secs) as f64;
        c.floor_response
            + (c.base_response - c.floor_response) / (1.0 + burden / c.half_burden_per_hour)
    }

    /// Processes one alarm annunciated at `t_secs`.
    pub fn on_alarm(&mut self, t_secs: f64, rng: &mut impl RngCore) -> NurseResponse {
        let p = self.response_probability(t_secs);
        let burden = self.burden(t_secs) as f64;
        self.recent.push_back(t_secs);
        while self.recent.front().is_some_and(|&a| t_secs - a > 3600.0) {
            self.recent.pop_front();
        }
        let responded = bernoulli(rng, p);
        let median =
            self.config.base_delay_secs * (1.0 + self.config.delay_growth_per_alarm * burden);
        let delay_secs = log_normal(rng, median.max(1.0).ln(), 0.4);
        NurseResponse { responded, delay_secs }
    }
}

impl Default for NurseModel {
    fn default() -> Self {
        NurseModel::new(NurseConfig::default())
    }
}

/// Operational outcome of one alarm stream under a nurse model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OperationalScore {
    /// True alarms answered.
    pub true_answered: u32,
    /// True alarms that went unanswered (the harm).
    pub true_unanswered: u32,
    /// False alarms answered (wasted trips).
    pub false_answered: u32,
    /// Mean response delay over answered alarms, seconds.
    pub mean_delay_secs: f64,
}

impl OperationalScore {
    /// Fraction of true alarms answered (1.0 if none occurred).
    pub fn true_response_rate(&self) -> f64 {
        let total = self.true_answered + self.true_unanswered;
        if total == 0 {
            1.0
        } else {
            f64::from(self.true_answered) / f64::from(total)
        }
    }
}

/// Feeds an alarm stream through a fresh nurse and scores it.
/// `alarm_onsets_secs` must be sorted; `is_true` labels each alarm.
pub fn operational_score(
    alarm_onsets_secs: &[f64],
    is_true: impl Fn(f64) -> bool,
    config: NurseConfig,
    rng: &mut impl RngCore,
) -> OperationalScore {
    let labeled: Vec<(f64, bool)> = alarm_onsets_secs.iter().map(|&t| (t, is_true(t))).collect();
    operational_score_labeled(&labeled, config, rng)
}

/// Like [`operational_score`], but with pre-labeled alarms — used when
/// truth is judged per bed before streams are pooled at a central
/// monitoring station.
pub fn operational_score_labeled(
    labeled_onsets: &[(f64, bool)],
    config: NurseConfig,
    rng: &mut impl RngCore,
) -> OperationalScore {
    let mut nurse = NurseModel::new(config);
    let mut score = OperationalScore::default();
    let mut delay_sum = 0.0;
    let mut answered = 0u32;
    for &(t, truth) in labeled_onsets {
        let r = nurse.on_alarm(t, rng);
        match (truth, r.responded) {
            (true, true) => score.true_answered += 1,
            (true, false) => score.true_unanswered += 1,
            (false, true) => score.false_answered += 1,
            (false, false) => {}
        }
        if r.responded {
            answered += 1;
            delay_sum += r.delay_secs;
        }
    }
    if answered > 0 {
        score.mean_delay_secs = delay_sum / f64::from(answered);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcps_sim::rng::RngFactory;

    fn rng() -> mcps_sim::rng::SimRng {
        RngFactory::new(12).stream("fatigue")
    }

    #[test]
    fn rested_nurse_almost_always_responds() {
        let n = NurseModel::default();
        assert!((n.response_probability(0.0) - 0.97).abs() < 1e-9);
    }

    #[test]
    fn burden_decays_responsiveness_toward_floor() {
        let mut n = NurseModel::default();
        let mut r = rng();
        for i in 0..100 {
            n.on_alarm(i as f64 * 10.0, &mut r);
        }
        let p = n.response_probability(1000.0);
        assert!(p < 0.4, "heavily alarmed nurse should be desensitized, p={p}");
        assert!(p >= 0.25, "never below the floor, p={p}");
    }

    #[test]
    fn old_alarms_age_out() {
        let mut n = NurseModel::default();
        let mut r = rng();
        for i in 0..50 {
            n.on_alarm(i as f64, &mut r);
        }
        assert!(n.burden(10.0) > 0);
        assert_eq!(n.burden(10_000.0), 0);
        assert!((n.response_probability(10_000.0) - 0.97).abs() < 1e-9);
    }

    #[test]
    fn delay_grows_with_burden() {
        let mut quiet_delays = Vec::new();
        let mut noisy_delays = Vec::new();
        let mut r = rng();
        for trial in 0..200 {
            let mut quiet = NurseModel::default();
            let resp = quiet.on_alarm(trial as f64 * 4000.0, &mut r);
            quiet_delays.push(resp.delay_secs);
            let mut noisy = NurseModel::default();
            for i in 0..30 {
                noisy.on_alarm(i as f64, &mut r);
            }
            let resp = noisy.on_alarm(31.0, &mut r);
            noisy_delays.push(resp.delay_secs);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&noisy_delays) > 1.5 * mean(&quiet_delays),
            "noisy {} vs quiet {}",
            mean(&noisy_delays),
            mean(&quiet_delays)
        );
    }

    #[test]
    fn fewer_false_alarms_means_more_true_alarms_answered() {
        // Two streams with the same 10 true alarms; one buried in 300
        // false alarms, one in 15.
        let true_times: Vec<f64> = (0..10).map(|i| 2000.0 + i as f64 * 2500.0).collect();
        let build = |false_count: usize| -> Vec<f64> {
            let mut all: Vec<f64> =
                (0..false_count).map(|i| i as f64 * (28_000.0 / false_count as f64)).collect();
            all.extend(&true_times);
            all.sort_by(f64::total_cmp);
            all
        };
        let is_true = |t: f64| true_times.iter().any(|&x| (x - t).abs() < 1e-9);
        let mut r1 = rng();
        let mut r2 = RngFactory::new(12).stream("fatigue2");
        let noisy = operational_score(&build(300), is_true, NurseConfig::default(), &mut r1);
        let quiet = operational_score(&build(15), is_true, NurseConfig::default(), &mut r2);
        assert!(
            quiet.true_response_rate() > noisy.true_response_rate(),
            "quiet {:?} vs noisy {:?}",
            quiet,
            noisy
        );
        assert!(quiet.mean_delay_secs < noisy.mean_delay_secs);
    }

    #[test]
    fn empty_stream_scores_vacuously() {
        let mut r = rng();
        let s = operational_score(&[], |_| true, NurseConfig::default(), &mut r);
        assert_eq!(s.true_response_rate(), 1.0);
        assert_eq!(s.mean_delay_secs, 0.0);
    }
}
