//! # mcps-alarms — clinical alarm algorithms and scoring
//!
//! The context-aware-intelligence pillar of the paper: conventional
//! threshold alarms, a multi-parameter fusion ("smart") alarm that
//! rejects single-channel artifacts, annunciation management, and the
//! ground-truth scoring (sensitivity / false-alarm rate) experiment E2
//! uses to compare them.
//!
//! * [`threshold`] — single-parameter limit alarms with persistence.
//! * [`fusion`] — corroboration + slew-screening smart alarm.
//! * [`plausibility`] — flatline/stuck-sensor screening (closes the
//!   stuck-value gap freshness checking cannot see).
//! * [`manager`] — annunciation states, silencing, event log.
//! * [`trend`] — slope-based early deterioration detection.
//! * [`fatigue`] — nurse desensitization model converting false-alarm
//!   rates into missed-true-alarm rates.
//! * [`stats`] — ground-truth episodes and alarm scoring.
//! * [`event`] — the shared alarm-event vocabulary.
//!
//! ## Example
//!
//! ```
//! use mcps_alarms::fusion::FusionAlarm;
//! use mcps_patient::vitals::VitalKind;
//! use mcps_sim::time::SimTime;
//! use std::collections::BTreeMap;
//!
//! let mut alarm = FusionAlarm::pca_default();
//! let mut values = BTreeMap::new();
//! values.insert(VitalKind::Spo2, 97.0);
//! values.insert(VitalKind::RespRate, 14.0);
//! let events = alarm.observe(SimTime::from_secs(1), &values);
//! assert!(events.is_empty()); // healthy patient
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fatigue;
pub mod fusion;
pub mod manager;
pub mod plausibility;
pub mod stats;
pub mod threshold;
pub mod trend;

pub use event::{AlarmEvent, AlarmPhase, AlarmPriority};
pub use fatigue::{
    operational_score, operational_score_labeled, NurseConfig, NurseModel, OperationalScore,
};
pub use fusion::{DangerBands, FusionAlarm, FusionConfig};
pub use manager::AlarmManager;
pub use plausibility::{FlatlineConfig, FlatlineDetector, PlausibilityMonitor};
pub use stats::{score_alarms, AlarmScore, Episode, EpisodeDetector};
pub use threshold::{ThresholdAlarm, ThresholdRule};
pub use trend::{DeteriorationTrend, TrendConfig, TrendEstimator};
