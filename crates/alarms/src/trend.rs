//! Trend estimation: detecting deterioration before thresholds are hit.
//!
//! Opioid-induced respiratory depression develops over minutes. Waiting
//! for absolute limits (SpO₂ < 90) means the drug that will cause the
//! next ten minutes of desaturation is already on board. A sustained,
//! corroborated *slope* — SpO₂ falling, respiratory rate falling, EtCO₂
//! rising — identifies the trajectory earlier. [`TrendEstimator`] fits
//! an ordinary least-squares slope over a sliding window;
//! [`DeteriorationTrend`] fuses per-vital slopes into an early-warning
//! score.

use mcps_patient::vitals::VitalKind;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Least-squares slope over a sliding time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendEstimator {
    window: SimDuration,
    min_samples: usize,
    samples: VecDeque<(f64, f64)>, // (t secs, value)
}

impl TrendEstimator {
    /// Creates an estimator over `window`, requiring `min_samples`
    /// before reporting.
    pub fn new(window: SimDuration, min_samples: usize) -> Self {
        TrendEstimator { window, min_samples: min_samples.max(2), samples: VecDeque::new() }
    }

    /// Feeds one sample.
    pub fn observe(&mut self, at: SimTime, value: f64) {
        let t = at.as_secs_f64();
        self.samples.push_back((t, value));
        let horizon = t - self.window.as_secs_f64();
        while self.samples.front().is_some_and(|&(ts, _)| ts < horizon) {
            self.samples.pop_front();
        }
    }

    /// The slope in units per **minute**, or `None` with too few
    /// samples or a degenerate window.
    pub fn slope_per_min(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < self.min_samples {
            return None;
        }
        let (mut st, mut sv, mut stt, mut stv) = (0.0, 0.0, 0.0, 0.0);
        for &(t, v) in &self.samples {
            st += t;
            sv += v;
            stt += t * t;
            stv += t * v;
        }
        let nf = n as f64;
        let denom = nf * stt - st * st;
        if denom.abs() < 1e-9 {
            return None;
        }
        Some((nf * stv - st * sv) / denom * 60.0)
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Configuration of the deterioration-trend score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendConfig {
    /// Estimation window.
    pub window: SimDuration,
    /// Minimum samples per channel.
    pub min_samples: usize,
    /// Per-vital slope that contributes one full point to the score
    /// (sign encodes the dangerous direction: negative = falling is
    /// bad).
    pub full_point_slopes: Vec<(VitalKind, f64)>,
    /// Score at which the trend is called deteriorating.
    pub alarm_score: f64,
    /// Channels that must individually contribute ≥ 0.3 points
    /// (corroboration).
    pub min_corroborating: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: SimDuration::from_mins(3),
            min_samples: 30,
            full_point_slopes: vec![
                (VitalKind::Spo2, -1.5),     // −1.5 %/min is alarming
                (VitalKind::RespRate, -2.0), // −2 breaths/min/min
                (VitalKind::Etco2, 4.0),     // +4 mmHg/min
            ],
            alarm_score: 1.5,
            min_corroborating: 2,
        }
    }
}

/// Fused deterioration-trend detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeteriorationTrend {
    config: TrendConfig,
    estimators: BTreeMap<VitalKind, TrendEstimator>,
}

impl DeteriorationTrend {
    /// Creates the detector.
    pub fn new(config: TrendConfig) -> Self {
        DeteriorationTrend { config, estimators: BTreeMap::new() }
    }

    /// Feeds one measurement.
    pub fn observe(&mut self, at: SimTime, kind: VitalKind, value: f64) {
        if !self.config.full_point_slopes.iter().any(|(k, _)| *k == kind) {
            return;
        }
        let (window, min_samples) = (self.config.window, self.config.min_samples);
        self.estimators
            .entry(kind)
            .or_insert_with(|| TrendEstimator::new(window, min_samples))
            .observe(at, value);
    }

    /// Per-channel contribution: slope in the dangerous direction,
    /// normalized so the configured slope equals 1.0, clamped ≥ 0.
    fn contribution(&self, kind: VitalKind, reference: f64) -> f64 {
        let Some(slope) = self.estimators.get(&kind).and_then(TrendEstimator::slope_per_min) else {
            return 0.0;
        };
        (slope / reference).max(0.0)
    }

    /// The fused deterioration score and the number of corroborating
    /// channels.
    pub fn score(&self) -> (f64, usize) {
        let mut total = 0.0;
        let mut corroborating = 0;
        for &(kind, reference) in &self.config.full_point_slopes {
            let c = self.contribution(kind, reference).min(3.0);
            if c >= 0.3 {
                corroborating += 1;
            }
            total += c;
        }
        (total, corroborating)
    }

    /// Whether a corroborated deterioration trend is present.
    pub fn is_deteriorating(&self) -> bool {
        let (score, corroborating) = self.score();
        score >= self.config.alarm_score && corroborating >= self.config.min_corroborating
    }
}

impl Default for DeteriorationTrend {
    fn default() -> Self {
        DeteriorationTrend::new(TrendConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn slope_of_linear_signal_is_exact() {
        let mut e = TrendEstimator::new(SimDuration::from_mins(2), 10);
        for s in 0..60 {
            e.observe(t(s), 100.0 - 0.02 * s as f64); // −1.2 per min
        }
        let slope = e.slope_per_min().unwrap();
        assert!((slope + 1.2).abs() < 1e-6, "slope {slope}");
    }

    #[test]
    fn flat_signal_has_zero_slope() {
        let mut e = TrendEstimator::new(SimDuration::from_mins(2), 10);
        for s in 0..60 {
            e.observe(t(s), 97.0);
        }
        assert!(e.slope_per_min().unwrap().abs() < 1e-9);
    }

    #[test]
    fn too_few_samples_reports_none() {
        let mut e = TrendEstimator::new(SimDuration::from_mins(2), 10);
        for s in 0..5 {
            e.observe(t(s), s as f64);
        }
        assert_eq!(e.slope_per_min(), None);
    }

    #[test]
    fn window_drops_stale_history() {
        let mut e = TrendEstimator::new(SimDuration::from_secs(30), 5);
        // Old falling segment…
        for s in 0..60 {
            e.observe(t(s), 100.0 - s as f64);
        }
        // …then flat: after the window passes, slope ≈ 0.
        for s in 60..120 {
            e.observe(t(s), 40.0);
        }
        assert!(e.slope_per_min().unwrap().abs() < 1e-6);
        assert!(e.len() <= 31);
    }

    #[test]
    fn correlated_deterioration_is_detected() {
        let mut d = DeteriorationTrend::default();
        for s in 0..180u64 {
            let k = s as f64;
            d.observe(t(s), VitalKind::Spo2, 97.0 - 0.03 * k); // −1.8 %/min
            d.observe(t(s), VitalKind::RespRate, 14.0 - 0.04 * k); // −2.4 /min²
            d.observe(t(s), VitalKind::Etco2, 38.0 + 0.07 * k); // +4.2 mmHg/min
        }
        assert!(d.is_deteriorating(), "score {:?}", d.score());
    }

    #[test]
    fn single_channel_trend_is_not_enough() {
        let mut d = DeteriorationTrend::default();
        for s in 0..180u64 {
            d.observe(t(s), VitalKind::Spo2, 97.0 - 0.05 * s as f64); // steep fall
            d.observe(t(s), VitalKind::RespRate, 14.0); // flat
            d.observe(t(s), VitalKind::Etco2, 38.0); // flat
        }
        assert!(!d.is_deteriorating(), "uncorroborated trend must not alarm: {:?}", d.score());
    }

    #[test]
    fn improving_patient_never_flags() {
        let mut d = DeteriorationTrend::default();
        for s in 0..180u64 {
            let k = s as f64;
            d.observe(t(s), VitalKind::Spo2, 88.0 + 0.05 * k);
            d.observe(t(s), VitalKind::RespRate, 8.0 + 0.03 * k);
            d.observe(t(s), VitalKind::Etco2, 55.0 - 0.08 * k);
        }
        assert!(!d.is_deteriorating());
        assert_eq!(d.score().1, 0, "no channel should corroborate improvement");
    }

    #[test]
    fn irrelevant_kinds_are_ignored() {
        let mut d = DeteriorationTrend::default();
        for s in 0..120u64 {
            d.observe(t(s), VitalKind::HeartRate, 200.0 - s as f64);
        }
        assert_eq!(d.score().0, 0.0);
    }
}
