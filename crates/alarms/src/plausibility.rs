//! Signal plausibility screening: flatline and physiologic-context
//! checks.
//!
//! Freshness monitoring catches silent sensors, but a *stuck* sensor —
//! one that keeps republishing its last value with fresh timestamps —
//! defeats it (experiment E8's documented gap). Real vital signs are
//! never perfectly constant: heart rate and SpO₂ carry beat-to-beat and
//! breath-to-breath variability plus measurement noise. A window whose
//! values are **identical** (or whose spread collapses far below the
//! sensor's own noise floor) is therefore a technical fault, not a calm
//! patient.
//!
//! [`FlatlineDetector`] implements that check per channel;
//! [`PlausibilityMonitor`] aggregates channels and feeds the interlock's
//! "data untrustworthy ⇒ fail safe" input.

use mcps_patient::vitals::VitalKind;
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Per-channel flatline detection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlatlineConfig {
    /// Window length over which variability is judged.
    pub window: SimDuration,
    /// Minimum samples in the window before judging (avoids flagging
    /// at startup).
    pub min_samples: usize,
    /// Spread (max − min) at or below which the window counts as flat.
    /// Set this well below the sensor's noise floor; exactly repeated
    /// values always qualify.
    pub max_flat_spread: f64,
}

impl Default for FlatlineConfig {
    fn default() -> Self {
        FlatlineConfig {
            window: SimDuration::from_secs(30),
            min_samples: 15,
            max_flat_spread: 1e-9,
        }
    }
}

/// Detects a flatlined (stuck) signal on one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatlineDetector {
    config: FlatlineConfig,
    samples: VecDeque<(SimTime, f64)>,
}

impl FlatlineDetector {
    /// Creates a detector.
    pub fn new(config: FlatlineConfig) -> Self {
        FlatlineDetector { config, samples: VecDeque::new() }
    }

    /// Feeds one sample.
    pub fn observe(&mut self, at: SimTime, value: f64) {
        self.samples.push_back((at, value));
        while let Some(&(t, _)) = self.samples.front() {
            if at.saturating_since(t) > self.config.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Whether the signal is currently flat (stuck).
    pub fn is_flat(&self) -> bool {
        if self.samples.len() < self.config.min_samples {
            return false;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(_, v) in &self.samples {
            min = min.min(v);
            max = max.max(v);
        }
        (max - min) <= self.config.max_flat_spread
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Aggregated plausibility over the channels an interlock relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlausibilityMonitor {
    config: FlatlineConfig,
    channels: BTreeMap<VitalKind, FlatlineDetector>,
}

impl PlausibilityMonitor {
    /// Creates a monitor; channels appear lazily as data arrives.
    pub fn new(config: FlatlineConfig) -> Self {
        PlausibilityMonitor { config, channels: BTreeMap::new() }
    }

    /// Feeds one measurement.
    pub fn observe(&mut self, at: SimTime, kind: VitalKind, value: f64) {
        self.channels
            .entry(kind)
            .or_insert_with(|| FlatlineDetector::new(self.config))
            .observe(at, value);
    }

    /// Channels currently judged implausible (stuck).
    pub fn implausible(&self) -> Vec<VitalKind> {
        self.channels.iter().filter(|(_, d)| d.is_flat()).map(|(k, _)| *k).collect()
    }

    /// Whether any observed channel is implausible.
    pub fn any_implausible(&self) -> bool {
        self.channels.values().any(FlatlineDetector::is_flat)
    }
}

impl Default for PlausibilityMonitor {
    fn default() -> Self {
        PlausibilityMonitor::new(FlatlineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn noisy_signal_is_plausible() {
        let mut d = FlatlineDetector::new(FlatlineConfig::default());
        for s in 0..60 {
            // ±0.5 alternation: ordinary sensor noise.
            d.observe(t(s), 97.0 + if s % 2 == 0 { 0.5 } else { -0.5 });
        }
        assert!(!d.is_flat());
    }

    #[test]
    fn stuck_signal_is_flagged_after_window() {
        let mut d = FlatlineDetector::new(FlatlineConfig::default());
        for s in 0..14 {
            d.observe(t(s), 97.0);
        }
        assert!(!d.is_flat(), "needs min_samples before judging");
        for s in 14..40 {
            d.observe(t(s), 97.0);
        }
        assert!(d.is_flat());
    }

    #[test]
    fn recovery_clears_the_flag() {
        let mut d = FlatlineDetector::new(FlatlineConfig::default());
        for s in 0..40 {
            d.observe(t(s), 97.0);
        }
        assert!(d.is_flat());
        // Signal returns; old identical samples age out of the window.
        for s in 40..80 {
            d.observe(t(s), 97.0 + (s % 3) as f64 * 0.4);
        }
        assert!(!d.is_flat());
    }

    #[test]
    fn window_prunes_old_samples() {
        let mut d = FlatlineDetector::new(FlatlineConfig::default());
        for s in 0..100 {
            d.observe(t(s), s as f64);
        }
        // 30 s window at 1 Hz ⇒ ~31 samples retained.
        assert!(d.len() <= 31, "len {}", d.len());
    }

    #[test]
    fn quantized_but_varying_signal_is_plausible() {
        // Integer-quantized SpO2 that moves 96↔97 is fine.
        let mut d = FlatlineDetector::new(FlatlineConfig::default());
        for s in 0..60 {
            d.observe(t(s), if s % 7 < 4 { 96.0 } else { 97.0 });
        }
        assert!(!d.is_flat());
    }

    #[test]
    fn monitor_aggregates_channels() {
        let mut m = PlausibilityMonitor::default();
        for s in 0..60 {
            m.observe(t(s), VitalKind::Spo2, 97.0); // stuck
            m.observe(t(s), VitalKind::HeartRate, 70.0 + (s % 5) as f64); // alive
        }
        assert!(m.any_implausible());
        assert_eq!(m.implausible(), vec![VitalKind::Spo2]);
    }

    #[test]
    fn empty_monitor_is_plausible() {
        let m = PlausibilityMonitor::default();
        assert!(!m.any_implausible());
        assert!(m.implausible().is_empty());
    }
}
