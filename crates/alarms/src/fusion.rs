//! Multi-parameter fusion ("smart") alarms.
//!
//! The paper's context-aware-intelligence claim: fusing SpO₂,
//! respiratory rate, EtCO₂ and heart rate cuts false alarms without
//! losing sensitivity, because genuine opioid-induced respiratory
//! depression moves *several* signals together while artifacts
//! (motion, probe-off) corrupt one signal at a time — and implausibly
//! fast.
//!
//! The detector scores each vital into a danger band, rejects samples
//! whose slew rate is physiologically impossible, and annunciates when
//! the corroborated weighted danger crosses a threshold (or a single
//! signal is deeply and persistently abnormal).

use crate::event::{AlarmEvent, AlarmPhase, AlarmPriority};
use mcps_patient::vitals::VitalKind;
use mcps_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-vital danger banding: value → danger score 0–3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DangerBands {
    /// Score 1 beyond this bound.
    pub mild: f64,
    /// Score 2 beyond this bound.
    pub moderate: f64,
    /// Score 3 beyond this bound.
    pub severe: f64,
    /// `true` if danger grows as the value *falls* (SpO₂, RR);
    /// `false` if danger grows as it rises.
    pub low_is_bad: bool,
}

impl DangerBands {
    /// Scores a value into 0–3.
    pub fn score(&self, v: f64) -> u8 {
        let past = |bound: f64| if self.low_is_bad { v < bound } else { v > bound };
        if past(self.severe) {
            3
        } else if past(self.moderate) {
            2
        } else if past(self.mild) {
            1
        } else {
            0
        }
    }
}

/// Fusion detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Danger bands per vital, with a weight for the fused sum.
    pub channels: Vec<(VitalKind, DangerBands, f64)>,
    /// Fused (weighted) danger needed to annunciate.
    pub alarm_score: f64,
    /// Minimum number of channels with non-zero danger (corroboration).
    pub min_corroboration: usize,
    /// A single channel at severe danger for this many consecutive
    /// samples annunciates even without corroboration.
    pub solo_severe_persistence: u32,
    /// Maximum plausible change per second, per vital; faster changes
    /// are treated as artifact and the previous value is held.
    pub max_slew_per_sec: Vec<(VitalKind, f64)>,
    /// Samples an alarm condition must persist before onset.
    pub persistence: u32,
}

impl FusionConfig {
    /// The PCA respiratory-depression fusion configuration.
    pub fn pca_default() -> Self {
        FusionConfig {
            channels: vec![
                (
                    VitalKind::Spo2,
                    DangerBands { mild: 93.0, moderate: 90.0, severe: 85.0, low_is_bad: true },
                    1.0,
                ),
                (
                    VitalKind::RespRate,
                    DangerBands { mild: 10.0, moderate: 8.0, severe: 5.0, low_is_bad: true },
                    1.0,
                ),
                (
                    VitalKind::Etco2,
                    DangerBands { mild: 48.0, moderate: 55.0, severe: 62.0, low_is_bad: false },
                    0.7,
                ),
                (
                    VitalKind::HeartRate,
                    DangerBands { mild: 100.0, moderate: 120.0, severe: 140.0, low_is_bad: false },
                    0.4,
                ),
            ],
            alarm_score: 2.5,
            min_corroboration: 2,
            solo_severe_persistence: 12,
            max_slew_per_sec: vec![
                (VitalKind::Spo2, 2.5),
                (VitalKind::RespRate, 4.0),
                (VitalKind::Etco2, 6.0),
                (VitalKind::HeartRate, 8.0),
            ],
            persistence: 3,
        }
    }
}

/// The stateful fusion detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionAlarm {
    config: FusionConfig,
    /// Last accepted (slew-checked) value and its time, per channel.
    accepted: BTreeMap<VitalKind, (SimTime, f64)>,
    /// Consecutive suspect samples per channel (artifact hold budget).
    suspect_runs: BTreeMap<VitalKind, u32>,
    condition_run: u32,
    solo_runs: BTreeMap<VitalKind, u32>,
    active: bool,
}

/// How long a slew-rejected value may be held before we accept that
/// the change is real (samples).
const MAX_ARTIFACT_HOLD: u32 = 8;

impl FusionAlarm {
    /// Creates the detector.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no channels.
    pub fn new(config: FusionConfig) -> Self {
        assert!(!config.channels.is_empty(), "fusion needs at least one channel");
        FusionAlarm {
            config,
            accepted: BTreeMap::new(),
            suspect_runs: BTreeMap::new(),
            condition_run: 0,
            solo_runs: BTreeMap::new(),
            active: false,
        }
    }

    /// Creates the PCA-default detector.
    pub fn pca_default() -> Self {
        FusionAlarm::new(FusionConfig::pca_default())
    }

    /// Whether the fusion alarm is currently annunciating.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The current fused danger score (diagnostic).
    pub fn fused_score(&self) -> f64 {
        self.score_now().0
    }

    fn score_now(&self) -> (f64, usize) {
        let mut total = 0.0;
        let mut corroborating = 0;
        for (kind, bands, weight) in &self.config.channels {
            if let Some(&(_, v)) = self.accepted.get(kind) {
                let s = bands.score(v);
                if s > 0 {
                    corroborating += 1;
                }
                total += f64::from(s) * weight;
            }
        }
        (total, corroborating)
    }

    /// Feeds one batch of measurements observed at `now`; returns
    /// onset/clear events.
    pub fn observe(&mut self, now: SimTime, values: &BTreeMap<VitalKind, f64>) -> Vec<AlarmEvent> {
        // Slew-rate screening: accept, or hold the previous value.
        for (kind, _, _) in &self.config.channels {
            let Some(&v) = values.get(kind) else { continue };
            let max_slew = self
                .config
                .max_slew_per_sec
                .iter()
                .find(|(k, _)| k == kind)
                .map(|(_, s)| *s)
                .unwrap_or(f64::INFINITY);
            match self.accepted.get(kind) {
                Some(&(t_prev, v_prev)) => {
                    let dt = now.saturating_since(t_prev).as_secs_f64().max(1e-6);
                    let slew = (v - v_prev).abs() / dt;
                    let run = self.suspect_runs.entry(*kind).or_insert(0);
                    if slew > max_slew && *run < MAX_ARTIFACT_HOLD {
                        // Implausible jump: hold previous value, keep its
                        // timestamp so the budget is bounded.
                        *run += 1;
                    } else {
                        *run = 0;
                        self.accepted.insert(*kind, (now, v));
                    }
                }
                None => {
                    self.accepted.insert(*kind, (now, v));
                }
            }
        }

        // Solo-severe tracking on accepted values.
        let mut solo_trigger = false;
        for (kind, bands, _) in &self.config.channels {
            let run = self.solo_runs.entry(*kind).or_insert(0);
            let severe =
                self.accepted.get(kind).is_some_and(|&(t, v)| t == now && bands.score(v) == 3);
            if severe {
                *run += 1;
                if *run >= self.config.solo_severe_persistence {
                    solo_trigger = true;
                }
            } else {
                *run = 0;
            }
        }

        let (score, corroborating) = self.score_now();
        let fused_trigger =
            score >= self.config.alarm_score && corroborating >= self.config.min_corroboration;
        let condition = fused_trigger || solo_trigger;
        let mut events = Vec::new();
        if condition {
            self.condition_run += 1;
            if !self.active && self.condition_run >= self.config.persistence {
                self.active = true;
                events.push(AlarmEvent {
                    at: now,
                    source: "fusion".into(),
                    priority: AlarmPriority::High,
                    phase: AlarmPhase::Onset,
                    detail: format!(
                        "fused danger {score:.1} over {corroborating} channels{}",
                        if solo_trigger { " (solo severe)" } else { "" }
                    ),
                });
            }
        } else {
            self.condition_run = 0;
            if self.active {
                self.active = false;
                events.push(AlarmEvent {
                    at: now,
                    source: "fusion".into(),
                    priority: AlarmPriority::High,
                    phase: AlarmPhase::Cleared,
                    detail: format!("fused danger {score:.1}"),
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(spo2: f64, rr: f64, etco2: f64, hr: f64) -> BTreeMap<VitalKind, f64> {
        let mut m = BTreeMap::new();
        m.insert(VitalKind::Spo2, spo2);
        m.insert(VitalKind::RespRate, rr);
        m.insert(VitalKind::Etco2, etco2);
        m.insert(VitalKind::HeartRate, hr);
        m
    }

    fn feed(
        a: &mut FusionAlarm,
        start: u64,
        n: u64,
        f: &BTreeMap<VitalKind, f64>,
    ) -> Vec<AlarmEvent> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend(a.observe(SimTime::from_secs(start + i), f));
        }
        out
    }

    #[test]
    fn healthy_patient_never_alarms() {
        let mut a = FusionAlarm::pca_default();
        let ev = feed(&mut a, 0, 600, &frame(97.0, 14.0, 38.0, 72.0));
        assert!(ev.is_empty());
        assert!(!a.is_active());
    }

    #[test]
    fn true_respiratory_depression_alarms() {
        let mut a = FusionAlarm::pca_default();
        // Baseline first so slew checking has history.
        feed(&mut a, 0, 10, &frame(96.0, 13.0, 40.0, 70.0));
        // Gradual correlated deterioration (drug effect over minutes),
        // fed in steps small enough to pass slew checks.
        let mut events = Vec::new();
        for i in 0..120u64 {
            let k = i as f64 / 120.0;
            let f = frame(96.0 - 8.0 * k, 13.0 - 7.0 * k, 40.0 + 18.0 * k, 70.0);
            events.extend(a.observe(SimTime::from_secs(10 + i), &f));
        }
        assert!(
            events.iter().any(|e| e.phase == AlarmPhase::Onset),
            "correlated deterioration must alarm"
        );
    }

    #[test]
    fn isolated_motion_artifact_is_rejected() {
        let mut a = FusionAlarm::pca_default();
        feed(&mut a, 0, 10, &frame(97.0, 14.0, 38.0, 72.0));
        // Sudden isolated SpO2 crash (motion artifact): 97 → 75 in one
        // second with everything else normal.
        let ev = feed(&mut a, 10, 6, &frame(75.0, 14.0, 38.0, 72.0));
        assert!(ev.is_empty(), "isolated implausible dip must not alarm: {ev:?}");
    }

    #[test]
    fn sustained_solo_severe_eventually_alarms() {
        let mut a = FusionAlarm::pca_default();
        feed(&mut a, 0, 10, &frame(97.0, 14.0, 38.0, 72.0));
        // A real, persistent deep desaturation with a (rare) normal RR:
        // after the artifact-hold budget and solo persistence it must
        // still alarm — safety net against single-channel blindness.
        let ev = feed(&mut a, 10, 40, &frame(80.0, 14.0, 38.0, 72.0));
        assert!(ev.iter().any(|e| e.phase == AlarmPhase::Onset), "persistent severe must alarm");
    }

    #[test]
    fn clears_after_recovery() {
        let mut a = FusionAlarm::pca_default();
        feed(&mut a, 0, 10, &frame(96.0, 13.0, 40.0, 70.0));
        for i in 0..120u64 {
            let k = i as f64 / 120.0;
            a.observe(
                SimTime::from_secs(10 + i),
                &frame(96.0 - 9.0 * k, 13.0 - 8.0 * k, 40.0 + 20.0 * k, 70.0),
            );
        }
        assert!(a.is_active());
        // Gradual recovery.
        let mut cleared = false;
        for i in 0..200u64 {
            let k = (i as f64 / 120.0).min(1.0);
            let ev = a.observe(
                SimTime::from_secs(130 + i),
                &frame(87.0 + 9.0 * k, 5.0 + 8.0 * k, 60.0 - 20.0 * k, 70.0),
            );
            cleared |= ev.iter().any(|e| e.phase == AlarmPhase::Cleared);
        }
        assert!(cleared);
        assert!(!a.is_active());
    }

    #[test]
    fn danger_bands_score_both_directions() {
        let down = DangerBands { mild: 93.0, moderate: 90.0, severe: 85.0, low_is_bad: true };
        assert_eq!(down.score(97.0), 0);
        assert_eq!(down.score(92.0), 1);
        assert_eq!(down.score(89.0), 2);
        assert_eq!(down.score(80.0), 3);
        let up = DangerBands { mild: 48.0, moderate: 55.0, severe: 62.0, low_is_bad: false };
        assert_eq!(up.score(40.0), 0);
        assert_eq!(up.score(50.0), 1);
        assert_eq!(up.score(58.0), 2);
        assert_eq!(up.score(70.0), 3);
    }

    #[test]
    fn artifact_hold_budget_is_bounded() {
        let mut a = FusionAlarm::pca_default();
        feed(&mut a, 0, 10, &frame(97.0, 14.0, 38.0, 72.0));
        // A *real* step change (e.g. probe moved to a better site with
        // genuinely low saturation) persists past the hold budget and
        // must eventually be accepted.
        feed(&mut a, 10, 20, &frame(80.0, 14.0, 38.0, 72.0));
        let (_, v) = a.accepted[&VitalKind::Spo2];
        assert!((v - 80.0).abs() < 1e-9, "held value must eventually update, got {v}");
    }
}
