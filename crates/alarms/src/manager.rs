//! Alarm annunciation management.
//!
//! Collects events from any number of detectors, maintains the set of
//! currently annunciating conditions, supports time-limited silencing
//! (audio pause) without losing latched history, and keeps the event
//! log experiments mine for onset times.

use crate::event::{AlarmEvent, AlarmPhase, AlarmPriority};
use mcps_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Central alarm manager for one bed/supervisor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlarmManager {
    /// Active conditions: source → (priority, onset time).
    active: BTreeMap<String, (AlarmPriority, SimTime)>,
    /// Audio silenced until this instant, if set.
    silenced_until: Option<SimTime>,
    log: Vec<AlarmEvent>,
    onset_count: u64,
}

impl AlarmManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests detector events.
    pub fn ingest(&mut self, events: impl IntoIterator<Item = AlarmEvent>) {
        for e in events {
            match e.phase {
                AlarmPhase::Onset => {
                    self.active.insert(e.source.clone(), (e.priority, e.at));
                    self.onset_count += 1;
                }
                AlarmPhase::Cleared => {
                    self.active.remove(&e.source);
                }
            }
            self.log.push(e);
        }
    }

    /// Currently annunciating sources, with priority and onset time.
    pub fn active(&self) -> impl Iterator<Item = (&str, AlarmPriority, SimTime)> {
        self.active.iter().map(|(s, &(p, t))| (s.as_str(), p, t))
    }

    /// The highest active priority, if any alarm is active.
    pub fn highest_priority(&self) -> Option<AlarmPriority> {
        self.active.values().map(|&(p, _)| p).max()
    }

    /// Whether any alarm is active.
    pub fn any_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// Whether the audible annunciator is sounding at `now` (an active
    /// alarm and not silenced).
    pub fn is_sounding(&self, now: SimTime) -> bool {
        self.any_active() && self.silenced_until.is_none_or(|t| now >= t)
    }

    /// Silences audio for `duration` (visual indication persists).
    pub fn silence(&mut self, now: SimTime, duration: SimDuration) {
        self.silenced_until = Some(now + duration);
    }

    /// The full event log.
    pub fn log(&self) -> &[AlarmEvent] {
        &self.log
    }

    /// Total onsets ever ingested.
    pub fn onset_count(&self) -> u64 {
        self.onset_count
    }

    /// Onset times (seconds) of events from a given source, for scoring.
    pub fn onset_secs(&self, source: &str) -> Vec<f64> {
        self.log
            .iter()
            .filter(|e| e.phase == AlarmPhase::Onset && e.source == source)
            .map(|e| e.at.as_secs_f64())
            .collect()
    }

    /// Onset times (seconds) of all events regardless of source.
    pub fn all_onset_secs(&self) -> Vec<f64> {
        self.log
            .iter()
            .filter(|e| e.phase == AlarmPhase::Onset)
            .map(|e| e.at.as_secs_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onset(at: u64, source: &str, priority: AlarmPriority) -> AlarmEvent {
        AlarmEvent {
            at: SimTime::from_secs(at),
            source: source.into(),
            priority,
            phase: AlarmPhase::Onset,
            detail: String::new(),
        }
    }

    fn cleared(at: u64, source: &str) -> AlarmEvent {
        AlarmEvent {
            at: SimTime::from_secs(at),
            source: source.into(),
            priority: AlarmPriority::Low,
            phase: AlarmPhase::Cleared,
            detail: String::new(),
        }
    }

    #[test]
    fn tracks_active_set() {
        let mut m = AlarmManager::new();
        m.ingest([
            onset(1, "spo2-low", AlarmPriority::High),
            onset(2, "hr-range", AlarmPriority::Medium),
        ]);
        assert!(m.any_active());
        assert_eq!(m.highest_priority(), Some(AlarmPriority::High));
        m.ingest([cleared(3, "spo2-low")]);
        assert_eq!(m.highest_priority(), Some(AlarmPriority::Medium));
        m.ingest([cleared(4, "hr-range")]);
        assert!(!m.any_active());
        assert_eq!(m.onset_count(), 2);
        assert_eq!(m.log().len(), 4);
    }

    #[test]
    fn silence_is_time_limited() {
        let mut m = AlarmManager::new();
        m.ingest([onset(1, "fusion", AlarmPriority::High)]);
        assert!(m.is_sounding(SimTime::from_secs(2)));
        m.silence(SimTime::from_secs(2), SimDuration::from_secs(60));
        assert!(!m.is_sounding(SimTime::from_secs(30)));
        assert!(m.is_sounding(SimTime::from_secs(62)), "silence expires");
    }

    #[test]
    fn silent_when_nothing_active() {
        let m = AlarmManager::new();
        assert!(!m.is_sounding(SimTime::ZERO));
        assert_eq!(m.highest_priority(), None);
    }

    #[test]
    fn onset_secs_filters_by_source() {
        let mut m = AlarmManager::new();
        m.ingest([
            onset(1, "fusion", AlarmPriority::High),
            cleared(5, "fusion"),
            onset(9, "fusion", AlarmPriority::High),
            onset(4, "spo2-low", AlarmPriority::High),
        ]);
        assert_eq!(m.onset_secs("fusion"), vec![1.0, 9.0]);
        assert_eq!(m.all_onset_secs().len(), 3);
    }
}
