//! `mcps` — command-line front end to the MCPS simulation suite.
//!
//! ```text
//! mcps pca     [--seed N] [--minutes M] [--open-loop] [--json]   run the PCA closed loop
//! mcps ward    [--seed N] [--patients P] [--minutes M] [--json]  run the alarm ward
//! mcps xray    [--seed N] [--manual SECS] [--json]               run x-ray coordination
//! mcps verify  [--trace]                                         model-check the interlock
//! mcps hazards                                                   print the hazard log & traceability
//! ```
//!
//! Every run is deterministic in `--seed`.

use mcps::control::interlock::InterlockConfig;
use mcps::core::scenarios::pca::{run_pca_scenario, PcaScenarioConfig};
use mcps::core::scenarios::ward::{run_ward_scenario, WardConfig};
use mcps::core::scenarios::xray::{run_xray_scenario, XRayScenarioConfig};
use mcps::patient::cohort::{CohortConfig, CohortGenerator};
use mcps::safety::checker::CheckOutcome;
use mcps::safety::hazard::pca_hazard_log;
use mcps::safety::models::{check_pca_variant, PcaModelVariant};
use mcps::safety::requirements::pca_requirements;
use mcps::sim::time::SimDuration;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Cli {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Cli {
    fn parse(args: &[String]) -> Self {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        values.insert(key.to_owned(), iter.next().unwrap().clone());
                    }
                    _ => flags.push(key.to_owned()),
                }
            }
        }
        Cli { values, flags }
    }

    fn u64(&self, key: &str, default: u64) -> u64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn f64(&self, key: &str, default: f64) -> f64 {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mcps <pca|ward|xray|verify|hazards> [options]\n\
         run `mcps <cmd> --help` conceptually: options are --seed, --minutes, --patients,\n\
         --open-loop, --manual SECS, --trace, --json (see crate docs)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let cli = Cli::parse(&args[1..]);
    match cmd {
        "pca" => cmd_pca(&cli),
        "ward" => cmd_ward(&cli),
        "xray" => cmd_xray(&cli),
        "verify" => cmd_verify(&cli),
        "hazards" => cmd_hazards(),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn cmd_pca(cli: &Cli) {
    let seed = cli.u64("seed", 42);
    let minutes = cli.u64("minutes", 120);
    let cohort = CohortGenerator::new(seed, CohortConfig::default());
    let mut cfg = if cli.flag("open-loop") {
        PcaScenarioConfig::open_loop(seed, cohort.params(0))
    } else {
        PcaScenarioConfig::baseline(seed, cohort.params(0))
    };
    cfg.duration = SimDuration::from_mins(minutes);
    cfg.proxy_rate_per_hour = cli.f64("proxy", 2.0);
    if cli.flag("backup-oximeter") {
        cfg.backup_oximeter = true;
    }
    if cli.flag("plausibility") {
        if let Some(il) = cfg.interlock.as_mut() {
            il.plausibility_check = true;
        }
    }
    if cli.flag("csv") {
        cfg.timeline_every_secs = cli.u64("every", 10);
    }
    let _ = InterlockConfig::default(); // keep the type in scope for docs
    let out = run_pca_scenario(&cfg);
    if cli.flag("csv") {
        println!("t_secs,spo2,effect_site_mg_per_l,pain");
        for p in &out.timeline {
            println!("{},{:.2},{:.4},{:.2}", p.t_secs, p.spo2, p.effect_site, p.pain);
        }
        return;
    }
    if cli.flag("json") {
        println!("{}", serde_json::to_string_pretty(&out).expect("outcome serializes"));
    } else {
        println!(
            "pca: {} min, seed {seed} | minSpO2 {:.1}% | severe events {} | drug {:.1} mg | \
             pain {:.1} | tickets {} | associated {}",
            minutes,
            out.patient.min_spo2,
            out.patient.severe_hypox_events,
            out.total_drug_mg,
            out.patient.mean_pain,
            out.grants_issued,
            out.associated
        );
    }
}

fn cmd_ward(cli: &Cli) {
    let cfg = WardConfig {
        seed: cli.u64("seed", 0),
        patients: cli.u64("patients", 8) as u32,
        duration: SimDuration::from_mins(cli.u64("minutes", 240)),
        ..WardConfig::default()
    };
    let out = run_ward_scenario(&cfg);
    if cli.flag("json") {
        println!("{}", serde_json::to_string_pretty(&out).expect("outcome serializes"));
    } else {
        println!(
            "ward: {} beds | episodes {} | threshold FAR {:.2}/pt-h sens {:.2} | fusion FAR \
             {:.2}/pt-h sens {:.2}",
            cfg.patients,
            out.episodes,
            out.threshold.false_alarm_rate_per_hour(),
            out.threshold.sensitivity(),
            out.fusion.false_alarm_rate_per_hour(),
            out.fusion.sensitivity()
        );
    }
}

fn cmd_xray(cli: &Cli) {
    let seed = cli.u64("seed", 1);
    let cfg = match cli.values.get("manual") {
        Some(d) => XRayScenarioConfig::manual(seed, d.parse().unwrap_or(6.0)),
        None => XRayScenarioConfig::automated(seed),
    };
    let out = run_xray_scenario(&cfg);
    if cli.flag("json") {
        println!("{}", serde_json::to_string_pretty(&out).expect("outcome serializes"));
    } else {
        println!(
            "xray: {}/{} blur-free ({:.0}%) | auto-resumes {} | aborts {}",
            out.blur_free,
            out.requested,
            out.blur_free_rate() * 100.0,
            out.auto_resumes,
            out.aborted
        );
    }
}

fn cmd_verify(cli: &Cli) {
    for variant in PcaModelVariant::ALL {
        let out = check_pca_variant(variant, 5_000_000);
        match &out {
            CheckOutcome::Holds { states } => {
                println!("HOLDS    ({states:>6} states)  {}", variant.description());
            }
            CheckOutcome::Violated { trace, states } => {
                println!("VIOLATED ({states:>6} states)  {}", variant.description());
                if cli.flag("trace") {
                    print!("{trace}");
                }
            }
            CheckOutcome::Exhausted { budget } => {
                println!("EXHAUSTED at {budget}  {}", variant.description());
            }
        }
    }
}

fn cmd_hazards() {
    let log = pca_hazard_log();
    print!("{}", log.render_table());
    println!("\nreleasable: {}\n", log.is_acceptable());
    let matrix = pca_requirements();
    print!("{}", matrix.render_table());
    let issues = matrix.check(&log);
    if issues.is_empty() {
        println!("\ntraceability: complete (every hazard covered, every requirement evidenced)");
    } else {
        println!("\ntraceability issues:");
        for i in issues {
            println!("  - {i}");
        }
    }
}
