//! Umbrella crate for the `mcps` workspace: re-exports every subsystem so
//! examples and integration tests can use a single dependency.
//!
//! See the individual crates for the real APIs:
//! - [`mcps_core`] — ICE supervisor, clinical apps, scenarios
//! - [`mcps_sim`] — discrete-event simulation kernel
//! - [`mcps_patient`] — virtual patient physiology
//! - [`mcps_device`] — simulated medical devices
//! - [`mcps_net`] — simulated network fabric
//! - [`mcps_control`] — closed-loop controllers and interlocks
//! - [`mcps_alarms`] — threshold and fusion alarm algorithms
//! - [`mcps_safety`] — timed-automata model checking and assurance cases

pub use mcps_alarms as alarms;
pub use mcps_control as control;
pub use mcps_core as core;
pub use mcps_device as device;
pub use mcps_net as net;
pub use mcps_patient as patient;
pub use mcps_safety as safety;
pub use mcps_sim as sim;
